//! Table 1 rows 1–23: views collected from the literature (textbooks,
//! tutorials, papers, and the paper's own §3.3 case study).

use super::{CorpusEntry, RelSpec, SourceKind};
use birds_store::ValueSort::{Int, Str};

/// Rows 1–23 in Table 1 order.
pub fn entries() -> Vec<CorpusEntry> {
    vec![
        // ------------------------------------------------------------------
        // #1 car_master — projection (drop the price column).
        CorpusEntry {
            id: 1,
            name: "car_master",
            source: SourceKind::Literature,
            operators: "P",
            constraint_classes: "",
            expressible: true,
            lvgn_expected: true,
            sources: &[RelSpec {
                name: "car",
                cols: &[("cid", Int), ("cname", Str), ("price", Int)],
            }],
            view: RelSpec {
                name: "car_master",
                cols: &[("cid", Int), ("cname", Str)],
            },
            putdelta: "
                -car(I, N, P) :- car(I, N, P), not car_master(I, N).
                incar(I, N) :- car(I, N, _).
                +car(I, N, P) :- car_master(I, N), not incar(I, N), P = 0.
            ",
            expected_get: "car_master(I, N) :- car(I, N, _).",
        },
        // ------------------------------------------------------------------
        // #2 goodstudents — projection + selection (gpa > 3), domain
        // constraint on the view.
        CorpusEntry {
            id: 2,
            name: "goodstudents",
            source: SourceKind::Literature,
            operators: "P,S",
            constraint_classes: "C",
            expressible: true,
            lvgn_expected: true,
            sources: &[RelSpec {
                name: "student",
                cols: &[("sid", Int), ("sname", Str), ("gpa", Int), ("year", Int)],
            }],
            view: RelSpec {
                name: "goodstudents",
                cols: &[("sid", Int), ("sname", Str), ("gpa", Int)],
            },
            putdelta: "
                false :- goodstudents(S, N, G), not G > 3.
                -student(S, N, G, Y) :- student(S, N, G, Y), G > 3, not goodstudents(S, N, G).
                enrolled(S, N, G) :- student(S, N, G, _).
                +student(S, N, G, Y) :- goodstudents(S, N, G), not enrolled(S, N, G), Y = 0.
            ",
            expected_get: "goodstudents(S, N, G) :- student(S, N, G, _), G > 3.",
        },
        // ------------------------------------------------------------------
        // #3 luxuryitems — selection (price > 1000); Figure 6(a) view.
        CorpusEntry {
            id: 3,
            name: "luxuryitems",
            source: SourceKind::Literature,
            operators: "S",
            constraint_classes: "C",
            expressible: true,
            lvgn_expected: true,
            sources: &[RelSpec {
                name: "items",
                cols: &[("id", Int), ("price", Int)],
            }],
            view: RelSpec {
                name: "luxuryitems",
                cols: &[("id", Int), ("price", Int)],
            },
            putdelta: "
                false :- luxuryitems(I, P), not P > 1000.
                +items(I, P) :- luxuryitems(I, P), not items(I, P).
                expensive(I, P) :- items(I, P), P > 1000.
                -items(I, P) :- expensive(I, P), not luxuryitems(I, P).
            ",
            expected_get: "luxuryitems(I, P) :- items(I, P), P > 1000.",
        },
        // ------------------------------------------------------------------
        // #4 usa_city — projection + selection (country = 'USA').
        CorpusEntry {
            id: 4,
            name: "usa_city",
            source: SourceKind::Literature,
            operators: "P,S",
            constraint_classes: "C",
            expressible: true,
            lvgn_expected: true,
            sources: &[RelSpec {
                name: "city",
                cols: &[("cid", Int), ("cname", Str), ("country", Str), ("pop", Int)],
            }],
            view: RelSpec {
                name: "usa_city",
                cols: &[("cid", Int), ("cname", Str)],
            },
            putdelta: "
                false :- usa_city(I, N), not I > 0.
                -city(I, N, C, P) :- city(I, N, C, P), C = 'USA', not usa_city(I, N).
                inusa(I, N) :- city(I, N, 'USA', _).
                +city(I, N, C, P) :- usa_city(I, N), not inusa(I, N), C = 'USA', P = 0.
            ",
            expected_get: "usa_city(I, N) :- city(I, N, 'USA', _).",
        },
        // ------------------------------------------------------------------
        // #5 ced — set difference (current departments), §3.3 case study.
        CorpusEntry {
            id: 5,
            name: "ced",
            source: SourceKind::Literature,
            operators: "D",
            constraint_classes: "",
            expressible: true,
            lvgn_expected: true,
            sources: &[
                RelSpec {
                    name: "ed",
                    cols: &[("emp_name", Str), ("dept_name", Str)],
                },
                RelSpec {
                    name: "eed",
                    cols: &[("emp_name", Str), ("dept_name", Str)],
                },
            ],
            view: RelSpec {
                name: "ced",
                cols: &[("emp_name", Str), ("dept_name", Str)],
            },
            putdelta: "
                +ed(E, D) :- ced(E, D), not ed(E, D).
                -eed(E, D) :- ced(E, D), eed(E, D).
                +eed(E, D) :- ed(E, D), not ced(E, D), not eed(E, D).
            ",
            expected_get: "ced(E, D) :- ed(E, D), not eed(E, D).",
        },
        // ------------------------------------------------------------------
        // #6 residents1962 — selection on a date range, §3.3 case study
        // (authored here against a base `residents` table).
        CorpusEntry {
            id: 6,
            name: "residents1962",
            source: SourceKind::Literature,
            operators: "S",
            constraint_classes: "C",
            expressible: true,
            lvgn_expected: true,
            sources: &[RelSpec {
                name: "residents",
                cols: &[("emp_name", Str), ("birth_date", Str), ("gender", Str)],
            }],
            view: RelSpec {
                name: "residents1962",
                cols: &[("emp_name", Str), ("birth_date", Str), ("gender", Str)],
            },
            putdelta: "
                false :- residents1962(E, B, G), B > '1962-12-31'.
                false :- residents1962(E, B, G), B < '1962-01-01'.
                +residents(E, B, G) :- residents1962(E, B, G), not residents(E, B, G).
                -residents(E, B, G) :- residents(E, B, G), not B < '1962-01-01',
                                       not B > '1962-12-31', not residents1962(E, B, G).
            ",
            expected_get: "residents1962(E, B, G) :- residents(E, B, G),
                               not B < '1962-01-01', not B > '1962-12-31'.",
        },
        // ------------------------------------------------------------------
        // #7 employees — semi-join + projection with an inclusion
        // dependency, §3.3 case study.
        CorpusEntry {
            id: 7,
            name: "employees",
            source: SourceKind::Literature,
            operators: "SJ,P",
            constraint_classes: "ID",
            expressible: true,
            lvgn_expected: true,
            sources: &[
                RelSpec {
                    name: "residents",
                    cols: &[("emp_name", Str), ("birth_date", Str), ("gender", Str)],
                },
                RelSpec {
                    name: "ced",
                    cols: &[("emp_name", Str), ("dept_name", Str)],
                },
            ],
            view: RelSpec {
                name: "employees",
                cols: &[("emp_name", Str), ("birth_date", Str), ("gender", Str)],
            },
            putdelta: "
                false :- employees(E, B, G), not inced(E).
                inced(E) :- ced(E, _).
                +residents(E, B, G) :- employees(E, B, G), not residents(E, B, G).
                -residents(E, B, G) :- residents(E, B, G), inced(E), not employees(E, B, G).
            ",
            expected_get: "employees(E, B, G) :- residents(E, B, G), ced(E, _).",
        },
        // ------------------------------------------------------------------
        // #8 researchers — semi-join + selection + projection.
        CorpusEntry {
            id: 8,
            name: "researchers",
            source: SourceKind::Literature,
            operators: "SJ,S,P",
            constraint_classes: "",
            expressible: true,
            lvgn_expected: true,
            sources: &[
                RelSpec {
                    name: "person",
                    cols: &[("pname", Str), ("birth", Str)],
                },
                RelSpec {
                    name: "works",
                    cols: &[("pname", Str), ("field", Str)],
                },
            ],
            view: RelSpec {
                name: "researchers",
                cols: &[("pname", Str), ("birth", Str)],
            },
            putdelta: "
                false :- researchers(E, B), not inres(E).
                inres(E) :- works(E, 'research').
                +person(E, B) :- researchers(E, B), not person(E, B).
                -person(E, B) :- person(E, B), inres(E), not researchers(E, B).
            ",
            expected_get: "researchers(E, B) :- person(E, B), works(E, 'research').",
        },
        // ------------------------------------------------------------------
        // #9 retired — semi-join complement (projection + difference),
        // §3.3 case study.
        CorpusEntry {
            id: 9,
            name: "retired",
            source: SourceKind::Literature,
            operators: "SJ,P,D",
            constraint_classes: "",
            expressible: true,
            lvgn_expected: true,
            sources: &[
                RelSpec {
                    name: "residents",
                    cols: &[("emp_name", Str), ("birth_date", Str), ("gender", Str)],
                },
                RelSpec {
                    name: "ced",
                    cols: &[("emp_name", Str), ("dept_name", Str)],
                },
            ],
            view: RelSpec {
                name: "retired",
                cols: &[("emp_name", Str)],
            },
            putdelta: "
                -ced(E, D) :- ced(E, D), retired(E).
                +ced(E, D) :- residents(E, _, _), not retired(E), not inced(E), D = 'unknown'.
                inced(E) :- ced(E, _).
                +residents(E, B, G) :- retired(E), G = 'unknown', not inresidents(E),
                                       B = '00-00-00'.
                inresidents(E) :- residents(E, _, _).
            ",
            expected_get: "retired(E) :- residents(E, _, _), not ced(E, _).",
        },
        // ------------------------------------------------------------------
        // #10 paramountmovies — projection + selection (the classic
        // Garcia-Molina/Ullman/Widom example).
        CorpusEntry {
            id: 10,
            name: "paramountmovies",
            source: SourceKind::Literature,
            operators: "P,S",
            constraint_classes: "",
            expressible: true,
            lvgn_expected: true,
            sources: &[RelSpec {
                name: "movies",
                cols: &[
                    ("title", Str),
                    ("year", Int),
                    ("length", Int),
                    ("studio", Str),
                ],
            }],
            view: RelSpec {
                name: "paramountmovies",
                cols: &[("title", Str), ("year", Int)],
            },
            putdelta: "
                -movies(T, Y, L, S) :- movies(T, Y, L, S), S = 'Paramount',
                                       not paramountmovies(T, Y).
                inpm(T, Y) :- movies(T, Y, _, 'Paramount').
                +movies(T, Y, L, S) :- paramountmovies(T, Y), not inpm(T, Y),
                                       L = 0, S = 'Paramount'.
            ",
            expected_get: "paramountmovies(T, Y) :- movies(T, Y, _, 'Paramount').",
        },
        // ------------------------------------------------------------------
        // #11 officeinfo — projection; Figure 6(b) view.
        CorpusEntry {
            id: 11,
            name: "officeinfo",
            source: SourceKind::Literature,
            operators: "P",
            constraint_classes: "",
            expressible: true,
            lvgn_expected: true,
            sources: &[RelSpec {
                name: "office",
                cols: &[("oid", Int), ("oname", Str), ("floor", Int), ("phone", Str)],
            }],
            view: RelSpec {
                name: "officeinfo",
                cols: &[("oid", Int), ("oname", Str), ("phone", Str)],
            },
            putdelta: "
                -office(O, N, F, P) :- office(O, N, F, P), not officeinfo(O, N, P).
                inoffice(O, N, P) :- office(O, N, _, P).
                +office(O, N, F, P) :- officeinfo(O, N, P), not inoffice(O, N, P), F = 0.
            ",
            expected_get: "officeinfo(O, N, P) :- office(O, N, _, P).",
        },
        // ------------------------------------------------------------------
        // #12 vw_brands — union + projection; Figure 6(d) view.
        CorpusEntry {
            id: 12,
            name: "vw_brands",
            source: SourceKind::Literature,
            operators: "U,P",
            constraint_classes: "C",
            expressible: true,
            lvgn_expected: true,
            sources: &[
                RelSpec {
                    name: "brands_a",
                    cols: &[("bid", Int), ("bname", Str), ("country", Str)],
                },
                RelSpec {
                    name: "brands_b",
                    cols: &[("bid", Int), ("bname", Str)],
                },
            ],
            view: RelSpec {
                name: "vw_brands",
                cols: &[("bid", Int), ("bname", Str)],
            },
            putdelta: "
                false :- vw_brands(I, N), not I > 0.
                ina(I, N) :- brands_a(I, N, _).
                -brands_a(I, N, C) :- brands_a(I, N, C), not vw_brands(I, N).
                -brands_b(I, N) :- brands_b(I, N), not vw_brands(I, N).
                +brands_b(I, N) :- vw_brands(I, N), not ina(I, N), not brands_b(I, N).
            ",
            expected_get: "
                vw_brands(I, N) :- brands_a(I, N, _).
                vw_brands(I, N) :- brands_b(I, N).
            ",
        },
        // ------------------------------------------------------------------
        // #13 tracks2 — projection (drop the date column).
        CorpusEntry {
            id: 13,
            name: "tracks2",
            source: SourceKind::Literature,
            operators: "P",
            constraint_classes: "",
            expressible: true,
            lvgn_expected: true,
            sources: &[RelSpec {
                name: "tracks",
                cols: &[
                    ("track", Str),
                    ("date", Str),
                    ("rating", Int),
                    ("album", Str),
                ],
            }],
            view: RelSpec {
                name: "tracks2",
                cols: &[("track", Str), ("rating", Int), ("album", Str)],
            },
            putdelta: "
                -tracks(T, D, R, A) :- tracks(T, D, R, A), not tracks2(T, R, A).
                intracks(T, R, A) :- tracks(T, _, R, A).
                +tracks(T, D, R, A) :- tracks2(T, R, A), not intracks(T, R, A),
                                       D = 'unknown'.
            ",
            expected_get: "tracks2(T, R, A) :- tracks(T, _, R, A).",
        },
        // ------------------------------------------------------------------
        // #14 residents — three-way union with gender-directed update
        // propagation, §3.3 case study.
        CorpusEntry {
            id: 14,
            name: "residents",
            source: SourceKind::Literature,
            operators: "U",
            constraint_classes: "",
            expressible: true,
            lvgn_expected: true,
            sources: &[
                RelSpec {
                    name: "male",
                    cols: &[("emp_name", Str), ("birth_date", Str)],
                },
                RelSpec {
                    name: "female",
                    cols: &[("emp_name", Str), ("birth_date", Str)],
                },
                RelSpec {
                    name: "others",
                    cols: &[("emp_name", Str), ("birth_date", Str), ("gender", Str)],
                },
            ],
            view: RelSpec {
                name: "residents",
                cols: &[("emp_name", Str), ("birth_date", Str), ("gender", Str)],
            },
            putdelta: "
                +male(E, B) :- residents(E, B, 'M'), not male(E, B), not others(E, B, 'M').
                -male(E, B) :- male(E, B), not residents(E, B, 'M').
                +female(E, B) :- residents(E, B, G), G = 'F', not female(E, B),
                                 not others(E, B, G).
                -female(E, B) :- female(E, B), not residents(E, B, 'F').
                +others(E, B, G) :- residents(E, B, G), not G = 'M', not G = 'F',
                                    not others(E, B, G).
                -others(E, B, G) :- others(E, B, G), not residents(E, B, G).
            ",
            expected_get: "
                residents(E, B, G) :- others(E, B, G).
                residents(E, B, 'F') :- female(E, B).
                residents(E, B, 'M') :- male(E, B).
            ",
        },
        // ------------------------------------------------------------------
        // #15 tracks3 — selection (rating > 3) over a wide relation.
        CorpusEntry {
            id: 15,
            name: "tracks3",
            source: SourceKind::Literature,
            operators: "S",
            constraint_classes: "C",
            expressible: true,
            lvgn_expected: true,
            sources: &[RelSpec {
                name: "tracks",
                cols: &[
                    ("track", Str),
                    ("date", Str),
                    ("rating", Int),
                    ("album", Str),
                ],
            }],
            view: RelSpec {
                name: "tracks3",
                cols: &[
                    ("track", Str),
                    ("date", Str),
                    ("rating", Int),
                    ("album", Str),
                ],
            },
            putdelta: "
                false :- tracks3(T, D, R, A), not R > 3.
                rated(T, D, R, A) :- tracks(T, D, R, A), R > 3.
                -tracks(T, D, R, A) :- rated(T, D, R, A), not tracks3(T, D, R, A).
                +tracks(T, D, R, A) :- tracks3(T, D, R, A), not tracks(T, D, R, A).
            ",
            expected_get: "tracks3(T, D, R, A) :- tracks(T, D, R, A), R > 3.",
        },
        // ------------------------------------------------------------------
        // #16 tracks1 — inner join (tracks ⋈ albums) keyed by album; the
        // join head is not guardable, so the strategy leaves LVGN-Datalog
        // (paper footnote 6) and the PK constraint is not negation-guarded
        // (footnote 7).
        CorpusEntry {
            id: 16,
            name: "tracks1",
            source: SourceKind::Literature,
            operators: "IJ",
            constraint_classes: "PK",
            expressible: true,
            lvgn_expected: false,
            sources: &[
                RelSpec {
                    name: "tracks",
                    cols: &[("track", Str), ("rating", Int), ("album", Str)],
                },
                RelSpec {
                    name: "albums",
                    cols: &[("album", Str), ("quantity", Int)],
                },
            ],
            view: RelSpec {
                name: "tracks1",
                cols: &[
                    ("track", Str),
                    ("rating", Int),
                    ("album", Str),
                    ("quantity", Int),
                ],
            },
            putdelta: "
                false :- albums(A, Q1), albums(A, Q2), not Q1 = Q2.
                false :- tracks(T, R, A), not inalbums(A).
                inalbums(A) :- albums(A, _).
                false :- tracks1(T, R, A, Q), tracks1(T2, R2, A, Q2), not Q = Q2.
                false :- tracks1(T, R, A, Q), albums(A, Q2), not Q = Q2.
                +tracks(T, R, A) :- tracks1(T, R, A, Q), not tracks(T, R, A).
                +albums(A, Q) :- tracks1(T, R, A, Q), not albums(A, Q).
                -tracks(T, R, A) :- tracks(T, R, A), albums(A, Q), not tracks1(T, R, A, Q).
            ",
            expected_get: "tracks1(T, R, A, Q) :- tracks(T, R, A), albums(A, Q).",
        },
        // ------------------------------------------------------------------
        // #17 bstudents — inner join + projection + selection
        // (grade = 'B'), with PK/FK and agreement constraints.
        CorpusEntry {
            id: 17,
            name: "bstudents",
            source: SourceKind::Literature,
            operators: "IJ,P,S",
            constraint_classes: "PK",
            expressible: true,
            lvgn_expected: false,
            sources: &[
                RelSpec {
                    name: "students",
                    cols: &[("sid", Int), ("sname", Str)],
                },
                RelSpec {
                    name: "grades",
                    cols: &[("sid", Int), ("course", Str), ("grade", Str)],
                },
            ],
            view: RelSpec {
                name: "bstudents",
                cols: &[("sid", Int), ("sname", Str), ("course", Str)],
            },
            putdelta: "
                false :- students(S, N1), students(S, N2), not N1 = N2.
                false :- grades(S, C, G), not instudents(S).
                instudents(S) :- students(S, _).
                false :- bstudents(S, N, C), students(S, N2), not N = N2.
                false :- bstudents(S, N1, C1), bstudents(S, N2, C2), not N1 = N2.
                +students(S, N) :- bstudents(S, N, C), not students(S, N).
                +grades(S, C, G) :- bstudents(S, N, C), not ingrades(S, C), G = 'B'.
                ingrades(S, C) :- grades(S, C, 'B').
                -grades(S, C, G) :- grades(S, C, G), G = 'B', students(S, N),
                                    not bstudents(S, N, C).
            ",
            expected_get: "bstudents(S, N, C) :- students(S, N), grades(S, C, 'B').",
        },
        // ------------------------------------------------------------------
        // #18 all_cars — inner join with PK and FK (car.mid → manufacturer).
        CorpusEntry {
            id: 18,
            name: "all_cars",
            source: SourceKind::Literature,
            operators: "IJ",
            constraint_classes: "PK, FK",
            expressible: true,
            lvgn_expected: false,
            sources: &[
                RelSpec {
                    name: "car",
                    cols: &[("cid", Int), ("model", Str), ("mid", Int)],
                },
                RelSpec {
                    name: "manufacturer",
                    cols: &[("mid", Int), ("mname", Str)],
                },
            ],
            view: RelSpec {
                name: "all_cars",
                cols: &[("cid", Int), ("model", Str), ("mid", Int), ("mname", Str)],
            },
            putdelta: "
                false :- manufacturer(M, N1), manufacturer(M, N2), not N1 = N2.
                false :- car(C, MO, M), not inman(M).
                inman(M) :- manufacturer(M, _).
                false :- all_cars(C, MO, M, N), all_cars(C2, MO2, M, N2), not N = N2.
                false :- all_cars(C, MO, M, N), manufacturer(M, N2), not N = N2.
                +car(C, MO, M) :- all_cars(C, MO, M, N), not car(C, MO, M).
                +manufacturer(M, N) :- all_cars(C, MO, M, N), not manufacturer(M, N).
                -car(C, MO, M) :- car(C, MO, M), manufacturer(M, N), not all_cars(C, MO, M, N).
            ",
            expected_get: "all_cars(C, MO, M, N) :- car(C, MO, M), manufacturer(M, N).",
        },
        // ------------------------------------------------------------------
        // #19 measurement — partitioned-table union (the PostgreSQL
        // sharding tutorial pattern) routed by date, with partition
        // constraints.
        CorpusEntry {
            id: 19,
            name: "measurement",
            source: SourceKind::Literature,
            operators: "U",
            constraint_classes: "C, ID",
            expressible: true,
            lvgn_expected: true,
            sources: &[
                RelSpec {
                    name: "m2006",
                    cols: &[("mid", Int), ("mdate", Str), ("val", Int)],
                },
                RelSpec {
                    name: "m2007",
                    cols: &[("mid", Int), ("mdate", Str), ("val", Int)],
                },
            ],
            view: RelSpec {
                name: "measurement",
                cols: &[("mid", Int), ("mdate", Str), ("val", Int)],
            },
            putdelta: "
                false :- measurement(I, D, V), D < '2006-01-01'.
                false :- measurement(I, D, V), D > '2007-12-31'.
                false :- m2006(I, D, V), D > '2006-12-31'.
                false :- m2006(I, D, V), D < '2006-01-01'.
                false :- m2007(I, D, V), D > '2007-12-31'.
                false :- m2007(I, D, V), not D > '2006-12-31'.
                +m2006(I, D, V) :- measurement(I, D, V), not D > '2006-12-31',
                                   not m2006(I, D, V).
                +m2007(I, D, V) :- measurement(I, D, V), D > '2006-12-31',
                                   not m2007(I, D, V).
                -m2006(I, D, V) :- m2006(I, D, V), not measurement(I, D, V).
                -m2007(I, D, V) :- m2007(I, D, V), not measurement(I, D, V).
            ",
            expected_get: "
                measurement(I, D, V) :- m2006(I, D, V).
                measurement(I, D, V) :- m2007(I, D, V).
            ",
        },
        // ------------------------------------------------------------------
        // #20 newpc — inner join + projection + selection (price < 2000)
        // with a join dependency (the view decomposes losslessly onto its
        // sources).
        CorpusEntry {
            id: 20,
            name: "newpc",
            source: SourceKind::Literature,
            operators: "IJ,P,S",
            constraint_classes: "JD",
            expressible: true,
            lvgn_expected: false,
            sources: &[
                RelSpec {
                    name: "pc",
                    cols: &[("model", Str), ("price", Int)],
                },
                RelSpec {
                    name: "product",
                    cols: &[("model", Str), ("maker", Str)],
                },
            ],
            view: RelSpec {
                name: "newpc",
                cols: &[("model", Str), ("price", Int), ("maker", Str)],
            },
            putdelta: "
                false :- newpc(M, P, A), not P < 2000.
                false :- pc(M, P1), pc(M, P2), not P1 = P2.
                false :- product(M, A1), product(M, A2), not A1 = A2.
                false :- pc(M, P), not inproduct(M).
                inproduct(M) :- product(M, _).
                false :- newpc(M, P1, A1), newpc(M, P2, A2), not P1 = P2.
                false :- newpc(M, P, A), product(M, A2), not A = A2.
                +pc(M, P) :- newpc(M, P, A), not pc(M, P).
                +product(M, A) :- newpc(M, P, A), not product(M, A).
                cheappc(M, P) :- pc(M, P), P < 2000.
                -pc(M, P) :- cheappc(M, P), product(M, A), not newpc(M, P, A).
            ",
            expected_get: "newpc(M, P, A) :- pc(M, P), P < 2000, product(M, A).",
        },
        // ------------------------------------------------------------------
        // #21 activestudents — inner join + projection + selection
        // (status = 'active') with PK and join-dependency constraints.
        CorpusEntry {
            id: 21,
            name: "activestudents",
            source: SourceKind::Literature,
            operators: "IJ,P,S",
            constraint_classes: "PK, JD",
            expressible: true,
            lvgn_expected: false,
            sources: &[
                RelSpec {
                    name: "students",
                    cols: &[("sid", Int), ("sname", Str), ("status", Str)],
                },
                RelSpec {
                    name: "clubs",
                    cols: &[("sid", Int), ("club", Str)],
                },
            ],
            view: RelSpec {
                name: "activestudents",
                cols: &[("sid", Int), ("sname", Str), ("club", Str)],
            },
            putdelta: "
                false :- students(S, N1, ST1), students(S, N2, ST2), not N1 = N2.
                false :- students(S, N1, ST1), students(S, N2, ST2), not ST1 = ST2.
                false :- clubs(S, C), not instudents(S).
                instudents(S) :- students(S, _, _).
                false :- activestudents(S, N1, C1), activestudents(S, N2, C2), not N1 = N2.
                false :- activestudents(S, N, C), students(S, N2, ST), not N = N2.
                false :- activestudents(S, N, C), students(S, N2, ST), not ST = 'active'.
                +students(S, N, ST) :- activestudents(S, N, C), not inactive(S, N),
                                       ST = 'active'.
                inactive(S, N) :- students(S, N, 'active').
                +clubs(S, C) :- activestudents(S, N, C), not clubs(S, C).
                act(S, N, C) :- students(S, N, 'active'), clubs(S, C).
                -clubs(S, C) :- act(S, N, C), not activestudents(S, N, C).
            ",
            expected_get: "activestudents(S, N, C) :- students(S, N, 'active'), clubs(S, C).",
        },
        // ------------------------------------------------------------------
        // #22 vw_customers — inner join + projection (drop phone) with
        // PK, FK and join-dependency constraints.
        CorpusEntry {
            id: 22,
            name: "vw_customers",
            source: SourceKind::Literature,
            operators: "IJ,P",
            constraint_classes: "PK, FK, JD",
            expressible: true,
            lvgn_expected: false,
            sources: &[
                RelSpec {
                    name: "customers",
                    cols: &[("cid", Int), ("cname", Str), ("phone", Str), ("aid", Int)],
                },
                RelSpec {
                    name: "addresses",
                    cols: &[("aid", Int), ("city", Str)],
                },
            ],
            view: RelSpec {
                name: "vw_customers",
                cols: &[("cid", Int), ("cname", Str), ("aid", Int), ("city", Str)],
            },
            putdelta: "
                false :- addresses(A, C1), addresses(A, C2), not C1 = C2.
                false :- customers(C, N, P, A), not inaddr(A).
                inaddr(A) :- addresses(A, _).
                false :- vw_customers(C, N, A, CI), vw_customers(C2, N2, A, CI2), not CI = CI2.
                false :- vw_customers(C, N, A, CI), addresses(A, CI2), not CI = CI2.
                +addresses(A, CI) :- vw_customers(C, N, A, CI), not addresses(A, CI).
                incust(C, N, A) :- customers(C, N, _, A).
                +customers(C, N, PH, A) :- vw_customers(C, N, A, CI), not incust(C, N, A),
                                           PH = 'unknown'.
                -customers(C, N, PH, A) :- customers(C, N, PH, A), addresses(A, CI),
                                           not vw_customers(C, N, A, CI).
            ",
            expected_get: "vw_customers(C, N, A, CI) :- customers(C, N, _, A), addresses(A, CI).",
        },
        // ------------------------------------------------------------------
        // #23 emp_view — join + projection + AGGREGATION (average salary
        // per department). Aggregation is outside nonrecursive Datalog, so
        // no putback program exists in the language (the single ✗/✗ row of
        // Table 1).
        CorpusEntry {
            id: 23,
            name: "emp_view",
            source: SourceKind::Literature,
            operators: "IJ,P,A",
            constraint_classes: "",
            expressible: false,
            lvgn_expected: false,
            sources: &[
                RelSpec {
                    name: "emp",
                    cols: &[("eid", Int), ("ename", Str), ("did", Int), ("salary", Int)],
                },
                RelSpec {
                    name: "dept",
                    cols: &[("did", Int), ("dname", Str)],
                },
            ],
            view: RelSpec {
                name: "emp_view",
                cols: &[("did", Int), ("avg_salary", Int)],
            },
            putdelta: "",
            expected_get: "",
        },
    ]
}
