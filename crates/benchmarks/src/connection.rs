//! The connection-scaling experiment: serving latency and footprint as
//! mostly-idle connections accumulate (ISSUE 7's "million-connection"
//! axis, scaled to what one CI box can hold).
//!
//! The epoll reactor's claim is that connection count is decoupled from
//! thread count: 10 000 open-but-idle connections cost a few kB of
//! kernel state each and *zero* threads, and a small active subset is
//! served at the same latency as on an empty server. The old
//! thread-per-connection server falsifies both halves (10 000 threads,
//! scheduler collapse). This module measures the claim from the
//! *outside*:
//!
//! * the server runs as a **child process** (`birds-serve --listen
//!   127.0.0.1:0`) — partly because a process-level fd budget split
//!   between server and client halves would halve the reachable
//!   connection count, and partly because thread count and RSS are only
//!   honest when read externally, from `/proc/<pid>/status`
//!   (`Threads:`, `VmRSS:`, `VmHWM:`);
//! * the bench process opens `idle` connections that never send a byte
//!   (with a ping round trip every [`CONNECT_BARRIER`] connects so the
//!   accept queue drains at the reactor's pace instead of overflowing
//!   the listen backlog), then drives a small **active subset** of
//!   lockstep query round trips and records per-request latency;
//! * each idle count gets a **fresh child**, so `VmHWM` and thread
//!   counts are attributable to that point alone.
//!
//! The lockstep round trips double as the TCP_NODELAY assertion: a
//! one-line request / one-line response exchange is the pathological
//! case for Nagle + delayed ACK (~40 ms per round trip when mishandled),
//! so `bench_gate --connection-gate` fails if the idle-server p50 is in
//! that regime. Gating is on **p50** (active-subset p50 under 2 000 idle
//! connections within a factor of the empty-server p50); p99 is
//! reported, not gated — on a shared single-core runner the tail
//! measures the CPU scheduler, not the reactor.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Ping-barrier cadence while opening idle connections: one round trip
/// per this many connects, bounding how far the client can run ahead of
/// the reactor's accept loop (the listen backlog is finite).
pub const CONNECT_BARRIER: usize = 64;

/// One measured point of the connection-scaling sweep.
#[derive(Debug, Clone)]
pub struct ConnectionPoint {
    /// Open connections that never send a request.
    pub idle_conns: usize,
    /// Connections in the active subset.
    pub active_conns: usize,
    /// Lockstep query round trips per active connection.
    pub requests_per_conn: usize,
    /// Active-request latency, median (the gated statistic).
    pub p50: Duration,
    /// Active-request latency, 99th percentile (reported, not gated).
    pub p99: Duration,
    /// Server worker threads the child was started with.
    pub workers: usize,
    /// `Threads:` of the child at peak connection count — the
    /// "connections are not threads" claim as a number.
    pub server_threads: usize,
    /// `VmRSS:` of the child after the active phase, in kB.
    pub vm_rss_kb: u64,
    /// `VmHWM:` (peak RSS) of the child, in kB.
    pub vm_hwm_kb: u64,
}

/// A `birds-serve` child process bound to an ephemeral port. Killed on
/// drop (these are benchmark servers; durability smoke uses its own).
pub struct ServeChild {
    child: Child,
    /// The resolved listen address (parsed from the child's stdout).
    pub addr: SocketAddr,
}

impl ServeChild {
    /// Spawn `birds-serve --listen 127.0.0.1:0 --workers N` and wait
    /// for its "listening on ADDR" line.
    pub fn spawn(workers: usize) -> std::io::Result<ServeChild> {
        let binary = serve_binary()?;
        let mut child = Command::new(&binary)
            .args([
                "--listen",
                "127.0.0.1:0",
                "--workers",
                &workers.to_string(),
                "--backlog",
                "1024",
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()?;
        let stdout = child.stdout.take().expect("stdout was piped");
        let mut lines = BufReader::new(stdout).lines();
        let addr = loop {
            match lines.next() {
                Some(Ok(line)) => {
                    if let Some(addr) = line.strip_prefix("listening on ") {
                        break addr.parse().map_err(|e| {
                            std::io::Error::other(format!("bad listen address {addr:?}: {e}"))
                        })?;
                    }
                }
                _ => {
                    let _ = child.kill();
                    let _ = child.wait();
                    return Err(std::io::Error::other(format!(
                        "{} exited without printing its listen address",
                        binary.display()
                    )));
                }
            }
        };
        Ok(ServeChild { child, addr })
    }

    /// Read a field of `/proc/<pid>/status` (Linux), e.g. `"Threads"`,
    /// `"VmRSS"`, `"VmHWM"` — the external view of the child's cost.
    pub fn proc_status_field(&self, field: &str) -> std::io::Result<u64> {
        let status = std::fs::read_to_string(format!("/proc/{}/status", self.child.id()))?;
        let prefix = format!("{field}:");
        status
            .lines()
            .find_map(|l| l.strip_prefix(&prefix))
            .and_then(|rest| rest.split_whitespace().next())
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| std::io::Error::other(format!("no {field} in /proc status")))
    }
}

impl Drop for ServeChild {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Locate the `birds-serve` binary next to the running executable
/// (benchmark binaries live in `target/<profile>/`, test binaries one
/// level down in `deps/`). The benchmarks crate cannot depend on the
/// binary directly, so it must have been built: `cargo build --release
/// -p birds-service --bin birds-serve`.
fn serve_binary() -> std::io::Result<PathBuf> {
    let exe = std::env::current_exe()?;
    let mut dir = exe.parent().map(PathBuf::from).unwrap_or_default();
    for _ in 0..2 {
        let candidate = dir.join("birds-serve");
        if candidate.is_file() {
            return Ok(candidate);
        }
        if !dir.pop() {
            break;
        }
    }
    Err(std::io::Error::new(
        std::io::ErrorKind::NotFound,
        format!(
            "birds-serve not found next to {} — build it first: \
             cargo build --release -p birds-service --bin birds-serve",
            exe.display()
        ),
    ))
}

fn connect(addr: SocketAddr) -> std::io::Result<TcpStream> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    Ok(stream)
}

/// One lockstep round trip; returns the response line.
fn round_trip(stream: &TcpStream, request: &str) -> std::io::Result<String> {
    (&*stream).write_all(request.as_bytes())?;
    (&*stream).write_all(b"\n")?;
    let mut line = String::new();
    if BufReader::new(stream).read_line(&mut line)? == 0 {
        return Err(std::io::Error::other("server closed the connection"));
    }
    Ok(line)
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Measure one point: a fresh server with `workers` workers, `idle`
/// silent connections held open, then `active` connections each driving
/// `per_conn` lockstep `query` round trips.
pub fn measure_point(
    workers: usize,
    idle: usize,
    active: usize,
    per_conn: usize,
) -> std::io::Result<ConnectionPoint> {
    let server = ServeChild::spawn(workers)?;

    let mut idle_conns = Vec::with_capacity(idle);
    for i in 0..idle {
        let stream = connect(server.addr)?;
        if (i + 1) % CONNECT_BARRIER == 0 || i + 1 == idle {
            let pong = round_trip(&stream, r#"{"op":"ping"}"#)?;
            if !pong.contains("pong") {
                return Err(std::io::Error::other(format!("barrier ping: {pong}")));
            }
        }
        idle_conns.push(stream);
    }
    // Threads at peak connection count — the claim under test. Sampled
    // here and again after the active phase (the worker pool spawns on
    // the reactor thread, so a 0-idle child may not have it yet), and
    // the idle connections stay open across both samples.
    let mut server_threads = server.proc_status_field("Threads")? as usize;

    let mut samples = Vec::with_capacity(active * per_conn);
    for _ in 0..active {
        let stream = connect(server.addr)?;
        // Lockstep round trips are the Nagle worst case; the server and
        // this client both disable it, and the p50 gate would catch the
        // ~40ms delayed-ACK stalls if either stopped.
        stream.set_nodelay(true)?;
        for _ in 0..per_conn {
            let t = Instant::now();
            let line = round_trip(&stream, r#"{"op":"query","relation":"v"}"#)?;
            samples.push(t.elapsed());
            if !line.contains("\"ok\": true") {
                return Err(std::io::Error::other(format!("query failed: {line}")));
            }
        }
        let _ = round_trip(&stream, r#"{"op":"quit"}"#);
    }
    samples.sort();

    server_threads = server_threads.max(server.proc_status_field("Threads")? as usize);
    let vm_rss_kb = server.proc_status_field("VmRSS")?;
    let vm_hwm_kb = server.proc_status_field("VmHWM")?;
    drop(idle_conns);
    Ok(ConnectionPoint {
        idle_conns: idle,
        active_conns: active,
        requests_per_conn: per_conn,
        p50: percentile(&samples, 0.50),
        p99: percentile(&samples, 0.99),
        workers,
        server_threads,
        vm_rss_kb,
        vm_hwm_kb,
    })
}

/// The full sweep: one [`measure_point`] per idle count (fresh child
/// each, so peak-RSS and thread numbers are per-point).
pub fn connection_scaling(
    workers: usize,
    idle_counts: &[usize],
    active: usize,
    per_conn: usize,
) -> std::io::Result<Vec<ConnectionPoint>> {
    idle_counts
        .iter()
        .map(|&idle| measure_point(workers, idle, active, per_conn))
        .collect()
}

/// Render the sweep as the `connection_scaling` section of
/// `BENCH_throughput.json`.
pub fn connection_json(points: &[ConnectionPoint]) -> birds_service::Json {
    use birds_service::Json;
    let us = |d: Duration| (d.as_secs_f64() * 1e8).round() / 100.0;
    let rendered: Vec<Json> = points
        .iter()
        .map(|p| {
            Json::Obj(vec![
                ("idle_conns".to_owned(), Json::Int(p.idle_conns as i64)),
                ("active_conns".to_owned(), Json::Int(p.active_conns as i64)),
                (
                    "requests_per_conn".to_owned(),
                    Json::Int(p.requests_per_conn as i64),
                ),
                ("active_p50_us".to_owned(), Json::Float(us(p.p50))),
                ("active_p99_us".to_owned(), Json::Float(us(p.p99))),
                ("workers".to_owned(), Json::Int(p.workers as i64)),
                (
                    "server_threads".to_owned(),
                    Json::Int(p.server_threads as i64),
                ),
                ("vm_rss_kb".to_owned(), Json::Int(p.vm_rss_kb as i64)),
                ("vm_hwm_kb".to_owned(), Json::Int(p.vm_hwm_kb as i64)),
            ])
        })
        .collect();
    Json::Obj(vec![
        (
            "note".to_owned(),
            Json::str(
                "Epoll-reactor serving under mostly-idle connection load: a birds-serve \
                 child process holds idle_conns open connections while active_conns \
                 lockstep clients drive query round trips (TCP_NODELAY on — the p50 \
                 would sit near the ~40ms delayed-ACK floor without it). \
                 server_threads and RSS are read externally from /proc/<pid>/status at \
                 peak connection count: threads stay at workers+2 (main + reactor + \
                 workers) regardless of connection count, where thread-per-connection \
                 serving would need idle_conns threads. bench_gate --connection-gate \
                 replays the 0-vs-loaded pair fresh and gates the active p50 ratio and \
                 the thread ceiling; p99 is reported, not gated (single-core CI tails \
                 measure the scheduler).",
            ),
        ),
        ("points".to_owned(), Json::Arr(rendered)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_pick_the_expected_ranks() {
        let samples: Vec<Duration> = (1..=100).map(Duration::from_micros).collect();
        assert_eq!(percentile(&samples, 0.50), Duration::from_micros(51));
        assert_eq!(percentile(&samples, 0.99), Duration::from_micros(99));
        assert_eq!(percentile(&[], 0.50), Duration::ZERO);
    }

    #[test]
    fn connection_json_shape() {
        let point = ConnectionPoint {
            idle_conns: 1000,
            active_conns: 16,
            requests_per_conn: 200,
            p50: Duration::from_micros(120),
            p99: Duration::from_micros(900),
            workers: 2,
            server_threads: 4,
            vm_rss_kb: 15_000,
            vm_hwm_kb: 16_000,
        };
        let doc = connection_json(&[point]);
        let parsed = birds_service::Json::parse(&doc.to_pretty()).unwrap();
        let points = parsed
            .get("points")
            .and_then(birds_service::Json::as_arr)
            .unwrap();
        assert_eq!(points.len(), 1);
        assert_eq!(
            points[0]
                .get("idle_conns")
                .and_then(birds_service::Json::as_i64),
            Some(1000)
        );
        assert_eq!(
            points[0]
                .get("active_p50_us")
                .and_then(birds_service::Json::as_f64),
            Some(120.0)
        );
        assert_eq!(
            points[0]
                .get("server_threads")
                .and_then(birds_service::Json::as_i64),
            Some(4)
        );
    }

    /// End-to-end against a real `birds-serve` child when one has been
    /// built (CI builds it before the bench steps); skipped otherwise —
    /// `cargo test -p birds-benchmarks` alone does not build another
    /// crate's binaries.
    #[test]
    fn live_point_measures_a_real_child_server() {
        if serve_binary().is_err() {
            eprintln!("skipping: birds-serve not built");
            return;
        }
        let point = measure_point(2, CONNECT_BARRIER + 3, 2, 5).expect("measure point");
        assert_eq!(point.idle_conns, CONNECT_BARRIER + 3);
        assert_eq!(point.active_conns, 2);
        assert!(point.p50 > Duration::ZERO);
        assert!(point.p50 <= point.p99);
        assert!(point.server_threads >= 2, "reactor + workers");
        assert!(point.vm_rss_kb > 0);
    }
}
