//! The Table 1 experiment: validate every corpus strategy and collect the
//! columns the paper reports.

use crate::corpus::{self, CorpusEntry};
use birds_core::{validate, UpdateStrategy};
use birds_sql::compile_strategy;
use std::time::Duration;

/// One regenerated row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Row number (1–32).
    pub id: usize,
    /// View name.
    pub name: &'static str,
    /// Collection group label.
    pub group: &'static str,
    /// Operator mix in the view definition.
    pub operators: &'static str,
    /// Program size in rules (the paper's LOC column), `None` when the
    /// strategy is not expressible.
    pub program_size: Option<usize>,
    /// Constraint classes.
    pub constraints: &'static str,
    /// LVGN-Datalog membership (paper column "LVGN-Datalog").
    pub lvgn: Option<bool>,
    /// Expressible in NR-Datalog with negation and builtins at all
    /// (paper column "NR-Datalog"; `false` only for the aggregation view).
    pub expressible: bool,
    /// Did Algorithm 1 accept the strategy?
    pub valid: Option<bool>,
    /// Wall-clock validation time.
    pub validation_time: Option<Duration>,
    /// Compiled SQL size in bytes (view + trigger program).
    pub sql_bytes: Option<usize>,
}

/// Validate one corpus entry and collect its Table 1 row.
pub fn run_entry(entry: &CorpusEntry) -> Table1Row {
    let mut row = Table1Row {
        id: entry.id,
        name: entry.name,
        group: entry.source.label(),
        operators: entry.operators,
        program_size: None,
        constraints: entry.constraint_classes,
        lvgn: None,
        expressible: entry.expressible,
        valid: None,
        validation_time: None,
        sql_bytes: None,
    };
    let Some(strategy) = entry.strategy() else {
        return row;
    };
    row.program_size = Some(strategy.program_size());
    row.lvgn = Some(strategy.is_lvgn());
    match validate(&strategy) {
        Ok(report) => {
            row.valid = Some(report.valid);
            row.validation_time = Some(report.timings.total());
            if let Some(get) = &report.derived_get {
                row.sql_bytes = Some(compile_strategy(&strategy, get).byte_size());
            }
        }
        Err(e) => {
            // A solver resource error counts as "did not validate" — the
            // paper's caveat for programs outside the decidable fragment.
            row.valid = None;
            row.validation_time = None;
            let _ = e;
        }
    }
    row
}

/// Run the whole Table 1 experiment (all 32 rows, in order).
pub fn run_table1() -> Vec<Table1Row> {
    corpus::entries().iter().map(run_entry).collect()
}

/// Format rows as an aligned text table (the binary's output).
pub fn format_table(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>3} {:<11} {:<17} {:<9} {:>4} {:<12} {:>5} {:>10} {:>6} {:>9} {:>9}\n",
        "ID",
        "Group",
        "View",
        "Operator",
        "LOC",
        "Constraint",
        "LVGN",
        "NR-Datalog",
        "Valid",
        "Time(s)",
        "SQL(B)"
    ));
    for r in rows {
        let yesno = |b: Option<bool>| match b {
            Some(true) => "Y",
            Some(false) => "n",
            None => "-",
        };
        out.push_str(&format!(
            "{:>3} {:<11} {:<17} {:<9} {:>4} {:<12} {:>5} {:>10} {:>6} {:>9} {:>9}\n",
            r.id,
            r.group,
            r.name,
            r.operators,
            r.program_size
                .map(|s| s.to_string())
                .unwrap_or_else(|| "-".into()),
            if r.constraints.is_empty() {
                "-"
            } else {
                r.constraints
            },
            yesno(r.lvgn),
            if r.expressible { "Y" } else { "n" },
            yesno(r.valid),
            r.validation_time
                .map(|d| format!("{:.3}", d.as_secs_f64()))
                .unwrap_or_else(|| "-".into()),
            r.sql_bytes
                .map(|b| b.to_string())
                .unwrap_or_else(|| "-".into()),
        ));
    }
    out
}

/// Convenience used by tests and the ablation bench: validate a single
/// named view from the corpus.
pub fn validate_view(name: &str) -> Option<(UpdateStrategy, Table1Row)> {
    let e = corpus::entry(name)?;
    let s = e.strategy()?;
    let row = run_entry(&e);
    Some((s, row))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_view_row_is_complete() {
        let (_, row) = validate_view("vw_brands").unwrap();
        assert_eq!(row.lvgn, Some(true));
        assert_eq!(row.valid, Some(true));
        assert!(row.sql_bytes.unwrap() > 500);
        assert!(row.validation_time.unwrap().as_secs_f64() > 0.0);
    }

    #[test]
    fn aggregation_row_is_all_dashes() {
        let e = corpus::entry("emp_view").unwrap();
        let row = run_entry(&e);
        assert!(!row.expressible);
        assert_eq!(row.valid, None);
        assert_eq!(row.sql_bytes, None);
    }

    #[test]
    fn format_contains_all_rows() {
        let rows = vec![
            run_entry(&corpus::entry("luxuryitems").unwrap()),
            run_entry(&corpus::entry("emp_view").unwrap()),
        ];
        let text = format_table(&rows);
        assert!(text.contains("luxuryitems"));
        assert!(text.contains("emp_view"));
    }
}
