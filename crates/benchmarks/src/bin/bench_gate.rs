//! CI perf-regression gate over the Figure 6 trajectory.
//!
//! Runs a fresh (small) figure6 measurement and compares it against the
//! **last** run recorded in the committed `BENCH_figure6.json` baseline.
//! The gate is deliberately generous — CI machines are slow, shared and
//! noisy — and fails only when fresh latency exceeds the baseline by
//! more than `--factor` (default 3×) at some measured point. Exit code 1
//! on regression, 2 on usage/baseline errors.
//!
//! ```text
//! cargo run --release -p birds-benchmarks --bin bench_gate -- \
//!     --baseline BENCH_figure6.json --view luxuryitems --sizes 1000,10000 \
//!     --factor 3 --out bench-fresh.json
//! ```
//!
//! `--out` writes the fresh measurement (atomically) so CI can upload it
//! as a workflow artifact — the trajectory of every CI run, not just the
//! committed snapshots.

use birds_benchmarks::emit::write_atomic;
use birds_benchmarks::figure6::{sweep, to_json, Figure6View};
use birds_service::Json;

fn main() {
    let mut baseline_path = String::from("BENCH_figure6.json");
    let mut view_name = String::from("luxuryitems");
    let mut sizes: Vec<usize> = vec![1_000, 10_000];
    let mut factor = 3.0f64;
    let mut out_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => baseline_path = require_value(args.next(), "--baseline"),
            "--view" => view_name = require_value(args.next(), "--view"),
            "--sizes" => {
                sizes = require_value(args.next(), "--sizes")
                    .split(',')
                    .map(|s| {
                        s.trim().parse().unwrap_or_else(|_| {
                            eprintln!("--sizes needs comma-separated integers");
                            std::process::exit(2);
                        })
                    })
                    .collect()
            }
            "--factor" => {
                factor = require_value(args.next(), "--factor")
                    .parse()
                    .unwrap_or_else(|_| {
                        eprintln!("--factor needs a number");
                        std::process::exit(2);
                    })
            }
            "--out" => out_path = Some(require_value(args.next(), "--out")),
            flag => {
                eprintln!("unknown flag '{flag}'");
                std::process::exit(2);
            }
        }
    }

    let view = Figure6View::from_name(&view_name).unwrap_or_else(|| {
        eprintln!("unknown view '{view_name}'");
        std::process::exit(2);
    });

    // Baseline: the last committed run that has points for this view.
    let baseline_text = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
        eprintln!("cannot read baseline {baseline_path}: {e}");
        std::process::exit(2);
    });
    let baseline = Json::parse(&baseline_text).unwrap_or_else(|e| {
        eprintln!("baseline {baseline_path} is not valid JSON: {e}");
        std::process::exit(2);
    });
    let (base_label, base_points) = baseline_points(&baseline, &view_name).unwrap_or_else(|| {
        eprintln!("baseline {baseline_path} has no run with points for '{view_name}'");
        std::process::exit(2);
    });

    println!("gate: fresh '{view_name}' at sizes {sizes:?} vs baseline run \"{base_label}\"");
    println!("      threshold: {factor}x (generous — CI machines are noisy)\n");

    let fresh = sweep(view, &sizes);
    if let Some(path) = &out_path {
        let json = to_json("ci-bench-gate", &[(view, fresh.clone())]);
        write_atomic(path, &json).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        println!("wrote fresh measurement to {path}\n");
    }

    let mut regressions = 0usize;
    let mut compared = 0usize;
    println!(
        "{:>10} {:>10} {:>14} {:>14} {:>8}",
        "base size", "metric", "baseline (ms)", "fresh (ms)", "ratio"
    );
    for p in &fresh {
        let Some((base_orig, base_inc)) = base_points.get(&p.base_size).copied() else {
            println!("{:>10}  (no baseline point; skipped)", p.base_size);
            continue;
        };
        for (metric, base_ms, fresh_ms) in [
            ("original", base_orig, p.original.as_secs_f64() * 1e3),
            ("incremental", base_inc, p.incremental.as_secs_f64() * 1e3),
        ] {
            compared += 1;
            let ratio = fresh_ms / base_ms.max(1e-9);
            let verdict = if ratio > factor {
                regressions += 1;
                "  << REGRESSION"
            } else {
                ""
            };
            println!(
                "{:>10} {:>10} {:>14.3} {:>14.3} {:>7.2}x{verdict}",
                p.base_size, metric, base_ms, fresh_ms, ratio
            );
        }
    }

    if compared == 0 {
        eprintln!("\nno comparable points between fresh run and baseline");
        std::process::exit(2);
    }
    if regressions > 0 {
        eprintln!(
            "\nFAIL: {regressions} of {compared} measurements regressed beyond {factor}x \
             the committed baseline"
        );
        std::process::exit(1);
    }
    println!("\nOK: all {compared} measurements within {factor}x of the committed baseline");
}

/// `base_size → (original_ms, incremental_ms)`.
type BaselineMap = std::collections::BTreeMap<usize, (f64, f64)>;

/// `(label, points)` of the last run in the baseline document that
/// carries points for `view_name`.
fn baseline_points(doc: &Json, view_name: &str) -> Option<(String, BaselineMap)> {
    let runs = doc.get("runs")?.as_arr()?;
    for run in runs.iter().rev() {
        let Some(views) = run.get("views").and_then(Json::as_arr) else {
            continue;
        };
        for view in views {
            if view.get("view").and_then(Json::as_str) != Some(view_name) {
                continue;
            }
            let mut map = BaselineMap::new();
            for point in view.get("points").and_then(Json::as_arr).unwrap_or(&[]) {
                let (Some(size), Some(orig), Some(inc)) = (
                    point.get("base_size").and_then(Json::as_i64),
                    point.get("original_ms").and_then(Json::as_f64),
                    point.get("incremental_ms").and_then(Json::as_f64),
                ) else {
                    continue;
                };
                map.insert(size as usize, (orig, inc));
            }
            if !map.is_empty() {
                let label = run
                    .get("label")
                    .and_then(Json::as_str)
                    .unwrap_or("<unlabeled>")
                    .to_owned();
                return Some((label, map));
            }
        }
    }
    None
}

fn require_value(v: Option<String>, flag: &str) -> String {
    v.unwrap_or_else(|| {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    })
}
