//! CI perf-regression gate over the committed benchmark trajectory.
//!
//! Two checks, each against the committed baselines, each deliberately
//! generous (`--factor`, default 3×) because CI machines are slow,
//! shared and noisy — only a genuine regression trips them, not machine
//! variance. Exit code 1 on regression, 2 on usage/baseline errors.
//!
//! 1. **Figure 6 latency** (always): a fresh small figure6 measurement
//!    versus the last run in `BENCH_figure6.json`.
//! 2. **Thread scaling** (with `--throughput-baseline`): a fresh
//!    disjoint-views scaling run — n autocommit clients × n disjoint
//!    views through the sharded service's group committers, replaying
//!    the committed run's base size and epoch window — versus the
//!    `disjoint_thread_scaling` section of `BENCH_throughput.json`.
//!    Fails when fresh aggregate stmts/sec falls more than `--factor`
//!    below the baseline at any compared client count. For the gate to
//!    be able to see a *serialization* regression (not just a slowdown),
//!    `--clients` must include a count whose committed scaling exceeds
//!    `--factor` — at the default 3× that means 4 clients or more
//!    (committed scaling is ~1.9× at 2, ~4.3× at 4, ~7.9× at 8), which
//!    is why CI gates on `--clients 1,2,4`.
//! 3. **Durability overhead** (with `--durability-gate`): fresh
//!    WAL-on-vs-in-memory batched-commit throughput, fresh-vs-fresh on
//!    the same machine.
//! 4. **Read interference** (with `--read-interference-gate`): fresh
//!    MVCC query latency under concurrent same-shard writers versus
//!    idle, fresh-vs-fresh — the lock-free-reads claim as a number
//!    (gated on p50; p99 reported, since tail latency on an
//!    oversubscribed runner measures the scheduler, not the locks).
//! 5. **Range pushdown** (with `--range-gate`): two checks. A *static*
//!    one — the committed `range_guard` section of the figure6 baseline
//!    must record a ≥3× speedup at 1M rows for a ≤10%-selectivity
//!    guard (the PR's headline number stays in the trajectory). And a
//!    *fresh* one — the 1%-selectivity point re-measured at a CI-sized
//!    table, ordered-index plans vs hash-only plans, fresh-vs-fresh on
//!    the same machine; fails when the speedup falls below `--factor`.
//! 6. **Connection scaling** (with `--connection-gate`): fresh
//!    active-subset query latency through a `birds-serve` child under
//!    2 000 idle connections versus an empty server, fresh-vs-fresh.
//!    Gated on the active p50 ratio, the child's thread count
//!    (≤ workers + 2 — connections must not become threads) and an
//!    absolute idle-p50 ceiling that catches a lost `TCP_NODELAY`
//!    (lockstep round trips sit near the ~40ms delayed-ACK floor
//!    without it). p99 is reported, not gated. Needs the birds-serve
//!    binary built first (`cargo build --release -p birds-service`).
//!
//! ```text
//! cargo run --release -p birds-benchmarks --bin bench_gate -- \
//!     --baseline BENCH_figure6.json --view luxuryitems --sizes 1000,10000 \
//!     --throughput-baseline BENCH_throughput.json --clients 1,2,4 \
//!     --factor 3 --out bench-fresh.json
//! ```
//!
//! `--out` writes the fresh figure6 measurement (atomically) so CI can
//! upload it as a workflow artifact — the trajectory of every CI run,
//! not just the committed snapshots.

use birds_benchmarks::connection::connection_scaling;
use birds_benchmarks::emit::write_atomic;
use birds_benchmarks::figure6::{sweep, to_json, Figure6View};
use birds_benchmarks::range_guard;
use birds_benchmarks::throughput::{
    disjoint_scaling, durability_batched_sweep, read_interference_sweep, DurabilityPoint,
};
use birds_service::Json;
use std::time::Duration;

fn main() {
    let mut baseline_path = String::from("BENCH_figure6.json");
    let mut view_name = String::from("luxuryitems");
    let mut sizes: Vec<usize> = vec![1_000, 10_000];
    let mut factor = 3.0f64;
    let mut out_path: Option<String> = None;
    let mut throughput_baseline: Option<String> = None;
    let mut clients: Vec<usize> = vec![1, 2, 4];
    let mut durability_gate = false;
    let mut read_interference_gate = false;
    let mut connection_gate = false;
    let mut range_gate = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => baseline_path = require_value(args.next(), "--baseline"),
            "--durability-gate" => durability_gate = true,
            "--read-interference-gate" => read_interference_gate = true,
            "--connection-gate" => connection_gate = true,
            "--range-gate" => range_gate = true,
            "--view" => view_name = require_value(args.next(), "--view"),
            "--sizes" => {
                sizes = parse_usize_list(&require_value(args.next(), "--sizes"), "--sizes")
            }
            "--factor" => {
                factor = require_value(args.next(), "--factor")
                    .parse()
                    .unwrap_or_else(|_| {
                        eprintln!("--factor needs a number");
                        std::process::exit(2);
                    })
            }
            "--out" => out_path = Some(require_value(args.next(), "--out")),
            "--throughput-baseline" => {
                throughput_baseline = Some(require_value(args.next(), "--throughput-baseline"))
            }
            "--clients" => {
                clients = parse_usize_list(&require_value(args.next(), "--clients"), "--clients")
            }
            flag => {
                eprintln!("unknown flag '{flag}'");
                std::process::exit(2);
            }
        }
    }

    let view = Figure6View::from_name(&view_name).unwrap_or_else(|| {
        eprintln!("unknown view '{view_name}'");
        std::process::exit(2);
    });

    // Baseline: the last committed run that has points for this view.
    let baseline_text = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
        eprintln!("cannot read baseline {baseline_path}: {e}");
        std::process::exit(2);
    });
    let baseline = Json::parse(&baseline_text).unwrap_or_else(|e| {
        eprintln!("baseline {baseline_path} is not valid JSON: {e}");
        std::process::exit(2);
    });
    let (base_label, base_points) = baseline_points(&baseline, &view_name).unwrap_or_else(|| {
        eprintln!("baseline {baseline_path} has no run with points for '{view_name}'");
        std::process::exit(2);
    });

    println!("gate: fresh '{view_name}' at sizes {sizes:?} vs baseline run \"{base_label}\"");
    println!("      threshold: {factor}x (generous — CI machines are noisy)\n");

    let fresh = sweep(view, &sizes);
    if let Some(path) = &out_path {
        let json = to_json("ci-bench-gate", &[(view, fresh.clone())]);
        write_atomic(path, &json).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        println!("wrote fresh measurement to {path}\n");
    }

    let mut regressions = 0usize;
    let mut compared = 0usize;
    println!(
        "{:>10} {:>10} {:>14} {:>14} {:>8}",
        "base size", "metric", "baseline (ms)", "fresh (ms)", "ratio"
    );
    for p in &fresh {
        let Some((base_orig, base_inc)) = base_points.get(&p.base_size).copied() else {
            println!("{:>10}  (no baseline point; skipped)", p.base_size);
            continue;
        };
        for (metric, base_ms, fresh_ms) in [
            ("original", base_orig, p.original.as_secs_f64() * 1e3),
            ("incremental", base_inc, p.incremental.as_secs_f64() * 1e3),
        ] {
            compared += 1;
            let ratio = fresh_ms / base_ms.max(1e-9);
            let verdict = if ratio > factor {
                regressions += 1;
                "  << REGRESSION"
            } else {
                ""
            };
            println!(
                "{:>10} {:>10} {:>14.3} {:>14.3} {:>7.2}x{verdict}",
                p.base_size, metric, base_ms, fresh_ms, ratio
            );
        }
    }

    if compared == 0 {
        eprintln!("\nno comparable points between fresh run and baseline");
        std::process::exit(2);
    }

    if let Some(path) = throughput_baseline {
        let (tr, tc) = throughput_gate(&path, &clients, factor);
        regressions += tr;
        compared += tc;
    }

    if durability_gate {
        let (dr, dc) = wal_overhead_gate(factor);
        regressions += dr;
        compared += dc;
    }

    if read_interference_gate {
        let (rr, rc) = interference_gate(factor);
        regressions += rr;
        compared += rc;
    }

    if range_gate {
        let (rr, rc) = range_pushdown_gate(&baseline, factor);
        regressions += rr;
        compared += rc;
    }

    if connection_gate {
        let (cr, cc) = connection_scaling_gate(factor);
        regressions += cr;
        compared += cc;
    }

    if regressions > 0 {
        eprintln!(
            "\nFAIL: {regressions} of {compared} measurements regressed beyond {factor}x \
             the committed baseline"
        );
        std::process::exit(1);
    }
    println!("\nOK: all {compared} measurements within {factor}x of the committed baseline");
}

/// Thread-scaling gate: replay the committed disjoint-views scaling run
/// (same base size and epoch window) at the requested client counts and
/// compare aggregate stmts/sec point by point. Returns
/// `(regressions, compared)`.
fn throughput_gate(baseline_path: &str, clients: &[usize], factor: f64) -> (usize, usize) {
    let text = std::fs::read_to_string(baseline_path).unwrap_or_else(|e| {
        eprintln!("cannot read throughput baseline {baseline_path}: {e}");
        std::process::exit(2);
    });
    let doc = Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("throughput baseline {baseline_path} is not valid JSON: {e}");
        std::process::exit(2);
    });
    let base_size = doc
        .get("base_size")
        .and_then(Json::as_i64)
        .unwrap_or(20_000) as usize;
    let window = Duration::from_micros(
        doc.get("epoch_window_us")
            .and_then(Json::as_i64)
            .unwrap_or(200) as u64,
    );
    // clients → (stmts/sec, statements measured) from the committed run.
    let mut baseline: std::collections::BTreeMap<usize, (f64, usize)> =
        std::collections::BTreeMap::new();
    for point in doc
        .get("disjoint_thread_scaling")
        .and_then(Json::as_arr)
        .unwrap_or(&[])
    {
        let (Some(threads), Some(rate), Some(stmts)) = (
            point.get("threads").and_then(Json::as_i64),
            point.get("statements_per_sec").and_then(Json::as_f64),
            point.get("total_statements").and_then(Json::as_i64),
        ) else {
            continue;
        };
        baseline.insert(threads as usize, (rate, stmts as usize));
    }
    if baseline.is_empty() {
        eprintln!("{baseline_path} has no disjoint_thread_scaling section to gate against");
        std::process::exit(2);
    }

    println!(
        "\ngate: fresh disjoint-views scaling at clients {clients:?} \
         (base {base_size}, {}us epoch window) vs committed {baseline_path}",
        window.as_micros()
    );
    let per_client = clients
        .iter()
        .filter_map(|n| baseline.get(n).map(|(_, stmts)| stmts / n.max(&1)))
        .next()
        .unwrap_or(400);
    let fresh = disjoint_scaling(base_size, clients, per_client, window);

    let mut regressions = 0usize;
    let mut compared = 0usize;
    println!(
        "{:>10} {:>18} {:>16} {:>8}",
        "clients", "baseline (st/s)", "fresh (st/s)", "ratio"
    );
    for point in &fresh {
        let Some((base_rate, _)) = baseline.get(&point.threads).copied() else {
            println!("{:>10}  (no baseline point; skipped)", point.threads);
            continue;
        };
        compared += 1;
        let fresh_rate = point.statements_per_sec();
        // Regression = fresh throughput collapsed below baseline/factor.
        let ratio = base_rate / fresh_rate.max(1e-9);
        let verdict = if ratio > factor {
            regressions += 1;
            "  << REGRESSION"
        } else {
            ""
        };
        println!(
            "{:>10} {:>18.0} {:>16.0} {:>7.2}x{verdict}",
            point.threads, base_rate, fresh_rate, ratio
        );
    }
    if compared == 0 {
        eprintln!("no comparable thread-scaling points between fresh run and baseline");
        std::process::exit(2);
    }
    (regressions, compared)
}

/// Durability gate (`--durability-gate`): measure the batched-commit
/// workload fresh under in-memory and WAL-on (`epoch` fsync — the
/// default production policy) and fail when WAL-on throughput falls
/// more than `factor` below in-memory. Fresh-vs-fresh on the same
/// machine, so the ratio isolates the WAL code path from machine
/// variance entirely. Returns `(regressions, compared)`.
fn wal_overhead_gate(factor: f64) -> (usize, usize) {
    const BASE_SIZE: usize = 20_000;
    const COMMITS: usize = 5;
    const BATCH: usize = 200;
    println!(
        "\ngate: WAL-on (epoch fsync) vs in-memory, batched commits \
         ({COMMITS} x {BATCH} statements @ {BASE_SIZE})"
    );
    let points = durability_batched_sweep(BASE_SIZE, COMMITS, BATCH);
    let rate = |mode: &str| {
        points
            .iter()
            .find(|p| p.mode == mode)
            .map(DurabilityPoint::statements_per_sec)
            .unwrap_or_else(|| {
                eprintln!("durability sweep missing mode '{mode}'");
                std::process::exit(2);
            })
    };
    let in_memory = rate("in-memory");
    let wal_on = rate("wal-epoch");
    let ratio = in_memory / wal_on.max(1e-9);
    let regressed = ratio > factor;
    println!(
        "{:>10} {:>18.0} {:>16.0} {:>7.2}x{}",
        "wal-epoch",
        in_memory,
        wal_on,
        ratio,
        if regressed { "  << REGRESSION" } else { "" }
    );
    (usize::from(regressed), 1)
}

/// Read-interference gate (`--read-interference-gate`): measure query
/// latency fresh at 0 writers (idle) and under concurrent writers on
/// the same shard, and fail when the lock-free median exceeds `factor`
/// × the idle median — the "readers never wait for writers" claim as a
/// number. Fresh-vs-fresh on the same machine, so the ratio isolates
/// the read-path code from machine variance.
///
/// The gated statistic is the **median**, not the tail: under writers
/// that saturate the CPU, a reader's p99 inflates from *scheduling*
/// alone on an oversubscribed runner (1–2 cores), for any read
/// implementation — the tail cannot tell lock waits from CPU waits
/// there. The median can: the sweep's writers commit batches back to
/// back, holding the shard's write lock for macroscopic stretches, so
/// a regression to lock-taking reads queues a large share of reads
/// behind whole delta applications and drags the median with it, while
/// scheduler noise is a tail phenomenon and leaves the lock-free
/// median near idle (measured 1.0–1.4× on a single-core runner, well
/// under the default factor; the locked baseline is printed alongside
/// for contrast, not asserted — its multiplier depends on how many
/// cores the writers actually get). p99 is printed for visibility but
/// not gated. Returns `(regressions, compared)`.
fn interference_gate(factor: f64) -> (usize, usize) {
    const BASE_SIZE: usize = 20_000;
    const READS: usize = 1_000;
    const WRITERS: usize = 4;
    println!(
        "\ngate: lock-free query p50 under {WRITERS} same-shard writers vs idle \
         ({READS} reads @ {BASE_SIZE}; p99 reported, not gated)"
    );
    let points = read_interference_sweep(BASE_SIZE, &[0, WRITERS], READS);
    let point = |writers: usize| {
        points
            .iter()
            .find(|p| p.writers == writers)
            .unwrap_or_else(|| {
                eprintln!("interference sweep missing the {writers}-writer point");
                std::process::exit(2);
            })
    };
    let us = |d: std::time::Duration| d.as_secs_f64() * 1e6;
    let idle = point(0);
    let loaded = point(WRITERS);
    let ratio = us(loaded.mvcc_p50) / us(idle.mvcc_p50).max(1e-9);
    let regressed = ratio > factor;
    println!(
        "{:>12} {:>16} {:>16} {:>8}",
        "metric", "idle (us)", "loaded (us)", "ratio"
    );
    println!(
        "{:>12} {:>16.1} {:>16.1} {:>7.2}x{}",
        "mvcc p50",
        us(idle.mvcc_p50),
        us(loaded.mvcc_p50),
        ratio,
        if regressed { "  << REGRESSION" } else { "" }
    );
    println!(
        "{:>12} {:>16.1} {:>16.1} {:>7.2}x  (reported)",
        "mvcc p99",
        us(idle.mvcc_p99),
        us(loaded.mvcc_p99),
        us(loaded.mvcc_p99) / us(idle.mvcc_p99).max(1e-9)
    );
    println!(
        "{:>12} {:>16.1} {:>16.1} {:>7.2}x  (baseline, for contrast)",
        "locked p50",
        us(idle.locked_p50),
        us(loaded.locked_p50),
        us(loaded.locked_p50) / us(idle.locked_p50).max(1e-9)
    );
    (usize::from(regressed), 1)
}

/// Range-pushdown gate (`--range-gate`). Static half: the committed
/// figure6 baseline's `range_guard` section must carry a run at ≥1M
/// rows with a ≤10%-selectivity point that recorded a ≥3× speedup —
/// the ordered-index claim stays on the record. (Only the most
/// selective point is expected to clear 3×: the putback pipeline's
/// shared per-matching-tuple work dilutes the ratio as selectivity
/// grows — that scaling story is exactly what the sweep documents.)
/// Fresh half: the 1%-selectivity point re-measured at a CI-sized
/// table, range-index plans versus hash-only plans. Fresh-vs-fresh on
/// the same machine, so the ratio isolates the plan shape from machine
/// variance; fails below `factor`. Returns `(regressions, compared)`.
fn range_pushdown_gate(baseline: &Json, factor: f64) -> (usize, usize) {
    const COMMITTED_MIN_ROWS: i64 = 1_000_000;
    const COMMITTED_MIN_SPEEDUP: f64 = 3.0;
    const FRESH_ROWS: usize = 200_000;
    const FRESH_PCT: u32 = 1;
    let mut regressions = 0usize;

    // Static: the committed trajectory must keep the headline number.
    println!(
        "\ngate: committed range_guard run at >= {COMMITTED_MIN_ROWS} rows must show \
         >= {COMMITTED_MIN_SPEEDUP}x for a guard keeping <= 10%"
    );
    let committed_ok = baseline
        .get("range_guard")
        .and_then(|s| s.get("runs"))
        .and_then(Json::as_arr)
        .is_some_and(|runs| {
            runs.iter().rev().any(|run| {
                let big_enough = run
                    .get("base_size")
                    .and_then(Json::as_i64)
                    .is_some_and(|n| n >= COMMITTED_MIN_ROWS);
                let points = run.get("points").and_then(Json::as_arr).unwrap_or(&[]);
                let selective: Vec<&Json> = points
                    .iter()
                    .filter(|p| {
                        p.get("selectivity_pct")
                            .and_then(Json::as_i64)
                            .is_some_and(|pct| pct <= 10)
                    })
                    .collect();
                big_enough
                    && selective.iter().any(|p| {
                        p.get("speedup")
                            .and_then(Json::as_f64)
                            .is_some_and(|s| s >= COMMITTED_MIN_SPEEDUP)
                    })
            })
        });
    if committed_ok {
        println!("      committed section OK");
    } else {
        regressions += 1;
        println!("      << REGRESSION: no qualifying committed range_guard run");
    }

    // Fresh: the plan-shape ratio on this machine, CI-sized.
    println!(
        "gate: fresh range-index vs hash-only at {FRESH_ROWS} rows, \
         {FRESH_PCT}% selectivity"
    );
    let hash_only = range_guard::measure(FRESH_ROWS, FRESH_PCT, false);
    let range_index = range_guard::measure(FRESH_ROWS, FRESH_PCT, true);
    let speedup = hash_only.as_secs_f64() / range_index.as_secs_f64().max(1e-9);
    let fresh_regressed = speedup < factor;
    regressions += usize::from(fresh_regressed);
    println!(
        "{:>12} {:>15.3} {:>17.3} {:>7.2}x{}",
        format!("{FRESH_PCT}%"),
        hash_only.as_secs_f64() * 1e3,
        range_index.as_secs_f64() * 1e3,
        speedup,
        if fresh_regressed {
            "  << REGRESSION: range pushdown no longer pays"
        } else {
            ""
        }
    );
    (regressions, 2)
}

/// Connection-scaling gate (`--connection-gate`): measure the active
/// subset fresh on an empty `birds-serve` child and again under idle
/// connection load, fresh-vs-fresh on the same machine. Three checks:
///
/// * **p50 ratio** — loaded active p50 within `factor` × the idle p50
///   (with a small floor so near-zero idle medians don't turn noise
///   into a ratio): idle connections must not tax active ones.
/// * **thread ceiling** — the child's `Threads:` stays ≤ workers + 2
///   (main + reactor + workers) at peak connection count: connections
///   must not become threads.
/// * **Nagle ceiling** — the *idle-server* p50 stays under 40 ms
///   absolute: lockstep one-line round trips sit at the delayed-ACK
///   floor when `TCP_NODELAY` is lost, a regression the relative gate
///   cannot see (both points would inflate together).
///
/// p99 is printed for visibility, not gated — on a shared single-core
/// runner the tail measures the CPU scheduler. Returns
/// `(regressions, compared)`.
fn connection_scaling_gate(factor: f64) -> (usize, usize) {
    const WORKERS: usize = 2;
    const IDLE: usize = 2_000;
    const ACTIVE: usize = 8;
    const PER_CONN: usize = 100;
    const NAGLE_CEILING_MS: f64 = 40.0;
    println!(
        "\ngate: active-subset query p50 ({ACTIVE} conns x {PER_CONN} reqs) under {IDLE} \
         idle connections vs an empty server ({WORKERS} workers; p99 reported, not gated)"
    );
    let points = connection_scaling(WORKERS, &[0, IDLE], ACTIVE, PER_CONN).unwrap_or_else(|e| {
        eprintln!("connection gate cannot run: {e}");
        std::process::exit(2);
    });
    let point = |idle: usize| {
        points
            .iter()
            .find(|p| p.idle_conns == idle)
            .unwrap_or_else(|| {
                eprintln!("connection sweep missing the {idle}-idle point");
                std::process::exit(2);
            })
    };
    let us = |d: std::time::Duration| d.as_secs_f64() * 1e6;
    let idle = point(0);
    let loaded = point(IDLE);
    let mut regressions = 0usize;

    // Floor the denominator at 50µs: sub-floor medians are all "fast".
    let ratio = us(loaded.p50) / us(idle.p50).max(50.0);
    let p50_regressed = ratio > factor;
    regressions += usize::from(p50_regressed);
    println!(
        "{:>14} {:>16} {:>16} {:>8}",
        "metric", "empty (us)", "loaded (us)", "ratio"
    );
    println!(
        "{:>14} {:>16.1} {:>16.1} {:>7.2}x{}",
        "active p50",
        us(idle.p50),
        us(loaded.p50),
        ratio,
        if p50_regressed { "  << REGRESSION" } else { "" }
    );
    println!(
        "{:>14} {:>16.1} {:>16.1} {:>7.2}x  (reported)",
        "active p99",
        us(idle.p99),
        us(loaded.p99),
        us(loaded.p99) / us(idle.p99).max(1e-9)
    );

    let ceiling = WORKERS + 2;
    let threads_regressed = loaded.server_threads > ceiling;
    regressions += usize::from(threads_regressed);
    println!(
        "{:>14} {:>16} {:>16}  (ceiling {ceiling}){}",
        "threads",
        idle.server_threads,
        loaded.server_threads,
        if threads_regressed {
            "  << REGRESSION: connections became threads"
        } else {
            ""
        }
    );

    let nagle_regressed = us(idle.p50) >= NAGLE_CEILING_MS * 1e3;
    regressions += usize::from(nagle_regressed);
    println!(
        "{:>14} {:>16.1} {:>16}  (ceiling {NAGLE_CEILING_MS}ms){}",
        "nodelay p50",
        us(idle.p50),
        "-",
        if nagle_regressed {
            "  << REGRESSION: lockstep latency at the delayed-ACK floor"
        } else {
            ""
        }
    );
    (regressions, 3)
}

/// `base_size → (original_ms, incremental_ms)`.
type BaselineMap = std::collections::BTreeMap<usize, (f64, f64)>;

/// `(label, points)` of the last run in the baseline document that
/// carries points for `view_name`.
fn baseline_points(doc: &Json, view_name: &str) -> Option<(String, BaselineMap)> {
    let runs = doc.get("runs")?.as_arr()?;
    for run in runs.iter().rev() {
        let Some(views) = run.get("views").and_then(Json::as_arr) else {
            continue;
        };
        for view in views {
            if view.get("view").and_then(Json::as_str) != Some(view_name) {
                continue;
            }
            let mut map = BaselineMap::new();
            for point in view.get("points").and_then(Json::as_arr).unwrap_or(&[]) {
                let (Some(size), Some(orig), Some(inc)) = (
                    point.get("base_size").and_then(Json::as_i64),
                    point.get("original_ms").and_then(Json::as_f64),
                    point.get("incremental_ms").and_then(Json::as_f64),
                ) else {
                    continue;
                };
                map.insert(size as usize, (orig, inc));
            }
            if !map.is_empty() {
                let label = run
                    .get("label")
                    .and_then(Json::as_str)
                    .unwrap_or("<unlabeled>")
                    .to_owned();
                return Some((label, map));
            }
        }
    }
    None
}

fn require_value(v: Option<String>, flag: &str) -> String {
    v.unwrap_or_else(|| {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    })
}

fn parse_usize_list(raw: &str, flag: &str) -> Vec<usize> {
    raw.split(',')
        .map(|s| {
            s.trim().parse().unwrap_or_else(|_| {
                eprintln!("{flag} needs comma-separated integers");
                std::process::exit(2);
            })
        })
        .collect()
}
