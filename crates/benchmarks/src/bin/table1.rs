//! Regenerate the paper's Table 1: validation results over the 32-view
//! benchmark corpus.
//!
//! ```text
//! cargo run --release -p birds-benchmarks --bin table1
//! ```

use birds_benchmarks::corpus;
use birds_benchmarks::table1::{format_table, run_entry, Table1Row};

fn main() {
    // Stream rows as they finish so long validations show progress.
    let mut rows: Vec<Table1Row> = Vec::new();
    for e in corpus::entries() {
        eprint!("validating #{:>2} {:<17}... ", e.id, e.name);
        let t = std::time::Instant::now();
        let row = run_entry(&e);
        eprintln!("done in {:.2?} (valid={:?})", t.elapsed(), row.valid);
        rows.push(row);
    }
    print!("{}", format_table(&rows));

    let validated = rows.iter().filter(|r| r.valid == Some(true)).count();
    let lvgn = rows.iter().filter(|r| r.lvgn == Some(true)).count();
    let expressible = rows.iter().filter(|r| r.expressible).count();
    println!(
        "\n{expressible}/32 expressible in NR-Datalog; {lvgn} in LVGN-Datalog; \
         {validated} validated as well-behaved."
    );
}
