//! Measure service-layer write throughput: batched versus per-statement
//! application, and concurrent-client scaling.
//!
//! ```text
//! cargo run --release -p birds-benchmarks --bin throughput
//! cargo run --release -p birds-benchmarks --bin throughput -- --quick
//! cargo run --release -p birds-benchmarks --bin throughput -- --emit-json --label "PR 3"
//! ```
//!
//! `--emit-json` writes `BENCH_throughput.json` atomically (temp file +
//! rename); `--out <path>` overrides the target, `--label <text>` tags
//! the run. `--quick` shrinks the sweep for smoke runs.

use birds_benchmarks::connection::{connection_scaling, ConnectionPoint};
use birds_benchmarks::emit::write_atomic;
use birds_benchmarks::throughput::{
    batch_sweep, disjoint_scaling, durability_autocommit_sweep, durability_batched_sweep,
    group_commit_scaling, read_interference_sweep, thread_scaling, to_json, DurabilityPoint,
    InterferencePoint, ScalePoint,
};
use std::time::Duration;

fn main() {
    let mut emit_json = false;
    let mut quick = false;
    let mut label: Option<String> = None;
    let mut out_path = String::from("BENCH_throughput.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--emit-json" => emit_json = true,
            "--quick" => quick = true,
            "--label" => label = Some(require_value(args.next(), "--label")),
            "--out" => out_path = require_value(args.next(), "--out"),
            flag => {
                eprintln!("unknown flag '{flag}'");
                std::process::exit(2);
            }
        }
    }

    let (base_size, batch_sizes, threads, batches_per_thread, batch, per_client): (
        usize,
        Vec<usize>,
        Vec<usize>,
        usize,
        usize,
        usize,
    ) = if quick {
        (1_000, vec![100, 1_000], vec![1, 2], 2, 200, 50)
    } else {
        (
            20_000,
            vec![100, 1_000, 10_000],
            vec![1, 2, 4, 8],
            4,
            1_000,
            400,
        )
    };
    // Group-commit epoch window for the autocommit scaling sweeps: long
    // enough that concurrent submitters reliably join the same epoch,
    // short enough to stay realistic as a commit latency floor.
    let epoch_window = Duration::from_micros(200);

    println!("== batched vs per-statement (luxuryitems @ {base_size}, incremental) ==");
    println!(
        "{:>12} {:>20} {:>14} {:>8}",
        "statements", "per-statement (ms)", "batched (ms)", "speedup"
    );
    let batch_points = batch_sweep(base_size, &batch_sizes);
    for p in &batch_points {
        println!(
            "{:>12} {:>20.2} {:>14.2} {:>7.1}x",
            p.statements,
            p.per_statement.as_secs_f64() * 1e3,
            p.batched.as_secs_f64() * 1e3,
            p.speedup()
        );
    }

    println!();
    println!(
        "== concurrent clients, ONE shared view ({batch}-statement batches, \
         {batches_per_thread} per client; contended baseline) =="
    );
    let scale_points = thread_scaling(base_size, &threads, batches_per_thread, batch);
    print_scale_points(&scale_points);

    println!();
    println!(
        "== disjoint views: n autocommit clients x n footprint shards \
         ({per_client} stmts/client, {}us epoch window) ==",
        epoch_window.as_micros()
    );
    let disjoint_points = disjoint_scaling(base_size, &threads, per_client, epoch_window);
    print_scale_points(&disjoint_points);

    println!();
    println!(
        "== group commit: n autocommit clients, ONE shared view \
         ({per_client} stmts/client, {}us epoch window) ==",
        epoch_window.as_micros()
    );
    let coalescing_points = group_commit_scaling(base_size, &threads, per_client, epoch_window);
    print_scale_points(&coalescing_points);

    let (dur_commits, dur_batch, dur_auto) = if quick { (3, 100, 50) } else { (10, 500, 200) };
    println!();
    println!(
        "== durability: WAL overhead vs in-memory ({dur_commits} batches x {dur_batch} \
         statements; autocommit x {dur_auto}) =="
    );
    let durability_batched = durability_batched_sweep(base_size, dur_commits, dur_batch);
    print_durability_points("batched", &durability_batched);
    let durability_autocommit = durability_autocommit_sweep(base_size, dur_auto);
    print_durability_points("autocommit", &durability_autocommit);

    let (reader_writers, reads) = if quick {
        (vec![0, 2], 200)
    } else {
        (vec![0, 2, 8], 2_000)
    };
    println!();
    println!(
        "== reader/writer interference: query latency under concurrent \
         writers ({reads} reads/point, MVCC vs locked baseline) =="
    );
    let read_interference = read_interference_sweep(base_size, &reader_writers, reads);
    print_interference_points(&read_interference);

    // Connection scaling needs the birds-serve binary built alongside:
    // it spawns the server as a child so connections, threads and RSS
    // are measured from outside (/proc/<pid>/status).
    let (conn_workers, conn_idle, conn_active, conn_per_conn): (usize, Vec<usize>, usize, usize) =
        if quick {
            (2, vec![0, 200, 1_000], 8, 50)
        } else {
            (2, vec![0, 1_000, 5_000, 10_000], 16, 200)
        };
    println!();
    println!(
        "== connection scaling: {conn_active} active x {conn_per_conn} lockstep queries \
         under n idle connections (birds-serve child, {conn_workers} workers) =="
    );
    let connection_points: Vec<ConnectionPoint> =
        match connection_scaling(conn_workers, &conn_idle, conn_active, conn_per_conn) {
            Ok(points) => {
                print_connection_points(&points);
                points
            }
            Err(e) => {
                eprintln!("connection scaling skipped: {e}");
                Vec::new()
            }
        };

    if emit_json {
        let label = label.unwrap_or_else(|| "current".to_owned());
        let doc = to_json(
            &label,
            base_size,
            &batch_points,
            &scale_points,
            &disjoint_points,
            &coalescing_points,
            &durability_batched,
            &durability_autocommit,
            &read_interference,
            &connection_points,
            epoch_window,
        );
        write_atomic(&out_path, &doc.to_pretty()).expect("write benchmark JSON");
        println!("\nwrote {out_path}");
    }
}

fn print_connection_points(points: &[ConnectionPoint]) {
    println!(
        "{:>10} {:>12} {:>12} {:>9} {:>12} {:>12}",
        "idle", "p50 (us)", "p99 (us)", "threads", "rss (kB)", "peak (kB)"
    );
    for p in points {
        println!(
            "{:>10} {:>12.1} {:>12.1} {:>9} {:>12} {:>12}",
            p.idle_conns,
            p.p50.as_secs_f64() * 1e6,
            p.p99.as_secs_f64() * 1e6,
            p.server_threads,
            p.vm_rss_kb,
            p.vm_hwm_kb,
        );
    }
}

fn print_durability_points(tag: &str, points: &[DurabilityPoint]) {
    let baseline = points
        .iter()
        .find(|p| p.mode == "in-memory")
        .map(DurabilityPoint::statements_per_sec)
        .unwrap_or(0.0);
    for p in points {
        println!(
            "{tag:>12} {:>11} {:>12.0} stmts/sec {:>6.2}x overhead",
            p.mode,
            p.statements_per_sec(),
            baseline / p.statements_per_sec().max(1e-9)
        );
    }
}

fn print_interference_points(points: &[InterferencePoint]) {
    println!(
        "{:>8} {:>14} {:>14} {:>16} {:>16}",
        "writers", "mvcc p50 (us)", "mvcc p99 (us)", "locked p50 (us)", "locked p99 (us)"
    );
    for p in points {
        println!(
            "{:>8} {:>14.1} {:>14.1} {:>16.1} {:>16.1}",
            p.writers,
            p.mvcc_p50.as_secs_f64() * 1e6,
            p.mvcc_p99.as_secs_f64() * 1e6,
            p.locked_p50.as_secs_f64() * 1e6,
            p.locked_p99.as_secs_f64() * 1e6,
        );
    }
}

fn print_scale_points(points: &[ScalePoint]) {
    println!(
        "{:>8} {:>12} {:>14} {:>16} {:>10}",
        "clients", "statements", "elapsed (ms)", "stmts/sec", "scaling"
    );
    let base = points
        .first()
        .map(ScalePoint::statements_per_sec)
        .unwrap_or(0.0);
    for p in points {
        println!(
            "{:>8} {:>12} {:>14.2} {:>16.0} {:>9.2}x",
            p.threads,
            p.total_statements,
            p.elapsed.as_secs_f64() * 1e3,
            p.statements_per_sec(),
            p.statements_per_sec() / base.max(1e-9)
        );
    }
}

fn require_value(v: Option<String>, flag: &str) -> String {
    v.unwrap_or_else(|| {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    })
}
