//! Measure service-layer write throughput: batched versus per-statement
//! application, and concurrent-client scaling.
//!
//! ```text
//! cargo run --release -p birds-benchmarks --bin throughput
//! cargo run --release -p birds-benchmarks --bin throughput -- --quick
//! cargo run --release -p birds-benchmarks --bin throughput -- --emit-json --label "PR 3"
//! ```
//!
//! `--emit-json` writes `BENCH_throughput.json` atomically (temp file +
//! rename); `--out <path>` overrides the target, `--label <text>` tags
//! the run. `--quick` shrinks the sweep for smoke runs.

use birds_benchmarks::emit::write_atomic;
use birds_benchmarks::throughput::{batch_sweep, thread_scaling, to_json};

fn main() {
    let mut emit_json = false;
    let mut quick = false;
    let mut label: Option<String> = None;
    let mut out_path = String::from("BENCH_throughput.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--emit-json" => emit_json = true,
            "--quick" => quick = true,
            "--label" => label = Some(require_value(args.next(), "--label")),
            "--out" => out_path = require_value(args.next(), "--out"),
            flag => {
                eprintln!("unknown flag '{flag}'");
                std::process::exit(2);
            }
        }
    }

    let (base_size, batch_sizes, threads, batches_per_thread, batch): (
        usize,
        Vec<usize>,
        Vec<usize>,
        usize,
        usize,
    ) = if quick {
        (1_000, vec![100, 1_000], vec![1, 2], 2, 200)
    } else {
        (20_000, vec![100, 1_000, 10_000], vec![1, 2, 4, 8], 4, 1_000)
    };

    println!("== batched vs per-statement (luxuryitems @ {base_size}, incremental) ==");
    println!(
        "{:>12} {:>20} {:>14} {:>8}",
        "statements", "per-statement (ms)", "batched (ms)", "speedup"
    );
    let batch_points = batch_sweep(base_size, &batch_sizes);
    for p in &batch_points {
        println!(
            "{:>12} {:>20.2} {:>14.2} {:>7.1}x",
            p.statements,
            p.per_statement.as_secs_f64() * 1e3,
            p.batched.as_secs_f64() * 1e3,
            p.speedup()
        );
    }

    println!();
    println!(
        "== concurrent clients ({batch}-statement batches, {batches_per_thread} per client) =="
    );
    println!(
        "{:>8} {:>12} {:>14} {:>16}",
        "threads", "statements", "elapsed (ms)", "stmts/sec"
    );
    let scale_points = thread_scaling(base_size, &threads, batches_per_thread, batch);
    for p in &scale_points {
        println!(
            "{:>8} {:>12} {:>14.2} {:>16.0}",
            p.threads,
            p.total_statements,
            p.elapsed.as_secs_f64() * 1e3,
            p.statements_per_sec()
        );
    }

    if emit_json {
        let label = label.unwrap_or_else(|| "current".to_owned());
        let doc = to_json(&label, base_size, &batch_points, &scale_points);
        write_atomic(&out_path, &doc.to_pretty()).expect("write benchmark JSON");
        println!("\nwrote {out_path}");
    }
}

fn require_value(v: Option<String>, flag: &str) -> String {
    v.unwrap_or_else(|| {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    })
}
