//! Regenerate the paper's Figure 6: view-update latency versus base-table
//! size, original versus incrementalized strategy.
//!
//! ```text
//! cargo run --release -p birds-benchmarks --bin figure6                  # all panels
//! cargo run --release -p birds-benchmarks --bin figure6 -- luxuryitems   # one panel
//! cargo run --release -p birds-benchmarks --bin figure6 -- luxuryitems 1000 10000
//! ```

use birds_benchmarks::figure6::{sweep, Figure6View};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (views, sizes): (Vec<Figure6View>, Vec<usize>) = match args.split_first() {
        None => (Figure6View::all().to_vec(), default_sizes()),
        Some((name, rest)) => {
            let view = Figure6View::from_name(name).unwrap_or_else(|| {
                eprintln!(
                    "unknown view '{name}'; expected one of: {}",
                    Figure6View::all().map(|v| v.name()).join(", ")
                );
                std::process::exit(2);
            });
            let sizes: Vec<usize> = if rest.is_empty() {
                default_sizes()
            } else {
                rest.iter()
                    .map(|s| s.parse().expect("sizes must be integers"))
                    .collect()
            };
            (vec![view], sizes)
        }
    };

    for view in views {
        println!("== {} ==", view.name());
        println!(
            "{:>10} {:>16} {:>16} {:>8}",
            "base size", "original (ms)", "incremental (ms)", "speedup"
        );
        for p in sweep(view, &sizes) {
            let orig = p.original.as_secs_f64() * 1e3;
            let inc = p.incremental.as_secs_f64() * 1e3;
            println!(
                "{:>10} {:>16.2} {:>16.2} {:>7.1}x",
                p.base_size,
                orig,
                inc,
                orig / inc.max(1e-9)
            );
        }
        println!();
    }
}

fn default_sizes() -> Vec<usize> {
    vec![1_000, 10_000, 100_000, 300_000, 1_000_000]
}
