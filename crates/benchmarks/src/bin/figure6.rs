//! Regenerate the paper's Figure 6: view-update latency versus base-table
//! size, original versus incrementalized strategy.
//!
//! ```text
//! cargo run --release -p birds-benchmarks --bin figure6                  # all panels
//! cargo run --release -p birds-benchmarks --bin figure6 -- luxuryitems   # one panel
//! cargo run --release -p birds-benchmarks --bin figure6 -- luxuryitems 1000 10000
//! cargo run --release -p birds-benchmarks --bin figure6 -- luxuryitems --emit-json
//! ```
//!
//! `--emit-json` additionally writes the measurements to
//! `BENCH_figure6.json` (see the committed baseline of that name for the
//! perf trajectory across PRs). `--label <text>` tags the emitted run —
//! re-running with an existing label **replaces** that run; `--out
//! <path>` overrides the output path. The file is written atomically
//! (temp file + rename), so a crash or concurrent reader never sees a
//! torn document.
//!
//! `--range-guard <size>` additionally runs the range-guard selectivity
//! sweep (1%/10%/50% selective comparison guards, hash-only plans vs
//! ordered-index range scans) at the given base size and records it in
//! the document's `"range_guard"` section.

use birds_benchmarks::emit::write_atomic;
use birds_benchmarks::figure6::{sweep, to_json, upsert_run, Figure6View};
use birds_benchmarks::range_guard;

const RANGE_GUARD_PCTS: [u32; 3] = [1, 10, 50];

fn main() {
    let mut emit_json = false;
    let mut label: Option<String> = None;
    let mut out_path = String::from("BENCH_figure6.json");
    let mut range_guard_size: Option<usize> = None;
    let mut positional: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--emit-json" => emit_json = true,
            "--label" => label = Some(require_value(args.next(), "--label")),
            "--out" => out_path = require_value(args.next(), "--out"),
            "--range-guard" => {
                range_guard_size = Some(
                    require_value(args.next(), "--range-guard")
                        .parse()
                        .unwrap_or_else(|_| {
                            eprintln!("--range-guard needs a base size (tuples)");
                            std::process::exit(2);
                        }),
                )
            }
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag '{flag}'");
                std::process::exit(2);
            }
            _ => positional.push(arg),
        }
    }

    let (views, sizes): (Vec<Figure6View>, Vec<usize>) = match positional.split_first() {
        None => (Figure6View::all().to_vec(), default_sizes()),
        Some((name, rest)) => {
            let view = Figure6View::from_name(name).unwrap_or_else(|| {
                eprintln!(
                    "unknown view '{name}'; expected one of: {}",
                    Figure6View::all().map(|v| v.name()).join(", ")
                );
                std::process::exit(2);
            });
            let sizes: Vec<usize> = if rest.is_empty() {
                default_sizes()
            } else {
                rest.iter()
                    .map(|s| s.parse().expect("sizes must be integers"))
                    .collect()
            };
            (vec![view], sizes)
        }
    };

    let mut results: Vec<(Figure6View, Vec<birds_benchmarks::figure6::Figure6Point>)> = Vec::new();
    for view in views {
        println!("== {} ==", view.name());
        println!(
            "{:>10} {:>16} {:>16} {:>8}",
            "base size", "original (ms)", "incremental (ms)", "speedup"
        );
        let points = sweep(view, &sizes);
        for p in &points {
            let orig = p.original.as_secs_f64() * 1e3;
            let inc = p.incremental.as_secs_f64() * 1e3;
            println!(
                "{:>10} {:>16.2} {:>16.2} {:>7.1}x",
                p.base_size,
                orig,
                inc,
                orig / inc.max(1e-9)
            );
        }
        println!();
        results.push((view, points));
    }

    let range_points = range_guard_size.map(|n| {
        println!("== range_guard (base size {n}) ==");
        println!(
            "{:>12} {:>10} {:>15} {:>17} {:>8}",
            "selectivity", "threshold", "hash-only (ms)", "range-index (ms)", "speedup"
        );
        let points = range_guard::sweep(n, &RANGE_GUARD_PCTS);
        for p in &points {
            println!(
                "{:>11}% {:>10} {:>15.2} {:>17.2} {:>7.1}x",
                p.selectivity_pct,
                p.threshold,
                p.hash_only.as_secs_f64() * 1e3,
                p.range_index.as_secs_f64() * 1e3,
                p.speedup()
            );
        }
        println!();
        (n, points)
    });

    if emit_json {
        let label = label.unwrap_or_else(|| "current".to_owned());
        // Merge into an existing trajectory file (the committed baseline
        // holds runs that cannot be regenerated; a run with the same
        // label is replaced); start a fresh document otherwise. An
        // existing file this writer doesn't recognize is left untouched.
        let mut json = match std::fs::read_to_string(&out_path) {
            Ok(existing) => match upsert_run(&existing, &label, &results) {
                Some(merged) => merged,
                None => {
                    eprintln!(
                        "refusing to overwrite {out_path}: not a figure6 \
                         trajectory document (use --out for a fresh file)"
                    );
                    std::process::exit(1);
                }
            },
            // Only a genuinely absent file starts a fresh document; any
            // other read failure (permissions, non-UTF-8 corruption) must
            // not clobber what's there.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => to_json(&label, &results),
            Err(e) => {
                eprintln!("cannot read {out_path}: {e}");
                std::process::exit(1);
            }
        };
        if let Some((n, points)) = &range_points {
            json = range_guard::upsert_run(&json, &label, *n, points)
                .expect("document was just validated/emitted as figure6");
        }
        write_atomic(&out_path, &json).expect("write benchmark JSON");
        println!("wrote {out_path}");
    }
}

fn default_sizes() -> Vec<usize> {
    vec![1_000, 10_000, 100_000, 300_000, 1_000_000]
}

fn require_value(v: Option<String>, flag: &str) -> String {
    v.unwrap_or_else(|| {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    })
}
