//! Deterministic synthetic data generators for the Figure 6 base tables.
//!
//! The paper randomly generates base-table data and sweeps the table size
//! from 0 to 3×10⁶ tuples. These generators produce the same-shaped data
//! deterministically (fixed seed), so benchmark runs are reproducible.

use birds_store::{tuple, Database, Relation, Tuple};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Seed shared by all generators; change to resample every workload.
pub const SEED: u64 = 0xB1AD5;

/// `items(id, price)` with roughly half the rows above the luxury
/// threshold (price > 1000) so the view is ~n/2.
pub fn items_database(n: usize) -> Database {
    let mut rng = StdRng::seed_from_u64(SEED);
    let tuples = (0..n as i64).map(|i| {
        let price: i64 = if rng.gen_bool(0.5) {
            rng.gen_range(1001..5000)
        } else {
            rng.gen_range(1..=1000)
        };
        tuple![i, price]
    });
    let mut db = Database::new();
    db.add_relation(Relation::with_tuples("items", 2, tuples).expect("arity 2"))
        .expect("fresh database");
    db
}

/// `office(oid, oname, floor, phone)` — every row visible in the
/// projection view.
pub fn office_database(n: usize) -> Database {
    let mut rng = StdRng::seed_from_u64(SEED);
    let tuples = (0..n as i64).map(|i| {
        let floor: i64 = rng.gen_range(1..40);
        tuple![i, format!("office{i}"), floor, format!("+81-{i:08}")]
    });
    let mut db = Database::new();
    db.add_relation(Relation::with_tuples("office", 4, tuples).expect("arity 4"))
        .expect("fresh database");
    db
}

/// `tasks(tid, title, due, owner, status)` (~half `open`) and
/// `assignment(tid, worker)` for ~three quarters of the task ids.
pub fn tasks_database(n: usize) -> Database {
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut tasks: Vec<Tuple> = Vec::with_capacity(n);
    let mut assignment: Vec<Tuple> = Vec::with_capacity(n);
    for i in 0..n as i64 {
        let status = if rng.gen_bool(0.5) { "open" } else { "done" };
        let day = rng.gen_range(1..=28);
        tasks.push(tuple![
            i + 1,
            format!("task{i}"),
            format!("2020-06-{day:02}"),
            format!("owner{}", i % 97),
            status
        ]);
        // The first few tids are always assigned so the Figure 6 update
        // workload (which inserts view rows for small tids) satisfies the
        // view's inclusion-dependency constraint.
        if i < 10 || rng.gen_bool(0.75) {
            assignment.push(tuple![i + 1, format!("worker{}", i % 31)]);
        }
    }
    let mut db = Database::new();
    db.add_relation(Relation::with_tuples("tasks", 5, tasks).expect("arity 5"))
        .expect("fresh database");
    db.add_relation(Relation::with_tuples("assignment", 2, assignment).expect("arity 2"))
        .expect("fresh database");
    db
}

/// `brands_a(bid, bname, country)` / `brands_b(bid, bname)` with ids split
/// between the two tables (disjoint id ranges, positive ids).
pub fn brands_database(n: usize) -> Database {
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut a: Vec<Tuple> = Vec::new();
    let mut b: Vec<Tuple> = Vec::new();
    for i in 0..n as i64 {
        if rng.gen_bool(0.5) {
            a.push(tuple![i + 1, format!("brand{i}"), "JP"]);
        } else {
            b.push(tuple![i + 1, format!("brand{i}")]);
        }
    }
    let mut db = Database::new();
    db.add_relation(Relation::with_tuples("brands_a", 3, a).expect("arity 3"))
        .expect("fresh database");
    db.add_relation(Relation::with_tuples("brands_b", 2, b).expect("arity 2"))
        .expect("fresh database");
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        let a = items_database(500);
        let b = items_database(500);
        assert!(a.same_contents(&b));
    }

    #[test]
    fn items_sizes_match() {
        let db = items_database(1000);
        assert_eq!(db.relation("items").unwrap().len(), 1000);
    }

    #[test]
    fn items_prices_split_around_threshold() {
        let db = items_database(2000);
        let luxury = db
            .relation("items")
            .unwrap()
            .iter()
            .filter(|t| t[1] > birds_store::Value::int(1000))
            .count();
        assert!(luxury > 700 && luxury < 1300, "luxury={luxury}");
    }

    #[test]
    fn tasks_have_assignments_subset() {
        let db = tasks_database(400);
        assert_eq!(db.relation("tasks").unwrap().len(), 400);
        let a = db.relation("assignment").unwrap().len();
        assert!(a > 200 && a < 400, "assignments={a}");
    }

    #[test]
    fn brands_are_disjoint_union() {
        let db = brands_database(600);
        let a = db.relation("brands_a").unwrap().len();
        let b = db.relation("brands_b").unwrap().len();
        assert_eq!(a + b, 600);
    }

    #[test]
    fn office_rows_are_unique_by_oid() {
        let db = office_database(300);
        assert_eq!(db.relation("office").unwrap().len(), 300);
    }
}
