//! # birds-benchmarks
//!
//! The paper's evaluation assets (§6.2):
//!
//! * [`corpus`] — the 32-view Table 1 benchmark corpus, re-authored
//!   row-faithfully (same operators, constraint classes and approximate
//!   program sizes).
//! * [`datagen`] — deterministic synthetic data generators for the base
//!   tables of the Figure 6 views.
//! * [`table1`] — the Table 1 experiment: validate every corpus strategy,
//!   record LVGN membership, validation time and compiled-SQL size.
//! * [`figure6`] — the Figure 6 experiment: view-update latency versus
//!   base-table size, original strategy versus incrementalized strategy,
//!   for the four selected views.
//! * [`throughput`] — the service-layer experiment: batched versus
//!   per-statement update application and concurrent-client scaling
//!   (not in the paper; backs the `BENCH_throughput.json` trajectory).
//! * [`connection`] — the connection-scaling experiment: serving
//!   latency, thread count and RSS of a `birds-serve` child process as
//!   mostly-idle connections accumulate (the epoll reactor's
//!   connections-are-not-threads claim, measured from outside via
//!   `/proc/<pid>/status`).
//! * [`emit`] — atomic JSON-file emission shared by the binaries.
//!
//! Binaries `table1`, `figure6`, `throughput` print the regenerated
//! table/figures; `bench_gate` is the CI perf-regression gate:
//!
//! ```text
//! cargo run --release -p birds-benchmarks --bin table1
//! cargo run --release -p birds-benchmarks --bin figure6 -- luxuryitems
//! cargo run --release -p birds-benchmarks --bin throughput
//! cargo run --release -p birds-benchmarks --bin bench_gate -- --baseline BENCH_figure6.json
//! ```

pub mod connection;
pub mod corpus;
pub mod datagen;
pub mod emit;
pub mod figure6;
pub mod range_guard;
pub mod table1;
pub mod throughput;

pub use corpus::{entries, entry, CorpusEntry, RelSpec, SourceKind};
pub use figure6::{Figure6Point, Figure6View};
pub use range_guard::RangeGuardPoint;
pub use table1::{run_table1, Table1Row};
