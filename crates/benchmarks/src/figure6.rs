//! The Figure 6 experiment: view-update latency versus base-table size,
//! original strategy versus incrementalized strategy.
//!
//! The paper selects four typical views from the corpus — `luxuryitems`
//! (selection), `officeinfo` (projection), `outstanding_task` (semi-join)
//! and `vw_brands` (union) — randomly generates base-table data, and
//! measures the running time of one view-update transaction as the base
//! size grows. The expected shape: the original strategy's latency grows
//! linearly with the base size (the putback program re-reads the whole
//! source and view), while the incrementalized strategy stays flat.

use crate::corpus;
use crate::datagen;
use birds_core::UpdateStrategy;
use birds_datalog::{parse_program, Program};
use birds_engine::{Engine, StrategyMode};
use birds_service::Json;
use birds_store::Database;
use std::time::{Duration, Instant};

/// One of the four views measured in Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Figure6View {
    /// Figure 6(a): selection.
    Luxuryitems,
    /// Figure 6(b): projection.
    Officeinfo,
    /// Figure 6(c): semi-join.
    OutstandingTask,
    /// Figure 6(d): union.
    VwBrands,
}

impl Figure6View {
    /// All four panels in paper order.
    pub fn all() -> [Figure6View; 4] {
        [
            Figure6View::Luxuryitems,
            Figure6View::Officeinfo,
            Figure6View::OutstandingTask,
            Figure6View::VwBrands,
        ]
    }

    /// Corpus view name.
    pub fn name(&self) -> &'static str {
        match self {
            Figure6View::Luxuryitems => "luxuryitems",
            Figure6View::Officeinfo => "officeinfo",
            Figure6View::OutstandingTask => "outstanding_task",
            Figure6View::VwBrands => "vw_brands",
        }
    }

    /// Parse a panel selector (`luxuryitems`, `officeinfo`, …).
    pub fn from_name(name: &str) -> Option<Figure6View> {
        Figure6View::all().into_iter().find(|v| v.name() == name)
    }

    /// The view's update strategy from the corpus.
    pub fn strategy(&self) -> UpdateStrategy {
        corpus::entry(self.name())
            .expect("figure-6 views are in the corpus")
            .strategy()
            .expect("figure-6 views are expressible")
    }

    /// The view definition (expected get) from the corpus.
    pub fn get(&self) -> Program {
        parse_program(
            corpus::entry(self.name())
                .expect("figure-6 views are in the corpus")
                .expected_get,
        )
        .expect("corpus gets parse")
    }

    /// Generate the base tables at size `n`.
    pub fn database(&self, n: usize) -> Database {
        match self {
            Figure6View::Luxuryitems => datagen::items_database(n),
            Figure6View::Officeinfo => datagen::office_database(n),
            Figure6View::OutstandingTask => datagen::tasks_database(n),
            Figure6View::VwBrands => datagen::brands_database(n),
        }
    }

    /// The measured transaction: one INSERT plus one DELETE on the view,
    /// combined in a `BEGIN … END` block (the paper's workload is a
    /// single SQL statement modifying the view; we use a two-statement
    /// transaction so both delta directions are exercised).
    pub fn update_script(&self, n: usize) -> String {
        let fresh = n as i64 + 7;
        match self {
            Figure6View::Luxuryitems => format!(
                "BEGIN; INSERT INTO luxuryitems VALUES ({fresh}, 4999); \
                 DELETE FROM luxuryitems WHERE id = 1; END;"
            ),
            Figure6View::Officeinfo => format!(
                "BEGIN; INSERT INTO officeinfo VALUES ({fresh}, 'annex', '+81-99'); \
                 DELETE FROM officeinfo WHERE oid = 1; END;"
            ),
            Figure6View::OutstandingTask => format!(
                "BEGIN; INSERT INTO outstanding_task VALUES \
                 (1, 'hotfix{fresh}', '2020-07-01', 'ownerX'); \
                 DELETE FROM outstanding_task WHERE tid = 2; END;"
            ),
            Figure6View::VwBrands => format!(
                "BEGIN; INSERT INTO vw_brands VALUES ({fresh}, 'newbrand'); \
                 DELETE FROM vw_brands WHERE bid = 1; END;"
            ),
        }
    }

    /// Build an engine with the view registered (skipping re-validation:
    /// Table 1 already established validity; Figure 6 measures runtime).
    pub fn engine(&self, n: usize, mode: StrategyMode) -> Engine {
        let mut engine = Engine::new(self.database(n));
        engine
            .register_view_unchecked(self.strategy(), self.get(), mode)
            .expect("figure-6 view registers");
        engine
    }

    /// Time one update transaction at base size `n` under `mode`.
    pub fn measure(&self, n: usize, mode: StrategyMode) -> Duration {
        let mut engine = self.engine(n, mode);
        let script = self.update_script(n);
        let t = Instant::now();
        engine.execute(&script).expect("figure-6 update executes");
        t.elapsed()
    }
}

/// One measured point of a Figure 6 panel.
#[derive(Debug, Clone)]
pub struct Figure6Point {
    /// Base-table size (tuples).
    pub base_size: usize,
    /// Latency with the original putback program.
    pub original: Duration,
    /// Latency with the incrementalized program.
    pub incremental: Duration,
}

/// Sweep one panel over the given base sizes.
pub fn sweep(view: Figure6View, sizes: &[usize]) -> Vec<Figure6Point> {
    sizes
        .iter()
        .map(|&n| Figure6Point {
            base_size: n,
            original: view.measure(n, StrategyMode::Original),
            incremental: view.measure(n, StrategyMode::Incremental),
        })
        .collect()
}

/// Render one measured run as a JSON object (an element of the
/// document's `"runs"` array). Latencies are rounded to microseconds.
pub fn run_value(label: &str, results: &[(Figure6View, Vec<Figure6Point>)]) -> Json {
    let round3 = |x: f64| (x * 1000.0).round() / 1000.0;
    let views: Vec<Json> = results
        .iter()
        .map(|(view, points)| {
            let points: Vec<Json> = points
                .iter()
                .map(|p| {
                    let orig = p.original.as_secs_f64() * 1e3;
                    let inc = p.incremental.as_secs_f64() * 1e3;
                    Json::Obj(vec![
                        ("base_size".to_owned(), Json::Int(p.base_size as i64)),
                        ("original_ms".to_owned(), Json::Float(round3(orig))),
                        ("incremental_ms".to_owned(), Json::Float(round3(inc))),
                        (
                            "speedup".to_owned(),
                            Json::Float((orig / inc.max(1e-9) * 10.0).round() / 10.0),
                        ),
                    ])
                })
                .collect();
            Json::Obj(vec![
                ("view".to_owned(), Json::str(view.name())),
                ("points".to_owned(), Json::Arr(points)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("label".to_owned(), Json::str(label)),
        ("views".to_owned(), Json::Arr(views)),
    ])
}

/// Render measured panels as a complete single-run JSON document for the
/// `BENCH_figure6.json` perf trajectory.
pub fn to_json(label: &str, results: &[(Figure6View, Vec<Figure6Point>)]) -> String {
    Json::Obj(vec![
        ("benchmark".to_owned(), Json::str("figure6")),
        ("unit".to_owned(), Json::str("ms")),
        (
            "runs".to_owned(),
            Json::Arr(vec![run_value(label, results)]),
        ),
    ])
    .to_pretty()
}

/// Merge a run into an existing `BENCH_figure6.json` document: an
/// existing run with the **same label is replaced** (re-running a sweep
/// updates its entry instead of duplicating it); runs with other labels
/// — including the hand-transcribed pre-PR baseline, which is not
/// regenerable — are preserved, as are unknown document fields like
/// `"note"`. Returns `None` when the document does not identify itself
/// as a figure6 trajectory (the caller then refuses to clobber it).
pub fn upsert_run(
    existing: &str,
    label: &str,
    results: &[(Figure6View, Vec<Figure6Point>)],
) -> Option<String> {
    let mut doc = Json::parse(existing).ok()?;
    if doc.get("benchmark").and_then(Json::as_str) != Some("figure6") {
        return None;
    }
    let runs = doc.get_mut("runs")?.as_arr_mut()?;
    runs.retain(|run| run.get("label").and_then(Json::as_str) != Some(label));
    runs.push(run_value(label, results));
    Some(doc.to_pretty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use birds_store::Value;

    #[test]
    fn all_views_execute_in_both_modes() {
        for view in Figure6View::all() {
            for mode in [StrategyMode::Original, StrategyMode::Incremental] {
                let mut engine = view.engine(200, mode);
                let before = engine.relation(view.name()).unwrap().len();
                engine
                    .execute(&view.update_script(200))
                    .unwrap_or_else(|e| panic!("{} {mode:?}: {e}", view.name()));
                let after = engine.relation(view.name()).unwrap().len();
                assert!(
                    before != after || before > 0,
                    "{}: update had no observable effect",
                    view.name()
                );
            }
        }
    }

    #[test]
    fn original_and_incremental_agree_on_final_state() {
        for view in Figure6View::all() {
            let mut orig = view.engine(300, StrategyMode::Original);
            let mut inc = view.engine(300, StrategyMode::Incremental);
            orig.execute(&view.update_script(300)).unwrap();
            inc.execute(&view.update_script(300)).unwrap();
            assert!(
                orig.database().same_contents(inc.database()),
                "{}: strategies diverge",
                view.name()
            );
        }
    }

    #[test]
    fn luxuryitems_insert_reaches_base_table() {
        let view = Figure6View::Luxuryitems;
        let mut engine = view.engine(100, StrategyMode::Incremental);
        engine.execute(&view.update_script(100)).unwrap();
        let items = engine.relation("items").unwrap();
        assert!(items
            .iter()
            .any(|t| t[0] == Value::int(107) && t[1] == Value::int(4999)));
    }

    #[test]
    fn sweep_produces_all_points() {
        let points = sweep(Figure6View::VwBrands, &[50, 100]);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].base_size, 50);
    }

    #[test]
    fn from_name_roundtrip() {
        for v in Figure6View::all() {
            assert_eq!(Figure6View::from_name(v.name()), Some(v));
        }
        assert_eq!(Figure6View::from_name("nope"), None);
    }

    #[test]
    fn json_emission_is_well_formed() {
        let points = sweep(Figure6View::Luxuryitems, &[50]);
        let json = to_json("test \"run\"", &[(Figure6View::Luxuryitems, points)]);
        let doc = Json::parse(&json).expect("emitted document parses");
        assert_eq!(doc.get("benchmark").and_then(Json::as_str), Some("figure6"));
        let run = &doc.get("runs").unwrap().as_arr().unwrap()[0];
        assert_eq!(
            run.get("label").and_then(Json::as_str),
            Some("test \"run\""),
            "labels survive escaping"
        );
        let view = &run.get("views").unwrap().as_arr().unwrap()[0];
        assert_eq!(view.get("view").and_then(Json::as_str), Some("luxuryitems"));
        let point = &view.get("points").unwrap().as_arr().unwrap()[0];
        assert_eq!(point.get("base_size").and_then(Json::as_i64), Some(50));
        assert!(point.get("original_ms").and_then(Json::as_f64).is_some());
    }

    #[test]
    fn upsert_preserves_other_runs_and_fields() {
        let points = sweep(Figure6View::Luxuryitems, &[50]);
        // An existing document with a foreign field and a baseline run.
        let existing = r#"{
          "benchmark": "figure6",
          "unit": "ms",
          "note": "hand-transcribed baseline",
          "runs": [{"label": "baseline", "views": []}]
        }"#;
        let merged = upsert_run(existing, "second", &[(Figure6View::Luxuryitems, points)])
            .expect("figure6 documents are recognized");
        let doc = Json::parse(&merged).unwrap();
        assert_eq!(
            doc.get("note").and_then(Json::as_str),
            Some("hand-transcribed baseline"),
            "unknown fields survive"
        );
        let labels: Vec<&str> = doc
            .get("runs")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|r| r.get("label").and_then(Json::as_str).unwrap())
            .collect();
        assert_eq!(labels, vec!["baseline", "second"]);
    }

    #[test]
    fn upsert_replaces_run_with_same_label() {
        let points = sweep(Figure6View::Luxuryitems, &[50]);
        let results = [(Figure6View::Luxuryitems, points)];
        let doc = to_json("run-a", &results);
        let doc = upsert_run(&doc, "run-b", &results).unwrap();
        // Re-running with an existing label must replace, not duplicate.
        let doc = upsert_run(&doc, "run-a", &results).unwrap();
        let parsed = Json::parse(&doc).unwrap();
        let labels: Vec<&str> = parsed
            .get("runs")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|r| r.get("label").and_then(Json::as_str).unwrap())
            .collect();
        assert_eq!(labels, vec!["run-b", "run-a"], "replaced and re-appended");
        assert_eq!(doc.matches("run-a").count(), 1, "no duplicate entry");
    }

    #[test]
    fn upsert_refuses_foreign_documents() {
        assert!(upsert_run("not json", "x", &[]).is_none());
        assert!(upsert_run("{\"benchmark\": \"other\"}", "x", &[]).is_none());
        assert!(upsert_run("{\"benchmark\": \"figure6\"}", "x", &[]).is_none());
    }
}
