//! The Figure 6 experiment: view-update latency versus base-table size,
//! original strategy versus incrementalized strategy.
//!
//! The paper selects four typical views from the corpus — `luxuryitems`
//! (selection), `officeinfo` (projection), `outstanding_task` (semi-join)
//! and `vw_brands` (union) — randomly generates base-table data, and
//! measures the running time of one view-update transaction as the base
//! size grows. The expected shape: the original strategy's latency grows
//! linearly with the base size (the putback program re-reads the whole
//! source and view), while the incrementalized strategy stays flat.

use crate::corpus;
use crate::datagen;
use birds_core::UpdateStrategy;
use birds_datalog::{parse_program, Program};
use birds_engine::{Engine, StrategyMode};
use birds_store::Database;
use std::time::{Duration, Instant};

/// One of the four views measured in Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Figure6View {
    /// Figure 6(a): selection.
    Luxuryitems,
    /// Figure 6(b): projection.
    Officeinfo,
    /// Figure 6(c): semi-join.
    OutstandingTask,
    /// Figure 6(d): union.
    VwBrands,
}

impl Figure6View {
    /// All four panels in paper order.
    pub fn all() -> [Figure6View; 4] {
        [
            Figure6View::Luxuryitems,
            Figure6View::Officeinfo,
            Figure6View::OutstandingTask,
            Figure6View::VwBrands,
        ]
    }

    /// Corpus view name.
    pub fn name(&self) -> &'static str {
        match self {
            Figure6View::Luxuryitems => "luxuryitems",
            Figure6View::Officeinfo => "officeinfo",
            Figure6View::OutstandingTask => "outstanding_task",
            Figure6View::VwBrands => "vw_brands",
        }
    }

    /// Parse a panel selector (`luxuryitems`, `officeinfo`, …).
    pub fn from_name(name: &str) -> Option<Figure6View> {
        Figure6View::all().into_iter().find(|v| v.name() == name)
    }

    /// The view's update strategy from the corpus.
    pub fn strategy(&self) -> UpdateStrategy {
        corpus::entry(self.name())
            .expect("figure-6 views are in the corpus")
            .strategy()
            .expect("figure-6 views are expressible")
    }

    /// The view definition (expected get) from the corpus.
    pub fn get(&self) -> Program {
        parse_program(
            corpus::entry(self.name())
                .expect("figure-6 views are in the corpus")
                .expected_get,
        )
        .expect("corpus gets parse")
    }

    /// Generate the base tables at size `n`.
    pub fn database(&self, n: usize) -> Database {
        match self {
            Figure6View::Luxuryitems => datagen::items_database(n),
            Figure6View::Officeinfo => datagen::office_database(n),
            Figure6View::OutstandingTask => datagen::tasks_database(n),
            Figure6View::VwBrands => datagen::brands_database(n),
        }
    }

    /// The measured transaction: one INSERT plus one DELETE on the view,
    /// combined in a `BEGIN … END` block (the paper's workload is a
    /// single SQL statement modifying the view; we use a two-statement
    /// transaction so both delta directions are exercised).
    pub fn update_script(&self, n: usize) -> String {
        let fresh = n as i64 + 7;
        match self {
            Figure6View::Luxuryitems => format!(
                "BEGIN; INSERT INTO luxuryitems VALUES ({fresh}, 4999); \
                 DELETE FROM luxuryitems WHERE id = 1; END;"
            ),
            Figure6View::Officeinfo => format!(
                "BEGIN; INSERT INTO officeinfo VALUES ({fresh}, 'annex', '+81-99'); \
                 DELETE FROM officeinfo WHERE oid = 1; END;"
            ),
            Figure6View::OutstandingTask => format!(
                "BEGIN; INSERT INTO outstanding_task VALUES \
                 (1, 'hotfix{fresh}', '2020-07-01', 'ownerX'); \
                 DELETE FROM outstanding_task WHERE tid = 2; END;"
            ),
            Figure6View::VwBrands => format!(
                "BEGIN; INSERT INTO vw_brands VALUES ({fresh}, 'newbrand'); \
                 DELETE FROM vw_brands WHERE bid = 1; END;"
            ),
        }
    }

    /// Build an engine with the view registered (skipping re-validation:
    /// Table 1 already established validity; Figure 6 measures runtime).
    pub fn engine(&self, n: usize, mode: StrategyMode) -> Engine {
        let mut engine = Engine::new(self.database(n));
        engine
            .register_view_unchecked(self.strategy(), self.get(), mode)
            .expect("figure-6 view registers");
        engine
    }

    /// Time one update transaction at base size `n` under `mode`.
    pub fn measure(&self, n: usize, mode: StrategyMode) -> Duration {
        let mut engine = self.engine(n, mode);
        let script = self.update_script(n);
        let t = Instant::now();
        engine.execute(&script).expect("figure-6 update executes");
        t.elapsed()
    }
}

/// One measured point of a Figure 6 panel.
#[derive(Debug, Clone)]
pub struct Figure6Point {
    /// Base-table size (tuples).
    pub base_size: usize,
    /// Latency with the original putback program.
    pub original: Duration,
    /// Latency with the incrementalized program.
    pub incremental: Duration,
}

/// Sweep one panel over the given base sizes.
pub fn sweep(view: Figure6View, sizes: &[usize]) -> Vec<Figure6Point> {
    sizes
        .iter()
        .map(|&n| Figure6Point {
            base_size: n,
            original: view.measure(n, StrategyMode::Original),
            incremental: view.measure(n, StrategyMode::Incremental),
        })
        .collect()
}

/// Render one measured run as a JSON object (indented as an element of
/// the document's `"runs"` array).
pub fn run_json(label: &str, results: &[(Figure6View, Vec<Figure6Point>)]) -> String {
    let mut out = String::from("    {\n");
    out.push_str(&format!("      \"label\": \"{}\",\n", escape(label)));
    out.push_str("      \"views\": [\n");
    for (vi, (view, points)) in results.iter().enumerate() {
        out.push_str("        {\n");
        out.push_str(&format!("          \"view\": \"{}\",\n", view.name()));
        out.push_str("          \"points\": [\n");
        for (pi, p) in points.iter().enumerate() {
            let orig = p.original.as_secs_f64() * 1e3;
            let inc = p.incremental.as_secs_f64() * 1e3;
            out.push_str(&format!(
                "            {{\"base_size\": {}, \"original_ms\": {:.3}, \
                 \"incremental_ms\": {:.3}, \"speedup\": {:.1}}}{}\n",
                p.base_size,
                orig,
                inc,
                orig / inc.max(1e-9),
                if pi + 1 < points.len() { "," } else { "" }
            ));
        }
        out.push_str("          ]\n");
        out.push_str(&format!(
            "        }}{}\n",
            if vi + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("      ]\n    }");
    out
}

/// Render measured panels as a complete single-run JSON document for the
/// `BENCH_figure6.json` perf trajectory. Hand-rolled writer: the offline
/// `serde` stub has no serializer, and the schema is four fields deep.
pub fn to_json(label: &str, results: &[(Figure6View, Vec<Figure6Point>)]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"figure6\",\n");
    out.push_str("  \"unit\": \"ms\",\n");
    out.push_str("  \"runs\": [\n");
    out.push_str(&run_json(label, results));
    out.push_str("\n  ]\n}\n");
    out
}

/// Append a run to an existing `BENCH_figure6.json` document, preserving
/// every earlier run (the committed file carries the hand-transcribed
/// pre-PR baseline, which is not regenerable). Tolerates reformatting:
/// any document that identifies itself as a figure6 benchmark and ends
/// with `] }` (modulo whitespace) is accepted. Returns `None` otherwise —
/// the caller should then refuse to clobber the file.
pub fn append_run(
    existing: &str,
    label: &str,
    results: &[(Figure6View, Vec<Figure6Point>)],
) -> Option<String> {
    if !existing.contains("\"benchmark\"") || !existing.contains("figure6") {
        return None;
    }
    // Peel the closing `}` of the document and the `]` of the runs array,
    // whatever whitespace/line endings surround them.
    let prefix = existing.trim_end().strip_suffix('}')?;
    let prefix = prefix.trim_end().strip_suffix(']')?;
    let body = prefix.trim_end();
    // Empty runs array (`"runs": [`) needs no separating comma.
    let sep = if body.ends_with('[') { "" } else { "," };
    Some(format!(
        "{body}{sep}\n{}\n  ]\n}}\n",
        run_json(label, results)
    ))
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use birds_store::Value;

    #[test]
    fn all_views_execute_in_both_modes() {
        for view in Figure6View::all() {
            for mode in [StrategyMode::Original, StrategyMode::Incremental] {
                let mut engine = view.engine(200, mode);
                let before = engine.relation(view.name()).unwrap().len();
                engine
                    .execute(&view.update_script(200))
                    .unwrap_or_else(|e| panic!("{} {mode:?}: {e}", view.name()));
                let after = engine.relation(view.name()).unwrap().len();
                assert!(
                    before != after || before > 0,
                    "{}: update had no observable effect",
                    view.name()
                );
            }
        }
    }

    #[test]
    fn original_and_incremental_agree_on_final_state() {
        for view in Figure6View::all() {
            let mut orig = view.engine(300, StrategyMode::Original);
            let mut inc = view.engine(300, StrategyMode::Incremental);
            orig.execute(&view.update_script(300)).unwrap();
            inc.execute(&view.update_script(300)).unwrap();
            assert!(
                orig.database().same_contents(inc.database()),
                "{}: strategies diverge",
                view.name()
            );
        }
    }

    #[test]
    fn luxuryitems_insert_reaches_base_table() {
        let view = Figure6View::Luxuryitems;
        let mut engine = view.engine(100, StrategyMode::Incremental);
        engine.execute(&view.update_script(100)).unwrap();
        let items = engine.relation("items").unwrap();
        assert!(items
            .iter()
            .any(|t| t[0] == Value::int(107) && t[1] == Value::int(4999)));
    }

    #[test]
    fn sweep_produces_all_points() {
        let points = sweep(Figure6View::VwBrands, &[50, 100]);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].base_size, 50);
    }

    #[test]
    fn from_name_roundtrip() {
        for v in Figure6View::all() {
            assert_eq!(Figure6View::from_name(v.name()), Some(v));
        }
        assert_eq!(Figure6View::from_name("nope"), None);
    }

    #[test]
    fn json_emission_is_well_formed() {
        let points = sweep(Figure6View::Luxuryitems, &[50]);
        let json = to_json("test \"run\"", &[(Figure6View::Luxuryitems, points)]);
        assert!(json.contains("\"benchmark\": \"figure6\""));
        assert!(json.contains("\"view\": \"luxuryitems\""));
        assert!(json.contains("\"base_size\": 50"));
        assert!(json.contains("test \\\"run\\\""), "labels are escaped");
        // Balanced braces/brackets (cheap well-formedness check).
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn append_preserves_existing_runs() {
        let points = sweep(Figure6View::Luxuryitems, &[50]);
        let doc = to_json("first", &[(Figure6View::Luxuryitems, points.clone())]);
        let merged = append_run(&doc, "second", &[(Figure6View::Luxuryitems, points)])
            .expect("writer output is recognized");
        assert!(merged.contains("\"label\": \"first\""));
        assert!(merged.contains("\"label\": \"second\""));
        let opens = merged.matches(['{', '[']).count();
        let closes = merged.matches(['}', ']']).count();
        assert_eq!(opens, closes);
        // Unrecognized content is refused, not clobbered.
        assert!(append_run("not json", "x", &[]).is_none());
    }
}
