//! The service-layer throughput experiment: batched versus per-statement
//! update application, and write throughput under concurrent clients.
//!
//! The paper's Figure 6 measures the latency of *one* view-update
//! transaction. A service facing heavy write traffic cares about a
//! different number: statements per second when updates arrive in bulk.
//! Per-statement application pays one strategy evaluation (plus one
//! exclusive-lock acquisition) per statement; a session batch coalesces
//! the statements into one net view delta and pays the evaluation once.
//! The gap between those two is what this module measures, on the
//! `luxuryitems` corpus strategy (selection, with a domain constraint)
//! in incremental mode.
//!
//! Scenarios:
//!
//! * **batch-vs-statement sweep** — one client, k statements (fresh-id
//!   inserts and deletes of earlier inserts, 4:1): wall time to apply
//!   them one autocommit transaction at a time versus as one batch.
//!   The CI-facing claim (`BENCH_throughput.json`, acceptance ≥3× at
//!   10k) comes from this sweep.
//! * **thread scaling** — n clients each committing fixed-size batches
//!   concurrently: aggregate statements/second as n grows. With one
//!   engine-wide write lock this measures lock-handoff overhead, the
//!   baseline the ROADMAP's sharded-locks item wants to beat.

use crate::figure6::Figure6View;
use birds_engine::StrategyMode;
use birds_service::{ExecOutcome, Service};
use std::time::{Duration, Instant};

/// The corpus view the throughput experiment runs on.
pub const VIEW: Figure6View = Figure6View::Luxuryitems;

/// One client's statement stream: `count` statements targeting ids in a
/// window private to `client`. Four fresh-id inserts (price 4999 — in
/// the view) then one delete of the id inserted four statements earlier,
/// repeating; every statement survives coalescing *except* the deletes,
/// which cancel a pending insert — so the batch path also exercises
/// net-delta cancellation, not just bulk insertion.
pub fn statement_stream(base_size: usize, client: usize, count: usize) -> Vec<String> {
    let window = base_size as i64 + 10 + (client as i64) * (count as i64 + 10);
    let mut scripts = Vec::with_capacity(count);
    let mut next_id = window;
    for i in 0..count {
        if i % 5 == 4 {
            // Delete the id inserted 4 statements ago (still pending in
            // a batch; already applied in autocommit).
            scripts.push(format!(
                "DELETE FROM luxuryitems WHERE id = {};",
                next_id - 4
            ));
        } else {
            scripts.push(format!("INSERT INTO luxuryitems VALUES ({next_id}, 4999);"));
            next_id += 1;
        }
    }
    scripts
}

/// One point of the batch-vs-statement sweep.
#[derive(Debug, Clone)]
pub struct BatchPoint {
    /// Statements in the batch.
    pub statements: usize,
    /// Wall time applying them one autocommit transaction each.
    pub per_statement: Duration,
    /// Wall time applying them as one session batch (buffer + commit).
    pub batched: Duration,
}

impl BatchPoint {
    /// How many times faster the batched path is.
    pub fn speedup(&self) -> f64 {
        self.per_statement.as_secs_f64() / self.batched.as_secs_f64().max(1e-12)
    }
}

/// Measure the batch-vs-statement sweep at `base_size` for each batch
/// size. Every measurement runs on a fresh service so earlier batches
/// don't shift the base-table sizes.
pub fn batch_sweep(base_size: usize, batch_sizes: &[usize]) -> Vec<BatchPoint> {
    batch_sizes
        .iter()
        .map(|&count| {
            let scripts = statement_stream(base_size, 0, count);

            let service = Service::new(VIEW.engine(base_size, StrategyMode::Incremental));
            let mut session = service.session();
            let t = Instant::now();
            for script in &scripts {
                let outcome = session.execute(script).expect("autocommit applies");
                debug_assert!(matches!(outcome, ExecOutcome::Applied(_)));
            }
            let per_statement = t.elapsed();

            let service = Service::new(VIEW.engine(base_size, StrategyMode::Incremental));
            let mut session = service.session();
            let t = Instant::now();
            session.begin().expect("fresh session");
            for script in &scripts {
                session.execute(script).expect("buffering cannot fail");
            }
            session.commit().expect("batch applies");
            let batched = t.elapsed();

            BatchPoint {
                statements: count,
                per_statement,
                batched,
            }
        })
        .collect()
}

/// One point of the thread-scaling sweep.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Concurrent client threads.
    pub threads: usize,
    /// Total statements applied across all threads.
    pub total_statements: usize,
    /// Wall time from first statement to last commit.
    pub elapsed: Duration,
}

impl ScalePoint {
    /// Aggregate applied statements per second.
    pub fn statements_per_sec(&self) -> f64 {
        self.total_statements as f64 / self.elapsed.as_secs_f64().max(1e-12)
    }
}

/// Measure aggregate throughput with `threads` concurrent clients, each
/// committing `batches_per_thread` batches of `batch` statements.
pub fn thread_scaling(
    base_size: usize,
    threads_list: &[usize],
    batches_per_thread: usize,
    batch: usize,
) -> Vec<ScalePoint> {
    threads_list
        .iter()
        .map(|&threads| {
            let service = Service::new(VIEW.engine(base_size, StrategyMode::Incremental));
            let t = Instant::now();
            let handles: Vec<_> = (0..threads)
                .map(|client| {
                    let service = service.clone();
                    std::thread::spawn(move || {
                        let mut session = service.session();
                        for b in 0..batches_per_thread {
                            // A window per (client, batch) pair keeps ids
                            // disjoint across everything.
                            let stream_client = client * batches_per_thread + b;
                            let scripts = statement_stream(base_size, stream_client, batch);
                            session.begin().expect("no open batch");
                            for script in &scripts {
                                session.execute(script).expect("buffering cannot fail");
                            }
                            session.commit().expect("batch applies");
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("client thread");
            }
            ScalePoint {
                threads,
                total_statements: threads * batches_per_thread * batch,
                elapsed: t.elapsed(),
            }
        })
        .collect()
}

/// Render the measurements as the `BENCH_throughput.json` document.
pub fn to_json(
    label: &str,
    base_size: usize,
    batch_points: &[BatchPoint],
    scale_points: &[ScalePoint],
) -> birds_service::Json {
    use birds_service::Json;
    let round = |ms: f64| (ms * 1000.0).round() / 1000.0;
    let batch_json: Vec<Json> = batch_points
        .iter()
        .map(|p| {
            Json::Obj(vec![
                ("statements".to_owned(), Json::Int(p.statements as i64)),
                (
                    "per_statement_ms".to_owned(),
                    Json::Float(round(p.per_statement.as_secs_f64() * 1e3)),
                ),
                (
                    "batched_ms".to_owned(),
                    Json::Float(round(p.batched.as_secs_f64() * 1e3)),
                ),
                (
                    "speedup".to_owned(),
                    Json::Float((p.speedup() * 10.0).round() / 10.0),
                ),
            ])
        })
        .collect();
    let scale_json: Vec<Json> = scale_points
        .iter()
        .map(|p| {
            Json::Obj(vec![
                ("threads".to_owned(), Json::Int(p.threads as i64)),
                (
                    "total_statements".to_owned(),
                    Json::Int(p.total_statements as i64),
                ),
                (
                    "elapsed_ms".to_owned(),
                    Json::Float(round(p.elapsed.as_secs_f64() * 1e3)),
                ),
                (
                    "statements_per_sec".to_owned(),
                    Json::Float(p.statements_per_sec().round()),
                ),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("benchmark".to_owned(), Json::str("throughput")),
        ("view".to_owned(), Json::str(VIEW.name())),
        ("mode".to_owned(), Json::str("incremental")),
        ("base_size".to_owned(), Json::Int(base_size as i64)),
        ("label".to_owned(), Json::str(label)),
        (
            "note".to_owned(),
            Json::str(
                "Service-layer write throughput on the luxuryitems corpus strategy. \
                 batch_vs_statement: wall time for k statements applied as k autocommit \
                 transactions vs one coalesced session batch (one incremental pass). \
                 thread_scaling: aggregate statements/sec with n concurrent clients \
                 committing 1000-statement batches against one engine-wide RwLock.",
            ),
        ),
        ("batch_vs_statement".to_owned(), Json::Arr(batch_json)),
        ("thread_scaling".to_owned(), Json::Arr(scale_json)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statement_streams_are_disjoint_across_clients() {
        let a = statement_stream(100, 0, 50);
        let b = statement_stream(100, 1, 50);
        let ids = |scripts: &[String]| -> Vec<String> {
            scripts
                .iter()
                .filter_map(|s| {
                    s.strip_prefix("INSERT INTO luxuryitems VALUES (")
                        .map(|rest| rest.split(',').next().unwrap().to_owned())
                })
                .collect()
        };
        let (ia, ib) = (ids(&a), ids(&b));
        assert!(ia.iter().all(|i| !ib.contains(i)));
    }

    #[test]
    fn batched_and_per_statement_agree_on_final_state() {
        let scripts = statement_stream(200, 0, 60);

        let per = Service::new(VIEW.engine(200, StrategyMode::Incremental));
        let mut session = per.session();
        for s in &scripts {
            session.execute(s).unwrap();
        }
        drop(session);

        let bat = Service::new(VIEW.engine(200, StrategyMode::Incremental));
        let mut session = bat.session();
        session.begin().unwrap();
        for s in &scripts {
            session.execute(s).unwrap();
        }
        let outcome = session.commit().unwrap();
        assert!(outcome.stats.view_delta_size > 0);
        drop(session);

        let per = per.into_engine().ok().unwrap();
        let bat = bat.into_engine().ok().unwrap();
        assert!(
            per.database().same_contents(bat.database()),
            "batched application must equal per-statement application"
        );
    }

    #[test]
    fn sweep_smoke() {
        let points = batch_sweep(300, &[40]);
        assert_eq!(points.len(), 1);
        assert!(points[0].per_statement > Duration::ZERO);
        assert!(points[0].batched > Duration::ZERO);
    }

    #[test]
    fn scaling_smoke() {
        let points = thread_scaling(300, &[2], 2, 20);
        assert_eq!(points[0].total_statements, 80);
        assert!(points[0].statements_per_sec() > 0.0);
    }

    #[test]
    fn json_document_shape() {
        let batch = batch_sweep(300, &[30]);
        let scale = thread_scaling(300, &[1], 1, 20);
        let doc = to_json("test", 300, &batch, &scale);
        let rendered = doc.to_pretty();
        let parsed = birds_service::Json::parse(&rendered).unwrap();
        assert_eq!(
            parsed
                .get("benchmark")
                .and_then(birds_service::Json::as_str),
            Some("throughput")
        );
        assert_eq!(
            parsed
                .get("batch_vs_statement")
                .and_then(birds_service::Json::as_arr)
                .map(<[birds_service::Json]>::len),
            Some(1)
        );
    }
}
