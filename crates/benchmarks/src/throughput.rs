//! The service-layer throughput experiment: batched versus per-statement
//! update application, and write throughput under concurrent clients.
//!
//! The paper's Figure 6 measures the latency of *one* view-update
//! transaction. A service facing heavy write traffic cares about a
//! different number: statements per second when updates arrive in bulk.
//! Per-statement application pays one strategy evaluation (plus one
//! exclusive-lock acquisition) per statement; a session batch coalesces
//! the statements into one net view delta and pays the evaluation once.
//! The gap between those two is what this module measures, on the
//! `luxuryitems` corpus strategy (selection, with a domain constraint)
//! in incremental mode.
//!
//! Scenarios:
//!
//! * **batch-vs-statement sweep** — one client, k statements (fresh-id
//!   inserts and deletes of earlier inserts, 4:1): wall time to apply
//!   them one autocommit transaction at a time versus as one batch.
//!   The CI-facing claim (`BENCH_throughput.json`, acceptance ≥3× at
//!   10k) comes from this sweep.
//! * **thread scaling** — n clients each committing fixed-size batches
//!   concurrently *on one shared view*: aggregate statements/second as n
//!   grows. All clients hit the same footprint shard, so their commits
//!   serialize — the flat curve this sweep records is the contended
//!   baseline the disjoint sweep is measured against.
//! * **disjoint thread scaling** — n autocommit clients × n disjoint
//!   views (one luxuryitems-style selection per client, each over its
//!   own base table). Every client owns a footprint shard, so commits
//!   never contend; with a fixed group-commit epoch window, the epoch
//!   waits of concurrent clients overlap while only the evaluations
//!   serialize on the CPU — aggregate throughput scales with offered
//!   concurrency (and with cores, on multicore hardware). This is the
//!   sweep the CI `bench_gate` thread-scaling check replays.
//! * **group-commit coalescing** — n autocommit clients on *one* shared
//!   view: the shard's epoch leader coalesces every transaction queued
//!   in the window into one net delta per view, so per-statement
//!   evaluation cost is amortized across clients — batch-level
//!   throughput for clients that never call `begin`/`commit`.

use crate::figure6::Figure6View;
use birds_core::UpdateStrategy;
use birds_datalog::parse_program;
use birds_engine::{Engine, StrategyMode};
use birds_service::{DurabilityConfig, ExecOutcome, Service, ServiceConfig};
use birds_store::{Database, DatabaseSchema, Schema, SortKind};
use birds_wal::FsyncPolicy;
use std::time::{Duration, Instant};

/// The corpus view the throughput experiment runs on.
pub const VIEW: Figure6View = Figure6View::Luxuryitems;

/// One client's statement stream: `count` statements targeting ids in a
/// window private to `client`. Four fresh-id inserts (price 4999 — in
/// the view) then one delete of the id inserted four statements earlier,
/// repeating; every statement survives coalescing *except* the deletes,
/// which cancel a pending insert — so the batch path also exercises
/// net-delta cancellation, not just bulk insertion.
pub fn statement_stream(base_size: usize, client: usize, count: usize) -> Vec<String> {
    statement_stream_for("luxuryitems", base_size, client, count)
}

/// [`statement_stream`] against an arbitrary luxuryitems-shaped view.
pub fn statement_stream_for(
    view: &str,
    base_size: usize,
    client: usize,
    count: usize,
) -> Vec<String> {
    let window = base_size as i64 + 10 + (client as i64) * (count as i64 + 10);
    let mut scripts = Vec::with_capacity(count);
    let mut next_id = window;
    for i in 0..count {
        if i % 5 == 4 {
            // Delete the id inserted 4 statements ago (still pending in
            // a batch; already applied in autocommit).
            scripts.push(format!("DELETE FROM {view} WHERE id = {};", next_id - 4));
        } else {
            scripts.push(format!("INSERT INTO {view} VALUES ({next_id}, 4999);"));
            next_id += 1;
        }
    }
    scripts
}

/// Build an engine with `views` *disjoint* luxuryitems-style selections:
/// view `lux{i}` (price > 1000, with the domain constraint) over its own
/// base table `items{i}`. Footprints are pairwise disjoint, so the
/// service shards them into `views` independent components (plus the
/// usual per-component singletons — here there are none).
pub fn disjoint_engine(base_size: usize, views: usize) -> Engine {
    let mut db = Database::new();
    for i in 0..views {
        let items = crate::datagen::items_database(base_size)
            .into_relations()
            .next()
            .expect("items_database has one relation")
            .renamed(format!("items{i}"));
        db.add_relation(items).expect("fresh database");
    }
    let mut engine = Engine::new(db);
    for i in 0..views {
        let strategy = UpdateStrategy::parse(
            DatabaseSchema::new().with(Schema::new(
                format!("items{i}"),
                vec![("id", SortKind::Int), ("price", SortKind::Int)],
            )),
            Schema::new(
                format!("lux{i}"),
                vec![("id", SortKind::Int), ("price", SortKind::Int)],
            ),
            &format!(
                "
                false :- lux{i}(I, P), not P > 1000.
                +items{i}(I, P) :- lux{i}(I, P), not items{i}(I, P).
                expensive{i}(I, P) :- items{i}(I, P), P > 1000.
                -items{i}(I, P) :- expensive{i}(I, P), not lux{i}(I, P).
                "
            ),
            None,
        )
        .expect("disjoint strategy parses");
        let get = parse_program(&format!("lux{i}(I, P) :- items{i}(I, P), P > 1000."))
            .expect("disjoint get parses");
        engine
            .register_view_unchecked(strategy, get, StrategyMode::Incremental)
            .expect("disjoint view registers");
    }
    engine
}

/// One point of the batch-vs-statement sweep.
#[derive(Debug, Clone)]
pub struct BatchPoint {
    /// Statements in the batch.
    pub statements: usize,
    /// Wall time applying them one autocommit transaction each.
    pub per_statement: Duration,
    /// Wall time applying them as one session batch (buffer + commit).
    pub batched: Duration,
}

impl BatchPoint {
    /// How many times faster the batched path is.
    pub fn speedup(&self) -> f64 {
        self.per_statement.as_secs_f64() / self.batched.as_secs_f64().max(1e-12)
    }
}

/// Measure the batch-vs-statement sweep at `base_size` for each batch
/// size. Every measurement runs on a fresh service so earlier batches
/// don't shift the base-table sizes.
pub fn batch_sweep(base_size: usize, batch_sizes: &[usize]) -> Vec<BatchPoint> {
    batch_sizes
        .iter()
        .map(|&count| {
            let scripts = statement_stream(base_size, 0, count);

            let service = Service::new(VIEW.engine(base_size, StrategyMode::Incremental));
            let mut session = service.session();
            let t = Instant::now();
            for script in &scripts {
                let outcome = session.execute(script).expect("autocommit applies");
                debug_assert!(matches!(outcome, ExecOutcome::Applied(_)));
            }
            let per_statement = t.elapsed();

            let service = Service::new(VIEW.engine(base_size, StrategyMode::Incremental));
            let mut session = service.session();
            let t = Instant::now();
            session.begin().expect("fresh session");
            for script in &scripts {
                session.execute(script).expect("buffering cannot fail");
            }
            session.commit().expect("batch applies");
            let batched = t.elapsed();

            BatchPoint {
                statements: count,
                per_statement,
                batched,
            }
        })
        .collect()
}

/// One point of the thread-scaling sweep.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Concurrent client threads.
    pub threads: usize,
    /// Total statements applied across all threads.
    pub total_statements: usize,
    /// Wall time from first statement to last commit.
    pub elapsed: Duration,
}

impl ScalePoint {
    /// Aggregate applied statements per second.
    pub fn statements_per_sec(&self) -> f64 {
        self.total_statements as f64 / self.elapsed.as_secs_f64().max(1e-12)
    }
}

/// Measure aggregate throughput with `threads` concurrent clients, each
/// committing `batches_per_thread` batches of `batch` statements.
pub fn thread_scaling(
    base_size: usize,
    threads_list: &[usize],
    batches_per_thread: usize,
    batch: usize,
) -> Vec<ScalePoint> {
    threads_list
        .iter()
        .map(|&threads| {
            let service = Service::new(VIEW.engine(base_size, StrategyMode::Incremental));
            let t = Instant::now();
            let handles: Vec<_> = (0..threads)
                .map(|client| {
                    let service = service.clone();
                    std::thread::spawn(move || {
                        let mut session = service.session();
                        for b in 0..batches_per_thread {
                            // A window per (client, batch) pair keeps ids
                            // disjoint across everything.
                            let stream_client = client * batches_per_thread + b;
                            let scripts = statement_stream(base_size, stream_client, batch);
                            session.begin().expect("no open batch");
                            for script in &scripts {
                                session.execute(script).expect("buffering cannot fail");
                            }
                            session.commit().expect("batch applies");
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("client thread");
            }
            ScalePoint {
                threads,
                total_statements: threads * batches_per_thread * batch,
                elapsed: t.elapsed(),
            }
        })
        .collect()
}

/// Measure aggregate autocommit throughput with `n` clients on `n`
/// *disjoint* views (client `i` owns view `lux{i}` and its footprint
/// shard), for each `n` in `clients_list`. Each client issues
/// `per_client` single-statement autocommit transactions through the
/// group committer with the given epoch `window`. Commits never contend
/// (disjoint footprints); the epoch waits of concurrent clients overlap,
/// so aggregate statements/sec scales with the client count — and with
/// cores, where the evaluations themselves parallelize.
pub fn disjoint_scaling(
    base_size: usize,
    clients_list: &[usize],
    per_client: usize,
    window: Duration,
) -> Vec<ScalePoint> {
    clients_list
        .iter()
        .map(|&clients| {
            let service = Service::with_config(
                disjoint_engine(base_size, clients),
                ServiceConfig {
                    epoch_window: window,
                },
            );
            assert_eq!(
                service.shard_count(),
                clients,
                "disjoint views must shard 1:1"
            );
            run_autocommit_clients(&service, clients, |client| {
                statement_stream_for(&format!("lux{client}"), base_size, 0, per_client)
            })
        })
        .collect()
}

/// Measure aggregate autocommit throughput with `n` clients all hitting
/// *one* shared view, for each `n` in `clients_list`: every transaction
/// funnels through the same shard's group committer, whose epoch leader
/// coalesces whatever queued during the `window` into one net delta —
/// per-statement evaluation cost amortized across clients.
pub fn group_commit_scaling(
    base_size: usize,
    clients_list: &[usize],
    per_client: usize,
    window: Duration,
) -> Vec<ScalePoint> {
    clients_list
        .iter()
        .map(|&clients| {
            let service = Service::with_config(
                VIEW.engine(base_size, StrategyMode::Incremental),
                ServiceConfig {
                    epoch_window: window,
                },
            );
            run_autocommit_clients(&service, clients, |client| {
                statement_stream(base_size, client, per_client)
            })
        })
        .collect()
}

/// One point of the durability-overhead sweep: the same workload under
/// one persistence mode.
#[derive(Debug, Clone)]
pub struct DurabilityPoint {
    /// `"in-memory"`, `"wal-epoch"`, `"wal-always"` or `"wal-off"`.
    pub mode: &'static str,
    /// Statements applied.
    pub total_statements: usize,
    /// Wall time, first statement to last commit.
    pub elapsed: Duration,
}

impl DurabilityPoint {
    /// Applied statements per second.
    pub fn statements_per_sec(&self) -> f64 {
        self.total_statements as f64 / self.elapsed.as_secs_f64().max(1e-12)
    }
}

/// The persistence modes the durability sweep compares.
const DURABILITY_MODES: [(&str, Option<FsyncPolicy>); 4] = [
    ("in-memory", None),
    ("wal-epoch", Some(FsyncPolicy::Epoch)),
    ("wal-always", Some(FsyncPolicy::Always)),
    ("wal-off", Some(FsyncPolicy::Off)),
];

fn durability_service(base_size: usize, fsync: Option<FsyncPolicy>, tag: &str) -> Service {
    let engine = VIEW.engine(base_size, StrategyMode::Incremental);
    match fsync {
        None => Service::new(engine),
        Some(fsync) => {
            // Keyed by pid AND thread so parallel tests in one process
            // (cargo test) never share a live WAL directory.
            let dir = std::env::temp_dir().join(format!(
                "birds-throughput-dur-{tag}-{fsync}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let mut durability = DurabilityConfig::new(&dir);
            durability.fsync = fsync;
            durability.checkpoint_every = None; // measure pure WAL cost
            Service::open(engine, ServiceConfig::default(), durability)
                .expect("fresh data dir opens")
        }
    }
}

fn cleanup_durability_service(service: Service) {
    if let Some(dir) = service.data_dir().map(std::path::Path::to_path_buf) {
        drop(service);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// WAL overhead on the **batched** write path (the production shape:
/// one record append + one fsync per multi-statement commit, so the
/// durability cost is amortized across the batch): `commits` session
/// batches of `batch` statements each, one client, measured under every
/// persistence mode. This is the sweep the CI `bench_gate` durability
/// check replays — WAL-on must stay within the gate factor of the
/// in-memory baseline.
pub fn durability_batched_sweep(
    base_size: usize,
    commits: usize,
    batch: usize,
) -> Vec<DurabilityPoint> {
    DURABILITY_MODES
        .iter()
        .map(|(mode, fsync)| {
            let service = durability_service(base_size, *fsync, "batched");
            let mut session = service.session();
            let t = Instant::now();
            for commit in 0..commits {
                let scripts = statement_stream(base_size, commit, batch);
                session.begin().expect("no open batch");
                for script in &scripts {
                    session.execute(script).expect("buffering cannot fail");
                }
                session.commit().expect("batch applies");
            }
            let elapsed = t.elapsed();
            drop(session);
            cleanup_durability_service(service);
            DurabilityPoint {
                mode,
                total_statements: commits * batch,
                elapsed,
            }
        })
        .collect()
}

/// WAL overhead on the **single-statement autocommit** path — the worst
/// case for durability (every statement is its own epoch, so `always`
/// and `epoch` pay one fsync per statement). Reported in the JSON for
/// honesty but not gated: the absolute ratio is hardware-bound (fsync
/// latency vs an in-memory evaluation), not code-regression-bound.
pub fn durability_autocommit_sweep(base_size: usize, count: usize) -> Vec<DurabilityPoint> {
    DURABILITY_MODES
        .iter()
        .map(|(mode, fsync)| {
            let service = durability_service(base_size, *fsync, "autocommit");
            let mut session = service.session();
            let scripts = statement_stream(base_size, 0, count);
            let t = Instant::now();
            for script in &scripts {
                session.execute(script).expect("autocommit applies");
            }
            let elapsed = t.elapsed();
            drop(session);
            cleanup_durability_service(service);
            DurabilityPoint {
                mode,
                total_statements: count,
                elapsed,
            }
        })
        .collect()
}

/// One point of the reader/writer-interference sweep: query latency
/// percentiles under `writers` concurrent batch-committing writers,
/// measured for both read paths — the lock-free MVCC
/// [`Service::query`] and the pre-MVCC locked baseline
/// (`debug_query_locked`, which takes the shard's read lock and copies
/// the live relation).
#[derive(Debug, Clone)]
pub struct InterferencePoint {
    /// Concurrent writer threads churning the queried view's shard.
    pub writers: usize,
    /// Latency samples per read path.
    pub reads: usize,
    /// MVCC query latency, median.
    pub mvcc_p50: Duration,
    /// MVCC query latency, 99th percentile.
    pub mvcc_p99: Duration,
    /// Locked-read latency, median.
    pub locked_p50: Duration,
    /// Locked-read latency, 99th percentile.
    pub locked_p99: Duration,
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Measure query latency on the throughput view at each writer count in
/// `writer_counts` (0 = idle baseline): `writers` threads commit
/// *batches* against the view back to back — every commit lands on the
/// *same* footprint shard the reader queries and holds its write lock
/// for the whole multi-statement delta application, the worst case for
/// reader/writer interference — while the main thread samples `reads`
/// latencies of the MVCC [`Service::query`] and of the locked baseline
/// read. Batches alternate between inserting a block of fresh ids and
/// deleting it again, so the view's size stays bounded: loaded reads
/// sort (nearly) the same data as idle ones, and the ratio measures
/// interference, not growth. The CI `bench_gate
/// --read-interference-gate` replays this sweep and asserts the MVCC
/// p50 under writer load stays within the gate factor of the idle MVCC
/// p50: "readers never wait for writers", as a number.
pub fn read_interference_sweep(
    base_size: usize,
    writer_counts: &[usize],
    reads: usize,
) -> Vec<InterferencePoint> {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    let view = VIEW.name();
    writer_counts
        .iter()
        .map(|&writers| {
            let service = Service::new(VIEW.engine(base_size, StrategyMode::Incremental));
            let stop = Arc::new(AtomicBool::new(false));
            let handles: Vec<_> = (0..writers)
                .map(|w| {
                    let service = service.clone();
                    let stop = Arc::clone(&stop);
                    std::thread::spawn(move || {
                        // Batch size tuned so each commit holds the
                        // shard's write lock for a macroscopic stretch —
                        // lock-taking reads queue behind it, lock-free
                        // reads must not. (A net-zero batch would
                        // coalesce to an empty delta and skip the lock
                        // work entirely, hence insert/delete alternate
                        // between commits.)
                        const BATCH: i64 = 64;
                        let mut session = service.session();
                        // Fresh id blocks per writer, far above the
                        // seeded range and each other's windows.
                        let mut id = base_size as i64 + 1_000_000 * (w as i64 + 1);
                        while !stop.load(Ordering::Relaxed) {
                            for delete in [false, true] {
                                session.begin().expect("batch opens");
                                for k in 0..BATCH {
                                    let stmt = if delete {
                                        format!("DELETE FROM luxuryitems WHERE id = {};", id + k)
                                    } else {
                                        format!(
                                            "INSERT INTO luxuryitems VALUES ({}, 4999);",
                                            id + k
                                        )
                                    };
                                    session.execute(&stmt).expect("statement buffers");
                                }
                                session.commit().expect("batch commits");
                            }
                            id += BATCH;
                        }
                    })
                })
                .collect();
            let sample = |read: &dyn Fn() -> usize| -> Vec<Duration> {
                // Warm-up reads are discarded (first-touch effects).
                for _ in 0..reads / 10 {
                    read();
                }
                let mut samples = Vec::with_capacity(reads);
                for _ in 0..reads {
                    let t = Instant::now();
                    let n = read();
                    samples.push(t.elapsed());
                    assert!(n >= 1, "query returned the seeded view");
                }
                samples.sort();
                samples
            };
            let mvcc = sample(&|| service.query(view).expect("view is queryable").len());
            let locked = sample(&|| {
                service
                    .debug_query_locked(view)
                    .expect("view is queryable")
                    .len()
            });
            stop.store(true, Ordering::Relaxed);
            for h in handles {
                h.join().expect("writer thread");
            }
            InterferencePoint {
                writers,
                reads,
                mvcc_p50: percentile(&mvcc, 0.50),
                mvcc_p99: percentile(&mvcc, 0.99),
                locked_p50: percentile(&locked, 0.50),
                locked_p99: percentile(&locked, 0.99),
            }
        })
        .collect()
}

/// Drive `clients` concurrent autocommit sessions, each over its own
/// statement stream, and time first statement to last commit.
fn run_autocommit_clients(
    service: &Service,
    clients: usize,
    stream_for: impl Fn(usize) -> Vec<String>,
) -> ScalePoint {
    let streams: Vec<Vec<String>> = (0..clients).map(&stream_for).collect();
    let total_statements: usize = streams.iter().map(Vec::len).sum();
    let t = Instant::now();
    let handles: Vec<_> = streams
        .into_iter()
        .map(|scripts| {
            let service = service.clone();
            std::thread::spawn(move || {
                let mut session = service.session();
                for script in &scripts {
                    let outcome = session.execute(script).expect("autocommit applies");
                    debug_assert!(matches!(outcome, ExecOutcome::Applied(_)));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    ScalePoint {
        threads: clients,
        total_statements,
        elapsed: t.elapsed(),
    }
}

/// Render the measurements as the `BENCH_throughput.json` document.
#[allow(clippy::too_many_arguments)]
pub fn to_json(
    label: &str,
    base_size: usize,
    batch_points: &[BatchPoint],
    scale_points: &[ScalePoint],
    disjoint_points: &[ScalePoint],
    coalescing_points: &[ScalePoint],
    durability_batched: &[DurabilityPoint],
    durability_autocommit: &[DurabilityPoint],
    read_interference: &[InterferencePoint],
    connection_points: &[crate::connection::ConnectionPoint],
    epoch_window: Duration,
) -> birds_service::Json {
    use birds_service::Json;
    let round = |ms: f64| (ms * 1000.0).round() / 1000.0;
    let batch_json: Vec<Json> = batch_points
        .iter()
        .map(|p| {
            Json::Obj(vec![
                ("statements".to_owned(), Json::Int(p.statements as i64)),
                (
                    "per_statement_ms".to_owned(),
                    Json::Float(round(p.per_statement.as_secs_f64() * 1e3)),
                ),
                (
                    "batched_ms".to_owned(),
                    Json::Float(round(p.batched.as_secs_f64() * 1e3)),
                ),
                (
                    "speedup".to_owned(),
                    Json::Float((p.speedup() * 10.0).round() / 10.0),
                ),
            ])
        })
        .collect();
    let scale_json = |points: &[ScalePoint]| -> Vec<Json> {
        let base_rate = points
            .first()
            .map(ScalePoint::statements_per_sec)
            .unwrap_or(0.0);
        points
            .iter()
            .map(|p| {
                Json::Obj(vec![
                    ("threads".to_owned(), Json::Int(p.threads as i64)),
                    (
                        "total_statements".to_owned(),
                        Json::Int(p.total_statements as i64),
                    ),
                    (
                        "elapsed_ms".to_owned(),
                        Json::Float(round(p.elapsed.as_secs_f64() * 1e3)),
                    ),
                    (
                        "statements_per_sec".to_owned(),
                        Json::Float(p.statements_per_sec().round()),
                    ),
                    (
                        "scaling_vs_1_client".to_owned(),
                        Json::Float(
                            ((p.statements_per_sec() / base_rate.max(1e-9)) * 100.0).round()
                                / 100.0,
                        ),
                    ),
                ])
            })
            .collect()
    };
    Json::Obj(vec![
        ("benchmark".to_owned(), Json::str("throughput")),
        ("view".to_owned(), Json::str(VIEW.name())),
        ("mode".to_owned(), Json::str("incremental")),
        ("base_size".to_owned(), Json::Int(base_size as i64)),
        (
            "epoch_window_us".to_owned(),
            Json::Int(epoch_window.as_micros() as i64),
        ),
        ("label".to_owned(), Json::str(label)),
        (
            "note".to_owned(),
            Json::str(
                "Service-layer write throughput on the luxuryitems corpus strategy. \
                 batch_vs_statement: wall time for k statements applied as k autocommit \
                 transactions vs one coalesced session batch (one incremental pass). \
                 thread_scaling: n clients committing 1000-statement batches on ONE \
                 shared view — all in one footprint shard, so commits serialize (the \
                 contended baseline; flat by design). disjoint_thread_scaling: n \
                 autocommit clients x n disjoint views, one footprint shard per \
                 client, group-commit epoch window as configured — epoch waits \
                 overlap across shards and evaluations parallelize across cores, so \
                 aggregate stmts/sec scales with client count (scaling_vs_1_client is \
                 the gated ratio). group_commit_scaling: n autocommit clients on ONE \
                 shared view — the epoch leader coalesces concurrent transactions \
                 into one net delta, amortizing evaluation across clients.",
            ),
        ),
        ("batch_vs_statement".to_owned(), Json::Arr(batch_json)),
        (
            "thread_scaling".to_owned(),
            Json::Arr(scale_json(scale_points)),
        ),
        (
            "disjoint_thread_scaling".to_owned(),
            Json::Arr(scale_json(disjoint_points)),
        ),
        (
            "group_commit_scaling".to_owned(),
            Json::Arr(scale_json(coalescing_points)),
        ),
        (
            "durability".to_owned(),
            Json::Obj(vec![
                (
                    "note".to_owned(),
                    Json::str(
                        "WAL overhead vs the in-memory baseline on the same single-client \
                         workload. batched: session batches (one record append + one fsync \
                         per commit — the amortized production path; overhead_vs_in_memory \
                         on wal-epoch is the CI-gated ratio). autocommit: one statement \
                         per transaction, the worst case (one fsync per statement under \
                         always/epoch; reported, not gated).",
                    ),
                ),
                (
                    "batched".to_owned(),
                    Json::Arr(durability_json(durability_batched)),
                ),
                (
                    "autocommit".to_owned(),
                    Json::Arr(durability_json(durability_autocommit)),
                ),
            ]),
        ),
        (
            "read_interference".to_owned(),
            Json::Obj(vec![
                (
                    "note".to_owned(),
                    Json::str(
                        "Query latency on the throughput view under n concurrent writers \
                         hitting the SAME shard (0 = idle baseline). mvcc: the lock-free \
                         snapshot read path (Service::query) — its p50 under load within \
                         the gate factor of its idle p50 is the CI-gated claim (bench_gate \
                         --read-interference-gate): readers never wait for writers. p99 is \
                         recorded but not gated: on an oversubscribed runner tail latency \
                         measures CPU scheduling, not lock behaviour. locked: the pre-MVCC \
                         baseline (shard read lock + live copy), kept for comparison — it \
                         serializes behind commit critical sections and its median degrades \
                         as writers are added.",
                    ),
                ),
                (
                    "points".to_owned(),
                    Json::Arr(interference_json(read_interference)),
                ),
            ]),
        ),
        (
            "connection_scaling".to_owned(),
            crate::connection::connection_json(connection_points),
        ),
    ])
}

/// Render the reader/writer-interference sweep (latencies in µs).
fn interference_json(points: &[InterferencePoint]) -> Vec<birds_service::Json> {
    use birds_service::Json;
    let us = |d: Duration| (d.as_secs_f64() * 1e8).round() / 100.0;
    points
        .iter()
        .map(|p| {
            Json::Obj(vec![
                ("writers".to_owned(), Json::Int(p.writers as i64)),
                ("reads".to_owned(), Json::Int(p.reads as i64)),
                ("mvcc_p50_us".to_owned(), Json::Float(us(p.mvcc_p50))),
                ("mvcc_p99_us".to_owned(), Json::Float(us(p.mvcc_p99))),
                ("locked_p50_us".to_owned(), Json::Float(us(p.locked_p50))),
                ("locked_p99_us".to_owned(), Json::Float(us(p.locked_p99))),
            ])
        })
        .collect()
}

/// Render one durability sweep, tagging each WAL mode with its overhead
/// relative to the sweep's in-memory point.
fn durability_json(points: &[DurabilityPoint]) -> Vec<birds_service::Json> {
    use birds_service::Json;
    let round = |x: f64| (x * 100.0).round() / 100.0;
    let baseline = points
        .iter()
        .find(|p| p.mode == "in-memory")
        .map(DurabilityPoint::statements_per_sec)
        .unwrap_or(0.0);
    points
        .iter()
        .map(|p| {
            let rate = p.statements_per_sec();
            Json::Obj(vec![
                ("mode".to_owned(), Json::str(p.mode)),
                (
                    "total_statements".to_owned(),
                    Json::Int(p.total_statements as i64),
                ),
                (
                    "elapsed_ms".to_owned(),
                    Json::Float(round(p.elapsed.as_secs_f64() * 1e3)),
                ),
                ("statements_per_sec".to_owned(), Json::Float(rate.round())),
                (
                    "overhead_vs_in_memory".to_owned(),
                    Json::Float(round(baseline / rate.max(1e-9))),
                ),
            ])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statement_streams_are_disjoint_across_clients() {
        let a = statement_stream(100, 0, 50);
        let b = statement_stream(100, 1, 50);
        let ids = |scripts: &[String]| -> Vec<String> {
            scripts
                .iter()
                .filter_map(|s| {
                    s.strip_prefix("INSERT INTO luxuryitems VALUES (")
                        .map(|rest| rest.split(',').next().unwrap().to_owned())
                })
                .collect()
        };
        let (ia, ib) = (ids(&a), ids(&b));
        assert!(ia.iter().all(|i| !ib.contains(i)));
    }

    #[test]
    fn batched_and_per_statement_agree_on_final_state() {
        let scripts = statement_stream(200, 0, 60);

        let per = Service::new(VIEW.engine(200, StrategyMode::Incremental));
        let mut session = per.session();
        for s in &scripts {
            session.execute(s).unwrap();
        }
        drop(session);

        let bat = Service::new(VIEW.engine(200, StrategyMode::Incremental));
        let mut session = bat.session();
        session.begin().unwrap();
        for s in &scripts {
            session.execute(s).unwrap();
        }
        let outcome = session.commit().unwrap();
        assert!(outcome.stats.view_delta_size > 0);
        drop(session);

        let per = per.into_engine().ok().unwrap();
        let bat = bat.into_engine().ok().unwrap();
        assert!(
            per.database().same_contents(bat.database()),
            "batched application must equal per-statement application"
        );
    }

    #[test]
    fn sweep_smoke() {
        let points = batch_sweep(300, &[40]);
        assert_eq!(points.len(), 1);
        assert!(points[0].per_statement > Duration::ZERO);
        assert!(points[0].batched > Duration::ZERO);
    }

    #[test]
    fn scaling_smoke() {
        let points = thread_scaling(300, &[2], 2, 20);
        assert_eq!(points[0].total_statements, 80);
        assert!(points[0].statements_per_sec() > 0.0);
    }

    #[test]
    fn durability_sweeps_cover_every_mode() {
        let points = durability_batched_sweep(150, 2, 15);
        let modes: Vec<&str> = points.iter().map(|p| p.mode).collect();
        assert_eq!(
            modes,
            vec!["in-memory", "wal-epoch", "wal-always", "wal-off"]
        );
        assert!(points.iter().all(|p| p.total_statements == 30));
        assert!(points.iter().all(|p| p.statements_per_sec() > 0.0));
        let auto = durability_autocommit_sweep(150, 10);
        assert_eq!(auto.len(), 4);
        assert!(auto.iter().all(|p| p.total_statements == 10));
    }

    #[test]
    fn json_document_shape() {
        let batch = batch_sweep(300, &[30]);
        let scale = thread_scaling(300, &[1], 1, 20);
        let disjoint = disjoint_scaling(100, &[1, 2], 10, Duration::from_micros(50));
        let coalescing = group_commit_scaling(100, &[2], 10, Duration::from_micros(50));
        let dur_batched = durability_batched_sweep(100, 2, 10);
        let dur_auto = durability_autocommit_sweep(100, 8);
        let interference = read_interference_sweep(100, &[0, 1], 20);
        let connection = vec![crate::connection::ConnectionPoint {
            idle_conns: 1000,
            active_conns: 8,
            requests_per_conn: 100,
            p50: Duration::from_micros(150),
            p99: Duration::from_micros(800),
            workers: 2,
            server_threads: 4,
            vm_rss_kb: 15_000,
            vm_hwm_kb: 16_000,
        }];
        let doc = to_json(
            "test",
            300,
            &batch,
            &scale,
            &disjoint,
            &coalescing,
            &dur_batched,
            &dur_auto,
            &interference,
            &connection,
            Duration::from_micros(50),
        );
        let rendered = doc.to_pretty();
        let parsed = birds_service::Json::parse(&rendered).unwrap();
        assert_eq!(
            parsed
                .get("benchmark")
                .and_then(birds_service::Json::as_str),
            Some("throughput")
        );
        assert_eq!(
            parsed
                .get("batch_vs_statement")
                .and_then(birds_service::Json::as_arr)
                .map(<[birds_service::Json]>::len),
            Some(1)
        );
        assert_eq!(
            parsed
                .get("disjoint_thread_scaling")
                .and_then(birds_service::Json::as_arr)
                .map(<[birds_service::Json]>::len),
            Some(2)
        );
        assert_eq!(
            parsed
                .get("epoch_window_us")
                .and_then(birds_service::Json::as_i64),
            Some(50)
        );
        let point = &parsed
            .get("disjoint_thread_scaling")
            .and_then(birds_service::Json::as_arr)
            .unwrap()[0];
        assert_eq!(
            point
                .get("scaling_vs_1_client")
                .and_then(birds_service::Json::as_f64),
            Some(1.0)
        );
        let durability = parsed.get("durability").unwrap();
        let batched = durability
            .get("batched")
            .and_then(birds_service::Json::as_arr)
            .unwrap();
        assert_eq!(batched.len(), 4);
        assert_eq!(
            batched[0].get("mode").and_then(birds_service::Json::as_str),
            Some("in-memory")
        );
        assert_eq!(
            batched[0]
                .get("overhead_vs_in_memory")
                .and_then(birds_service::Json::as_f64),
            Some(1.0)
        );
        assert_eq!(
            durability
                .get("autocommit")
                .and_then(birds_service::Json::as_arr)
                .map(<[birds_service::Json]>::len),
            Some(4)
        );
        let interference_points = parsed
            .get("read_interference")
            .and_then(|s| s.get("points"))
            .and_then(birds_service::Json::as_arr)
            .unwrap();
        assert_eq!(interference_points.len(), 2);
        assert_eq!(
            interference_points[0]
                .get("writers")
                .and_then(birds_service::Json::as_i64),
            Some(0)
        );
        assert!(interference_points[1]
            .get("mvcc_p99_us")
            .and_then(birds_service::Json::as_f64)
            .is_some());
        let connection_points = parsed
            .get("connection_scaling")
            .and_then(|s| s.get("points"))
            .and_then(birds_service::Json::as_arr)
            .unwrap();
        assert_eq!(connection_points.len(), 1);
        assert_eq!(
            connection_points[0]
                .get("server_threads")
                .and_then(birds_service::Json::as_i64),
            Some(4)
        );
    }

    #[test]
    fn interference_sweep_measures_both_paths_at_each_writer_count() {
        let points = read_interference_sweep(100, &[0, 2], 30);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].writers, 0);
        assert_eq!(points[1].writers, 2);
        for p in &points {
            assert_eq!(p.reads, 30);
            assert!(p.mvcc_p50 <= p.mvcc_p99);
            assert!(p.locked_p50 <= p.locked_p99);
            assert!(p.mvcc_p99 > Duration::ZERO);
        }
    }

    #[test]
    fn disjoint_engine_shards_one_component_per_view() {
        let service = Service::new(disjoint_engine(50, 3));
        assert_eq!(service.shard_count(), 3);
        for i in 0..3 {
            let view = format!("lux{i}");
            assert!(service.query(&view).is_ok(), "{view} registered");
        }
    }

    #[test]
    fn disjoint_clients_apply_all_statements() {
        let points = disjoint_scaling(80, &[2], 25, Duration::ZERO);
        assert_eq!(points[0].total_statements, 50);
        assert!(points[0].statements_per_sec() > 0.0);
    }

    #[test]
    fn coalesced_autocommit_matches_serial_state() {
        // The same stream applied with and without group-commit
        // coalescing must land on the same database.
        let scripts: Vec<Vec<String>> = (0..3)
            .map(|client| statement_stream(120, client, 20))
            .collect();

        let coalesced = Service::with_config(
            VIEW.engine(120, StrategyMode::Incremental),
            ServiceConfig {
                epoch_window: Duration::from_micros(200),
            },
        );
        let handles: Vec<_> = scripts
            .iter()
            .cloned()
            .map(|stream| {
                let service = coalesced.clone();
                std::thread::spawn(move || {
                    let mut session = service.session();
                    for script in &stream {
                        session.execute(script).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(coalesced.commits(), 3 * 20, "every tx got its own seq");

        let serial = Service::new(VIEW.engine(120, StrategyMode::Incremental));
        let mut session = serial.session();
        for stream in &scripts {
            for script in stream {
                session.execute(script).unwrap();
            }
        }
        drop(session);

        let coalesced = coalesced.into_engine().ok().unwrap();
        let serial = serial.into_engine().ok().unwrap();
        assert!(
            coalesced.database().same_contents(serial.database()),
            "group-commit coalescing diverged from serial application"
        );
    }
}
