//! Shared emission helpers for the benchmark binaries.

use std::path::Path;

/// Write `contents` to `path` atomically: write a temp file in the same
/// directory, then rename over the target. A crash (or a concurrent
/// reader — CI tails these files while benches run) never observes a
/// half-written document; rename within one directory is atomic on every
/// platform CI uses.
pub fn write_atomic(path: &str, contents: &str) -> std::io::Result<()> {
    let target = Path::new(path);
    let dir = target.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = target
        .file_name()
        .ok_or_else(|| std::io::Error::other(format!("'{path}' has no file name")))?;
    let tmp_name = format!(
        ".{}.tmp.{}",
        file_name.to_string_lossy(),
        std::process::id()
    );
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => std::path::PathBuf::from(&tmp_name),
    };
    std::fs::write(&tmp, contents)?;
    match std::fs::rename(&tmp, target) {
        Ok(()) => Ok(()),
        Err(e) => {
            // Don't leave temp droppings behind on failure.
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_replaces() {
        let dir = std::env::temp_dir().join(format!("birds-emit-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.json");
        let path_str = path.to_str().unwrap();
        write_atomic(path_str, "first").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "first");
        write_atomic(path_str, "second").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second");
        // No temp droppings.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
