//! The range-guard selectivity sweep: what pushing a comparison guard
//! into an ordered-index scan buys, as a function of guard selectivity.
//!
//! The workload is a selection view `pricey(id, price) = σ_{price >= K}
//! stock` — the same putback shape as Figure 6's `luxuryitems`, but with
//! the threshold `K` chosen so the guard keeps 1%, 10% or 50% of the
//! base table. One view-update transaction is measured twice under the
//! **original** (non-incremental) strategy, whose putback program
//! re-reads the whole source through the guard:
//!
//! * `hash_only` — range pushdown disabled ([`birds_engine::Engine::
//!   set_range_pushdown`]): the guard compiles to a full `Scan` plus a
//!   residual `Compare` filter, the pre-ordered-index plan shape.
//! * `range_index` — pushdown enabled (the default): the guard compiles
//!   to a `RangeScan` over the ordered index, touching only the
//!   matching fraction of the table.
//!
//! Expected shape: the hash-only latency is flat in selectivity (the
//! scan always reads everything) while the range-index latency scales
//! with the matching fraction — large wins at 1%, converging toward
//! parity as the guard approaches "keep everything".
//!
//! Results are recorded as a `"range_guard"` section of
//! `BENCH_figure6.json` (the section survives `figure6` run upserts,
//! which preserve foreign top-level fields) and gated in CI via
//! `bench_gate --range-gate`.

use birds_core::UpdateStrategy;
use birds_datalog::{parse_program, Program};
use birds_engine::{Engine, StrategyMode};
use birds_service::Json;
use birds_store::{tuple, Database, DatabaseSchema, Relation, Schema, SortKind};
use std::time::{Duration, Instant};

/// Prices are uniform over `0..PRICE_DOMAIN`, so a guard
/// `price >= PRICE_DOMAIN - PRICE_DOMAIN * pct / 100` keeps `pct`% of
/// the table.
pub const PRICE_DOMAIN: i64 = 10_000;

/// Multiplicative stride coprime to [`PRICE_DOMAIN`], so `id *
/// PRICE_STEP % PRICE_DOMAIN` walks every price exactly once per
/// `PRICE_DOMAIN` ids — deterministic data with exact selectivity.
const PRICE_STEP: i64 = 7_919;

/// The price of row `id`.
fn price_of(id: i64) -> i64 {
    id * PRICE_STEP % PRICE_DOMAIN
}

/// The guard threshold keeping `pct`% of the table.
pub fn threshold(pct: u32) -> i64 {
    PRICE_DOMAIN - PRICE_DOMAIN * i64::from(pct) / 100
}

/// `stock(id, price)` at size `n`, prices uniform over the domain.
pub fn stock_database(n: usize) -> Database {
    let tuples = (0..n as i64).map(|i| tuple![i, price_of(i)]);
    let mut db = Database::new();
    db.add_relation(Relation::with_tuples("stock", 2, tuples).expect("arity 2"))
        .expect("fresh database");
    db
}

/// The selection view's putback strategy at guard threshold `k`.
fn strategy(k: i64) -> UpdateStrategy {
    UpdateStrategy::parse(
        DatabaseSchema::new().with(Schema::new(
            "stock",
            vec![("id", SortKind::Int), ("price", SortKind::Int)],
        )),
        Schema::new(
            "pricey",
            vec![("id", SortKind::Int), ("price", SortKind::Int)],
        ),
        &format!(
            "
            false :- pricey(I, P), not P >= {k}.
            +stock(I, P) :- pricey(I, P), not stock(I, P).
            rg_selected(I, P) :- stock(I, P), P >= {k}.
            -stock(I, P) :- rg_selected(I, P), not pricey(I, P).
            "
        ),
        None,
    )
    .expect("range-guard strategy parses")
}

/// The view definition at guard threshold `k`.
fn get(k: i64) -> Program {
    parse_program(&format!("pricey(I, P) :- stock(I, P), P >= {k}."))
        .expect("range-guard get parses")
}

/// An engine with the view registered under the original strategy, with
/// range pushdown set **before** registration so the warm-up compiles
/// (and pre-builds indexes for) exactly the plan shape being measured.
pub fn engine(n: usize, pct: u32, range_pushdown: bool) -> Engine {
    let k = threshold(pct);
    let mut engine = Engine::new(stock_database(n));
    engine.set_range_pushdown(range_pushdown);
    engine
        .register_view_unchecked(strategy(k), get(k), StrategyMode::Original)
        .expect("range-guard view registers");
    engine
}

/// The measured transaction: one INSERT of a fresh in-view row plus one
/// DELETE of an existing in-view row, so both delta directions are
/// exercised (mirroring the Figure 6 workload).
pub fn update_script(n: usize, pct: u32) -> String {
    let k = threshold(pct);
    let fresh = n as i64 + 7;
    let victim = (0..n as i64)
        .find(|&i| price_of(i) >= k)
        .expect("some row satisfies the guard");
    format!(
        "BEGIN; INSERT INTO pricey VALUES ({fresh}, {}); \
         DELETE FROM pricey WHERE id = {victim}; END;",
        PRICE_DOMAIN - 1
    )
}

/// Time one update transaction at size `n` and selectivity `pct`%.
pub fn measure(n: usize, pct: u32, range_pushdown: bool) -> Duration {
    let mut engine = engine(n, pct, range_pushdown);
    let script = update_script(n, pct);
    let t = Instant::now();
    engine
        .execute(&script)
        .expect("range-guard update executes");
    t.elapsed()
}

/// One measured selectivity point.
#[derive(Debug, Clone)]
pub struct RangeGuardPoint {
    /// Guard selectivity in percent (fraction of the table kept).
    pub selectivity_pct: u32,
    /// The guard constant `K` in `price >= K`.
    pub threshold: i64,
    /// Latency with pushdown disabled (full scan + residual filter).
    pub hash_only: Duration,
    /// Latency with pushdown enabled (ordered-index range scan).
    pub range_index: Duration,
}

impl RangeGuardPoint {
    /// `hash_only / range_index`.
    pub fn speedup(&self) -> f64 {
        self.hash_only.as_secs_f64() / self.range_index.as_secs_f64().max(1e-9)
    }
}

/// Sweep the given selectivities at base size `n`.
pub fn sweep(n: usize, pcts: &[u32]) -> Vec<RangeGuardPoint> {
    pcts.iter()
        .map(|&pct| RangeGuardPoint {
            selectivity_pct: pct,
            threshold: threshold(pct),
            hash_only: measure(n, pct, false),
            range_index: measure(n, pct, true),
        })
        .collect()
}

/// Render one measured run as a JSON object (an element of the
/// section's `"runs"` array).
pub fn run_value(label: &str, base_size: usize, points: &[RangeGuardPoint]) -> Json {
    let round3 = |x: f64| (x * 1000.0).round() / 1000.0;
    let points: Vec<Json> = points
        .iter()
        .map(|p| {
            Json::Obj(vec![
                (
                    "selectivity_pct".to_owned(),
                    Json::Int(i64::from(p.selectivity_pct)),
                ),
                ("threshold".to_owned(), Json::Int(p.threshold)),
                (
                    "hash_only_ms".to_owned(),
                    Json::Float(round3(p.hash_only.as_secs_f64() * 1e3)),
                ),
                (
                    "range_index_ms".to_owned(),
                    Json::Float(round3(p.range_index.as_secs_f64() * 1e3)),
                ),
                (
                    "speedup".to_owned(),
                    Json::Float((p.speedup() * 10.0).round() / 10.0),
                ),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("label".to_owned(), Json::str(label)),
        ("base_size".to_owned(), Json::Int(base_size as i64)),
        ("points".to_owned(), Json::Arr(points)),
    ])
}

/// Merge a run into the `"range_guard"` section of an existing
/// `BENCH_figure6.json` document, creating the section if absent. A run
/// with the same label is replaced; other runs and all unrelated
/// document fields are preserved. Returns `None` when the document does
/// not identify itself as a figure6 trajectory.
pub fn upsert_run(
    existing: &str,
    label: &str,
    base_size: usize,
    points: &[RangeGuardPoint],
) -> Option<String> {
    let mut doc = Json::parse(existing).ok()?;
    if doc.get("benchmark").and_then(Json::as_str) != Some("figure6") {
        return None;
    }
    if doc.get("range_guard").is_none() {
        let Json::Obj(fields) = &mut doc else {
            return None;
        };
        fields.push((
            "range_guard".to_owned(),
            Json::Obj(vec![
                ("unit".to_owned(), Json::str("ms")),
                ("price_domain".to_owned(), Json::Int(PRICE_DOMAIN)),
                ("runs".to_owned(), Json::Arr(vec![])),
            ]),
        ));
    }
    let runs = doc.get_mut("range_guard")?.get_mut("runs")?.as_arr_mut()?;
    runs.retain(|run| run.get("label").and_then(Json::as_str) != Some(label));
    runs.push(run_value(label, base_size, points));
    Some(doc.to_pretty())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_hit_the_advertised_selectivity() {
        // Exact by construction: the price permutation is a full cycle.
        for pct in [1u32, 10, 50] {
            let k = threshold(pct);
            let matching = (0..PRICE_DOMAIN).filter(|&i| price_of(i) >= k).count();
            assert_eq!(
                matching as i64,
                PRICE_DOMAIN * i64::from(pct) / 100,
                "selectivity {pct}%"
            );
        }
    }

    #[test]
    fn both_plan_shapes_agree_on_final_state() {
        for pct in [1u32, 50] {
            let mut pushed = engine(600, pct, true);
            let mut filtered = engine(600, pct, false);
            let script = update_script(600, pct);
            pushed.execute(&script).unwrap();
            filtered.execute(&script).unwrap();
            assert!(
                pushed.database().same_contents(filtered.database()),
                "selectivity {pct}%: plan shapes diverge"
            );
        }
    }

    #[test]
    fn update_script_touches_both_directions() {
        let mut engine = engine(400, 10, true);
        let before = engine.relation("stock").unwrap().len();
        engine.execute(&update_script(400, 10)).unwrap();
        let stock = engine.relation("stock").unwrap();
        assert_eq!(stock.len(), before, "one insert, one delete");
        assert!(stock.iter().any(|t| t[0] == birds_store::Value::int(407)));
    }

    #[test]
    fn sweep_and_upsert_roundtrip() {
        let points = sweep(300, &[10, 50]);
        assert_eq!(points.len(), 2);
        let base = r#"{"benchmark": "figure6", "unit": "ms", "runs": []}"#;
        let doc = upsert_run(base, "t1", 300, &points).expect("figure6 recognized");
        // Replacing the same label must not duplicate; a second label
        // must coexist.
        let doc = upsert_run(&doc, "t1", 300, &points).unwrap();
        let doc = upsert_run(&doc, "t2", 300, &points).unwrap();
        let parsed = Json::parse(&doc).unwrap();
        let section = parsed.get("range_guard").expect("section created");
        assert_eq!(section.get("unit").and_then(Json::as_str), Some("ms"));
        let labels: Vec<&str> = section
            .get("runs")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|r| r.get("label").and_then(Json::as_str).unwrap())
            .collect();
        assert_eq!(labels, vec!["t1", "t2"]);
        let point = &section.get("runs").unwrap().as_arr().unwrap()[0]
            .get("points")
            .unwrap()
            .as_arr()
            .unwrap()[0];
        assert_eq!(
            point.get("selectivity_pct").and_then(Json::as_i64),
            Some(10)
        );
        assert!(point.get("speedup").and_then(Json::as_f64).is_some());
        assert!(upsert_run("{\"benchmark\": \"other\"}", "x", 1, &[]).is_none());
    }

    #[test]
    fn upsert_preserves_figure6_runs_and_survives_figure6_upsert() {
        // The two writers share the document: each must leave the
        // other's section intact.
        let base = r#"{
          "benchmark": "figure6", "unit": "ms",
          "runs": [{"label": "baseline", "views": []}]
        }"#;
        let points = sweep(200, &[50]);
        let doc = upsert_run(base, "rg", 200, &points).unwrap();
        let parsed = Json::parse(&doc).unwrap();
        let labels: Vec<&str> = parsed
            .get("runs")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|r| r.get("label").and_then(Json::as_str).unwrap())
            .collect();
        assert_eq!(labels, vec!["baseline"], "figure6 runs untouched");
        // And the figure6 upserter keeps our section (foreign fields
        // survive by contract).
        let fig = crate::figure6::sweep(crate::figure6::Figure6View::VwBrands, &[50]);
        let merged = crate::figure6::upsert_run(
            &doc,
            "fig",
            &[(crate::figure6::Figure6View::VwBrands, fig)],
        )
        .unwrap();
        let parsed = Json::parse(&merged).unwrap();
        assert!(
            parsed.get("range_guard").is_some(),
            "range_guard section survives figure6 run upserts"
        );
    }
}
