//! The Table 1 benchmark corpus (§6.2.1).
//!
//! The paper collected 32 views with user-written update strategies from
//! the literature (textbooks, tutorials, papers, its own case study) and
//! from Q&A sites (DBA Stack Exchange, Stack Overflow). The exact SQL of
//! those strategies is not printed in the paper, so this module re-authors
//! each benchmark **row-faithfully**: the same view name, the same operator
//! mix (selection / projection / joins / union / difference / aggregation),
//! the same constraint classes (PK / FK / inclusion dependency / domain
//! constraint / join dependency), and approximately the same program size.
//!
//! What Table 1 measures — which strategies are LVGN-expressible, which
//! validate, how long validation takes, and how large the compiled SQL is —
//! is a function of that structure, which is reproduced faithfully.

use birds_core::UpdateStrategy;
use birds_store::{DatabaseSchema, Schema, SortKind};

mod literature;
mod qa;

/// Where a benchmark entry was collected from (Table 1's two groups).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceKind {
    /// Textbooks, tutorials, papers and the §3.3 case study.
    Literature,
    /// Database Administrators Stack Exchange / Stack Overflow.
    QaSite,
}

impl SourceKind {
    /// Group label as printed in Table 1.
    pub fn label(&self) -> &'static str {
        match self {
            SourceKind::Literature => "Literature",
            SourceKind::QaSite => "Q&A sites",
        }
    }
}

/// Declarative relation spec used by corpus entries.
#[derive(Debug, Clone, Copy)]
pub struct RelSpec {
    /// Relation name.
    pub name: &'static str,
    /// `(attribute, sort)` pairs.
    pub cols: &'static [(&'static str, SortKind)],
}

impl RelSpec {
    fn schema(&self) -> Schema {
        Schema::new(self.name, self.cols.to_vec())
    }
}

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// Row number in Table 1 (1–32).
    pub id: usize,
    /// View name as printed in the paper.
    pub name: &'static str,
    /// Collection group.
    pub source: SourceKind,
    /// Operator mix in the view definition (Table 1 legend: S, P, SJ, IJ,
    /// LJ, U, D, A).
    pub operators: &'static str,
    /// Constraint classes (PK, FK, ID, C, JD) — empty when none.
    pub constraint_classes: &'static str,
    /// `false` only for the aggregation view (#23), which nonrecursive
    /// Datalog cannot express.
    pub expressible: bool,
    /// Whether the paper marks the strategy as within LVGN-Datalog.
    pub lvgn_expected: bool,
    /// Source relation specs.
    pub sources: &'static [RelSpec],
    /// View relation spec.
    pub view: RelSpec,
    /// The putback program (our Datalog dialect).
    pub putdelta: &'static str,
    /// The expected view definition.
    pub expected_get: &'static str,
}

impl CorpusEntry {
    /// Source database schema.
    pub fn source_schema(&self) -> DatabaseSchema {
        let mut db = DatabaseSchema::new();
        for spec in self.sources {
            db = db.with(spec.schema());
        }
        db
    }

    /// View schema.
    pub fn view_schema(&self) -> Schema {
        self.view.schema()
    }

    /// Build the update strategy; `None` for the inexpressible entry.
    pub fn strategy(&self) -> Option<UpdateStrategy> {
        if !self.expressible {
            return None;
        }
        Some(
            UpdateStrategy::parse(
                self.source_schema(),
                self.view_schema(),
                self.putdelta,
                Some(self.expected_get),
            )
            .unwrap_or_else(|e| {
                panic!("corpus entry #{} ({}) must parse: {e}", self.id, self.name)
            }),
        )
    }
}

/// The full 32-entry corpus, in Table 1 order.
pub fn entries() -> Vec<CorpusEntry> {
    let mut all = literature::entries();
    all.extend(qa::entries());
    debug_assert_eq!(all.len(), 32);
    debug_assert!(all.iter().enumerate().all(|(i, e)| e.id == i + 1));
    all
}

/// Look up an entry by its Table 1 view name.
pub fn entry(name: &str) -> Option<CorpusEntry> {
    entries().into_iter().find(|e| e.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_32_rows_in_order() {
        let all = entries();
        assert_eq!(all.len(), 32);
        for (i, e) in all.iter().enumerate() {
            assert_eq!(e.id, i + 1, "entry {} out of order", e.name);
        }
    }

    #[test]
    fn exactly_one_inexpressible_entry() {
        let all = entries();
        let inexpressible: Vec<&str> = all
            .iter()
            .filter(|e| !e.expressible)
            .map(|e| e.name)
            .collect();
        assert_eq!(inexpressible, vec!["emp_view"]);
    }

    #[test]
    fn all_expressible_entries_parse() {
        for e in entries() {
            if e.expressible {
                let s = e.strategy().expect("expressible");
                assert!(s.program_size() > 0);
            }
        }
    }

    #[test]
    fn lvgn_classification_matches_table_1() {
        for e in entries() {
            let Some(s) = e.strategy() else { continue };
            assert_eq!(
                s.is_lvgn(),
                e.lvgn_expected,
                "#{} {}: LVGN mismatch; violations: {:?}",
                e.id,
                e.name,
                s.lvgn_violations()
            );
        }
    }

    #[test]
    fn aggregation_view_has_no_strategy() {
        let e = entry("emp_view").unwrap();
        assert!(e.strategy().is_none());
    }

    #[test]
    fn lookup_by_name() {
        assert!(entry("luxuryitems").is_some());
        assert!(entry("no_such_view").is_none());
    }

    #[test]
    fn figure6_views_are_all_in_the_corpus() {
        for name in ["luxuryitems", "officeinfo", "outstanding_task", "vw_brands"] {
            let e = entry(name).expect(name);
            assert!(e.expressible);
            assert!(e.lvgn_expected, "{name} must be LVGN for ∂put");
        }
    }
}
