fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "officeinfo".into());
    let e = birds_benchmarks::corpus::entry(&name).expect("known view");
    let s = e.strategy().expect("expressible");
    let dput = birds_core::incrementalize(&s).unwrap();
    println!("{dput}");
}
