//! Time ∂put evaluation standalone against a big base table.
use birds_benchmarks::figure6::Figure6View;
use birds_datalog::PredRef;
use birds_eval::{evaluate_program, EvalContext};
use birds_store::Relation;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "officeinfo".into());
    let n: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300_000);
    let view = Figure6View::from_name(&name).expect("panel");
    let strategy = view.strategy();
    let dput = birds_core::incrementalize(&strategy).unwrap();
    eprintln!("dput:\n{dput}");
    let mut db = view.database(n);
    // Materialize the view relation (old state) — same as engine does.
    let get = view.get();
    {
        let mut ctx = EvalContext::new(&mut db);
        let rel = birds_eval::evaluate_query(&get, &PredRef::plain(view.name()), &mut ctx).unwrap();
        let rel = Relation::with_tuples(
            view.name().to_string(),
            rel.arity(),
            rel.tuples().iter().cloned(),
        )
        .unwrap();
        drop(ctx);
        db.add_relation(rel).unwrap();
    }
    for round in 0..2 {
        let t = std::time::Instant::now();
        let mut ctx = EvalContext::new(&mut db);
        ctx.insert_overlay(Relation::new(
            PredRef::ins(view.name()).flat_name(),
            strategy.view.arity(),
        ));
        ctx.insert_overlay(Relation::new(
            PredRef::del(view.name()).flat_name(),
            strategy.view.arity(),
        ));
        let out = evaluate_program(&dput, &mut ctx).unwrap();
        eprintln!(
            "round {round}: eval in {:?}; outputs: {:?}",
            t.elapsed(),
            out.relations
                .iter()
                .map(|(p, r)| (p.to_string(), r.len()))
                .collect::<Vec<_>>()
        );
    }
}
