//! Engine phase probe for one Figure 6 panel.
use birds_benchmarks::figure6::Figure6View;
use birds_engine::StrategyMode;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "officeinfo".into());
    let n: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300_000);
    let view = Figure6View::from_name(&name).expect("known panel");
    let mut engine = view.engine(n, StrategyMode::Incremental);
    let script = view.update_script(n);
    let t = std::time::Instant::now();
    engine.execute(&script).unwrap();
    eprintln!("total: {:?}", t.elapsed());
}
