//! Per-pass timing probe for slow corpus validations.
fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "officeinfo".into());
    let e = birds_benchmarks::corpus::entry(&name).expect("known view");
    let s = e.strategy().expect("expressible");
    let t = std::time::Instant::now();
    let report = birds_core::validate(&s).unwrap();
    println!(
        "{name}: valid={} total={:?} wd={:?} getput={:?} putget={:?}",
        report.valid,
        t.elapsed(),
        report.timings.well_definedness,
        report.timings.getput,
        report.timings.putget
    );
}
