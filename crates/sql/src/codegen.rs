//! Non-recursive Datalog → SQL `SELECT` translation.
//!
//! Follows the standard translation the paper cites (its reference \[10\],
//! also \[29\]): each rule becomes a `SELECT DISTINCT` with one `FROM` entry per
//! positive atom, equality predicates for shared variables and constants,
//! `NOT EXISTS` subqueries for negated atoms, and comparison predicates
//! for builtins. A predicate with several rules becomes a `UNION`.
//! Intermediate IDB predicates become CTEs (`WITH` clauses) in dependency
//! order.

use birds_datalog::{stratify, Atom, DeltaKind, Literal, PredRef, Program, Rule, Term};
use birds_store::Value;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// SQL-safe identifier for a predicate: delta predicates become
/// `delta_ins_r` / `delta_del_r`, post-state predicates `new_r`.
pub fn sql_ident(p: &PredRef) -> String {
    match p.kind {
        DeltaKind::None => p.name.clone(),
        DeltaKind::Insert => format!("delta_ins_{}", p.name),
        DeltaKind::Delete => format!("delta_del_{}", p.name),
        DeltaKind::New => format!("new_{}", p.name),
    }
}

/// Render a constant as a SQL literal.
fn sql_value(v: &Value) -> String {
    v.to_string() // Value's Display already quotes strings SQL-style
}

/// Column name for position `i` when no schema is available.
fn col(i: usize) -> String {
    format!("c{i}")
}

/// Translate one rule into a `SELECT` statement (no trailing semicolon).
///
/// The head's terms decide the projection; every positive atom becomes an
/// aliased relation in `FROM`.
pub fn rule_to_select(rule: &Rule) -> String {
    let head = rule
        .head
        .atom()
        .expect("constraints are rendered via constraint_to_select");
    select_for_body(&head.terms, &rule.body)
}

/// Translate a constraint body (`⊥ :- body`) into an existence query:
/// `SELECT 1 ... LIMIT 1` — nonempty result means the constraint is
/// violated.
pub fn constraint_to_select(rule: &Rule) -> String {
    let mut sql = select_for_body(&[], &rule.body);
    // SELECT with empty projection: replace the head list with a bare 1.
    if let Some(rest) = sql.strip_prefix("SELECT DISTINCT  FROM") {
        sql = format!("SELECT 1 FROM{rest} LIMIT 1");
    }
    sql
}

/// Shared body translation: projection terms + body literals.
fn select_for_body(head_terms: &[Term], body: &[Literal]) -> String {
    // Assign aliases to positive atoms.
    let positives: Vec<&Atom> = body
        .iter()
        .filter_map(|l| match l {
            Literal::Atom {
                atom,
                negated: false,
            } => Some(atom),
            _ => None,
        })
        .collect();
    // First binding site of each variable: (alias index, column).
    let mut var_site: BTreeMap<&str, (usize, usize)> = BTreeMap::new();
    let mut conditions: Vec<String> = Vec::new();
    for (ai, atom) in positives.iter().enumerate() {
        for (ci, t) in atom.terms.iter().enumerate() {
            match t {
                Term::Var(v) if !t.is_anonymous() => {
                    if let Some((a0, c0)) = var_site.get(v.as_str()) {
                        conditions.push(format!("t{ai}.{} = t{a0}.{}", col(ci), col(*c0)));
                    } else {
                        var_site.insert(v, (ai, ci));
                    }
                }
                Term::Const(c) => {
                    conditions.push(format!("t{ai}.{} = {}", col(ci), sql_value(c)));
                }
                _ => {}
            }
        }
    }

    let term_sql = |t: &Term| -> String {
        match t {
            Term::Const(c) => sql_value(c),
            Term::Var(v) => match var_site.get(v.as_str()) {
                Some((a, c)) => format!("t{a}.{}", col(*c)),
                None => "NULL /* unbound */".to_string(),
            },
        }
    };

    // Negated atoms and builtins.
    for lit in body {
        match lit {
            Literal::Atom {
                atom,
                negated: true,
            } => {
                let mut sub = format!(
                    "NOT EXISTS (SELECT 1 FROM {} s WHERE ",
                    sql_ident(&atom.pred)
                );
                let mut parts = Vec::new();
                for (ci, t) in atom.terms.iter().enumerate() {
                    match t {
                        Term::Var(v) if !t.is_anonymous() => {
                            if let Some((a, c)) = var_site.get(v.as_str()) {
                                parts.push(format!("s.{} = t{a}.{}", col(ci), col(*c)));
                            }
                        }
                        Term::Const(c) => {
                            parts.push(format!("s.{} = {}", col(ci), sql_value(c)));
                        }
                        _ => {}
                    }
                }
                if parts.is_empty() {
                    parts.push("TRUE".into());
                }
                let _ = write!(sub, "{})", parts.join(" AND "));
                conditions.push(sub);
            }
            Literal::Builtin {
                op,
                left,
                right,
                negated,
            } => {
                let expr = format!("{} {} {}", term_sql(left), op.symbol(), term_sql(right));
                conditions.push(if *negated {
                    format!("NOT ({expr})")
                } else {
                    expr
                });
            }
            _ => {}
        }
    }

    let projection: Vec<String> = head_terms
        .iter()
        .enumerate()
        .map(|(i, t)| format!("{} AS {}", term_sql(t), col(i)))
        .collect();
    let from: Vec<String> = positives
        .iter()
        .enumerate()
        .map(|(ai, a)| format!("{} t{ai}", sql_ident(&a.pred)))
        .collect();
    let mut sql = format!(
        "SELECT DISTINCT {} FROM {}",
        projection.join(", "),
        from.join(", ")
    );
    if from.is_empty() {
        // Rules without positive atoms (grounded by equalities) select
        // from a one-row relation.
        sql = format!(
            "SELECT DISTINCT {} FROM (VALUES (1)) one(x)",
            projection.join(", ")
        );
    }
    if !conditions.is_empty() {
        let _ = write!(sql, " WHERE {}", conditions.join(" AND "));
    }
    sql
}

/// Translate a whole program into a SQL query for `goal`: CTEs for the
/// intermediate IDB predicates in dependency order, then the goal query.
pub fn program_to_sql(program: &Program, goal: &PredRef) -> String {
    let order = stratify(program).unwrap_or_default();
    let mut ctes: Vec<String> = Vec::new();
    for pred in order.iter().filter(|p| *p != goal) {
        let selects: Vec<String> = program.rules_for(pred).map(rule_to_select).collect();
        if selects.is_empty() {
            continue;
        }
        ctes.push(format!(
            "{} AS ({})",
            sql_ident(pred),
            selects.join(" UNION ")
        ));
    }
    let goal_selects: Vec<String> = program.rules_for(goal).map(rule_to_select).collect();
    let body = if goal_selects.is_empty() {
        "SELECT NULL WHERE FALSE".to_string()
    } else {
        goal_selects.join(" UNION ")
    };
    if ctes.is_empty() {
        body
    } else {
        format!("WITH {} {}", ctes.join(", "), body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use birds_datalog::{parse_program, parse_rule};

    #[test]
    fn sql_idents_for_deltas() {
        assert_eq!(sql_ident(&PredRef::ins("r")), "delta_ins_r");
        assert_eq!(sql_ident(&PredRef::del("r")), "delta_del_r");
        assert_eq!(sql_ident(&PredRef::new_rel("r")), "new_r");
        assert_eq!(sql_ident(&PredRef::plain("r")), "r");
    }

    #[test]
    fn simple_selection_rule() {
        let r = parse_rule("v(X, Y) :- r(X, Y), Y > 2.").unwrap();
        let sql = rule_to_select(&r);
        assert_eq!(
            sql,
            "SELECT DISTINCT t0.c0 AS c0, t0.c1 AS c1 FROM r t0 WHERE t0.c1 > 2"
        );
    }

    #[test]
    fn join_with_shared_variable() {
        let r = parse_rule("v(X, Z) :- r(X, Y), s(Y, Z).").unwrap();
        let sql = rule_to_select(&r);
        assert!(sql.contains("FROM r t0, s t1"), "{sql}");
        assert!(sql.contains("t1.c0 = t0.c1"), "{sql}");
    }

    #[test]
    fn negation_becomes_not_exists() {
        let r = parse_rule("-r1(X) :- r1(X), not v(X).").unwrap();
        let sql = rule_to_select(&r);
        assert!(
            sql.contains("NOT EXISTS (SELECT 1 FROM v s WHERE s.c0 = t0.c0)"),
            "{sql}"
        );
    }

    #[test]
    fn anonymous_variables_unconstrained() {
        let r = parse_rule("retired(E) :- residents(E, _, _), not ced(E, _).").unwrap();
        let sql = rule_to_select(&r);
        assert!(
            sql.contains("NOT EXISTS (SELECT 1 FROM ced s WHERE s.c0 = t0.c0)"),
            "{sql}"
        );
    }

    #[test]
    fn constants_in_atoms_and_heads() {
        let r = parse_rule("res(E, B, 'F') :- female(E, B).").unwrap();
        let sql = rule_to_select(&r);
        assert!(sql.contains("'F' AS c2"), "{sql}");
    }

    #[test]
    fn union_program_with_cte() {
        let p = parse_program(
            "
            m(X) :- r(X), X > 1.
            v(X) :- m(X).
            v(X) :- s(X).
            ",
        )
        .unwrap();
        let sql = program_to_sql(&p, &PredRef::plain("v"));
        assert!(sql.starts_with("WITH m AS ("), "{sql}");
        assert!(sql.contains("UNION"), "{sql}");
    }

    #[test]
    fn constraint_existence_query() {
        let r = parse_rule("false :- v(X, Y, Z), Z > 2.").unwrap();
        let sql = constraint_to_select(&r);
        assert!(sql.starts_with("SELECT 1 FROM"), "{sql}");
        assert!(sql.ends_with("LIMIT 1"), "{sql}");
    }

    #[test]
    fn negated_equality() {
        let r = parse_rule("o(G) :- g(G), not G = 'M'.").unwrap();
        let sql = rule_to_select(&r);
        assert!(sql.contains("NOT (t0.c0 = 'M')"), "{sql}");
    }
}
