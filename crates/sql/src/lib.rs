//! # birds-sql
//!
//! SQL compilation for the BIRDS reproduction (§6.1 of the paper).
//!
//! * [`codegen`] — non-recursive Datalog queries → PostgreSQL-dialect
//!   `SELECT` statements (CTE per intermediate predicate, `NOT EXISTS` for
//!   negation, plain predicates for builtins);
//! * [`compile`] — a full updatable-view script: `CREATE VIEW` from the
//!   (derived or expected) get definition plus the `INSTEAD OF` trigger
//!   program that derives view deltas, checks the constraints and applies
//!   the delta relations to the source — exactly the trigger skeleton the
//!   paper lists in §6.1. The script's byte length is the paper's
//!   "Compiled SQL (Byte)" metric in Table 1.
//! * [`dml`] — a minimal parser for the DML statements (`INSERT` /
//!   `DELETE` / `UPDATE` on the view) that drive the runtime's Algorithm 2.
//!
//! The generated SQL is *evidence* (it is what BIRDS would hand to
//! PostgreSQL); the in-process engine executes the same trigger steps
//! natively (`birds-engine`).

pub mod codegen;
pub mod compile;
pub mod dml;

pub use codegen::{program_to_sql, rule_to_select, sql_ident};
pub use compile::{compile_strategy, CompiledSql};
pub use dml::{parse_dml, parse_script, Condition, DmlStatement};
