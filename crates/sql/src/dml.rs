//! Minimal SQL DML parser for view update requests.
//!
//! The runtime accepts the statement forms the paper lists in Appendix D:
//!
//! ```sql
//! INSERT INTO v VALUES (1, 'a'), (2, 'b');
//! DELETE FROM v WHERE price > 100 AND name = 'x';
//! UPDATE v SET price = 5 WHERE id = 3;
//! ```
//!
//! `WHERE` clauses are conjunctions of `column op literal`; `SET` clauses
//! assign literals. That covers every update shape used in the paper's
//! experiments (single statements and multi-statement transactions).

use birds_datalog::CmpOp;
use birds_store::Value;
use std::fmt;

/// A parsed condition `column op literal`.
#[derive(Debug, Clone, PartialEq)]
pub struct Condition {
    /// Column name.
    pub column: String,
    /// Comparison operator.
    pub op: CmpOp,
    /// `true` for `<>` / `!=`.
    pub negated: bool,
    /// Literal value.
    pub value: Value,
}

impl Condition {
    /// Evaluate on a value of the column.
    pub fn matches(&self, v: &Value) -> bool {
        self.op.eval(v, &self.value).unwrap_or(false) != self.negated
    }
}

/// A parsed DML statement.
#[derive(Debug, Clone, PartialEq)]
pub enum DmlStatement {
    /// `INSERT INTO table VALUES (…), (…)`
    Insert {
        /// Target relation (view) name.
        table: String,
        /// Rows to insert.
        rows: Vec<Vec<Value>>,
    },
    /// `DELETE FROM table WHERE …`
    Delete {
        /// Target relation (view) name.
        table: String,
        /// Conjunctive predicate (empty = all rows).
        predicate: Vec<Condition>,
    },
    /// `UPDATE table SET col = lit, … WHERE …`
    Update {
        /// Target relation (view) name.
        table: String,
        /// Assignments.
        sets: Vec<(String, Value)>,
        /// Conjunctive predicate (empty = all rows).
        predicate: Vec<Condition>,
    },
}

impl DmlStatement {
    /// The target table of the statement.
    pub fn table(&self) -> &str {
        match self {
            DmlStatement::Insert { table, .. }
            | DmlStatement::Delete { table, .. }
            | DmlStatement::Update { table, .. } => table,
        }
    }
}

/// Parse error with message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DmlParseError(pub String);

impl fmt::Display for DmlParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DML parse error: {}", self.0)
    }
}

impl std::error::Error for DmlParseError {}

// ---- tokenizer -----------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Word(String), // keywords and identifiers, uppercased for keywords
    Str(String),
    Num(Value),
    LParen,
    RParen,
    Comma,
    Semi,
    Op(CmpOp, bool), // (op, negated)
    Equals,
    Star,
}

fn tokenize(src: &str) -> Result<Vec<Tok>, DmlParseError> {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            ',' => {
                out.push(Tok::Comma);
                i += 1;
            }
            ';' => {
                out.push(Tok::Semi);
                i += 1;
            }
            '*' => {
                out.push(Tok::Star);
                i += 1;
            }
            '=' => {
                out.push(Tok::Equals);
                i += 1;
            }
            '<' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Tok::Op(CmpOp::Le, false));
                    i += 2;
                } else if chars.get(i + 1) == Some(&'>') {
                    out.push(Tok::Op(CmpOp::Eq, true));
                    i += 2;
                } else {
                    out.push(Tok::Op(CmpOp::Lt, false));
                    i += 1;
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Tok::Op(CmpOp::Ge, false));
                    i += 2;
                } else {
                    out.push(Tok::Op(CmpOp::Gt, false));
                    i += 1;
                }
            }
            '!' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Tok::Op(CmpOp::Eq, true));
                    i += 2;
                } else {
                    return Err(DmlParseError("unexpected '!'".into()));
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match chars.get(i) {
                        None => return Err(DmlParseError("unterminated string".into())),
                        Some('\'') if chars.get(i + 1) == Some(&'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some('\'') => {
                            i += 1;
                            break;
                        }
                        Some(&ch) => {
                            s.push(ch);
                            i += 1;
                        }
                    }
                }
                out.push(Tok::Str(s));
            }
            c if c.is_ascii_digit() || c == '-' => {
                let start = i;
                if c == '-' {
                    i += 1;
                    if !chars.get(i).is_some_and(|c| c.is_ascii_digit()) {
                        return Err(DmlParseError("expected digits after '-'".into()));
                    }
                }
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if chars.get(i) == Some(&'.')
                    && chars.get(i + 1).is_some_and(|c| c.is_ascii_digit())
                {
                    is_float = true;
                    i += 1;
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text: String = chars[start..i].iter().collect();
                let v = if is_float {
                    Value::float(
                        text.parse::<f64>()
                            .map_err(|_| DmlParseError(format!("bad float '{text}'")))?,
                    )
                } else {
                    Value::Int(
                        text.parse::<i64>()
                            .map_err(|_| DmlParseError(format!("bad integer '{text}'")))?,
                    )
                };
                out.push(Tok::Num(v));
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(Tok::Word(chars[start..i].iter().collect()));
            }
            other => return Err(DmlParseError(format!("unexpected character '{other}'"))),
        }
    }
    Ok(out)
}

// ---- parser --------------------------------------------------------

struct P {
    toks: Vec<Tok>,
    pos: usize,
}

impl P {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        self.pos += 1;
        t
    }

    fn keyword(&mut self, kw: &str) -> Result<(), DmlParseError> {
        match self.bump() {
            Some(Tok::Word(w)) if w.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(DmlParseError(format!("expected '{kw}', found {other:?}"))),
        }
    }

    fn is_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Word(w)) if w.eq_ignore_ascii_case(kw))
    }

    fn ident(&mut self) -> Result<String, DmlParseError> {
        match self.bump() {
            Some(Tok::Word(w)) => Ok(w),
            other => Err(DmlParseError(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn literal(&mut self) -> Result<Value, DmlParseError> {
        match self.bump() {
            Some(Tok::Str(s)) => Ok(Value::str(s)),
            Some(Tok::Num(v)) => Ok(v),
            Some(Tok::Word(w)) if w.eq_ignore_ascii_case("true") => Ok(Value::Bool(true)),
            Some(Tok::Word(w)) if w.eq_ignore_ascii_case("false") => Ok(Value::Bool(false)),
            other => Err(DmlParseError(format!("expected literal, found {other:?}"))),
        }
    }

    fn where_clause(&mut self) -> Result<Vec<Condition>, DmlParseError> {
        if !self.is_keyword("WHERE") {
            return Ok(vec![]);
        }
        self.bump();
        let mut conds = vec![self.condition()?];
        while self.is_keyword("AND") {
            self.bump();
            conds.push(self.condition()?);
        }
        Ok(conds)
    }

    fn condition(&mut self) -> Result<Condition, DmlParseError> {
        let column = self.ident()?;
        let (op, negated) = match self.bump() {
            Some(Tok::Equals) => (CmpOp::Eq, false),
            Some(Tok::Op(op, neg)) => (op, neg),
            other => {
                return Err(DmlParseError(format!(
                    "expected comparison operator, found {other:?}"
                )))
            }
        };
        let value = self.literal()?;
        Ok(Condition {
            column,
            op,
            negated,
            value,
        })
    }

    fn statement(&mut self) -> Result<DmlStatement, DmlParseError> {
        match self.peek() {
            Some(Tok::Word(w)) if w.eq_ignore_ascii_case("INSERT") => {
                self.bump();
                self.keyword("INTO")?;
                let table = self.ident()?;
                self.keyword("VALUES")?;
                let mut rows = Vec::new();
                loop {
                    match self.bump() {
                        Some(Tok::LParen) => {}
                        other => {
                            return Err(DmlParseError(format!("expected '(', found {other:?}")))
                        }
                    }
                    let mut row = vec![self.literal()?];
                    while self.peek() == Some(&Tok::Comma) {
                        self.bump();
                        row.push(self.literal()?);
                    }
                    match self.bump() {
                        Some(Tok::RParen) => {}
                        other => {
                            return Err(DmlParseError(format!("expected ')', found {other:?}")))
                        }
                    }
                    rows.push(row);
                    if self.peek() == Some(&Tok::Comma) {
                        self.bump();
                        continue;
                    }
                    break;
                }
                Ok(DmlStatement::Insert { table, rows })
            }
            Some(Tok::Word(w)) if w.eq_ignore_ascii_case("DELETE") => {
                self.bump();
                self.keyword("FROM")?;
                let table = self.ident()?;
                let predicate = self.where_clause()?;
                Ok(DmlStatement::Delete { table, predicate })
            }
            Some(Tok::Word(w)) if w.eq_ignore_ascii_case("UPDATE") => {
                self.bump();
                let table = self.ident()?;
                self.keyword("SET")?;
                let mut sets = Vec::new();
                loop {
                    let col = self.ident()?;
                    match self.bump() {
                        Some(Tok::Equals) => {}
                        other => {
                            return Err(DmlParseError(format!("expected '=', found {other:?}")))
                        }
                    }
                    sets.push((col, self.literal()?));
                    if self.peek() == Some(&Tok::Comma) {
                        self.bump();
                        continue;
                    }
                    break;
                }
                let predicate = self.where_clause()?;
                Ok(DmlStatement::Update {
                    table,
                    sets,
                    predicate,
                })
            }
            other => Err(DmlParseError(format!(
                "expected INSERT/DELETE/UPDATE, found {other:?}"
            ))),
        }
    }
}

/// Parse one DML statement (an optional trailing `;` is consumed).
pub fn parse_dml(src: &str) -> Result<DmlStatement, DmlParseError> {
    let mut p = P {
        toks: tokenize(src)?,
        pos: 0,
    };
    let stmt = p.statement()?;
    if p.peek() == Some(&Tok::Semi) {
        p.bump();
    }
    if p.peek().is_some() {
        return Err(DmlParseError("trailing input after statement".into()));
    }
    Ok(stmt)
}

/// Parse a `;`-separated script — a transaction in the sense of
/// Algorithm 2 (optionally wrapped in `BEGIN … END`).
pub fn parse_script(src: &str) -> Result<Vec<DmlStatement>, DmlParseError> {
    let mut p = P {
        toks: tokenize(src)?,
        pos: 0,
    };
    if p.is_keyword("BEGIN") {
        p.bump();
        if p.peek() == Some(&Tok::Semi) {
            p.bump();
        }
    }
    let mut stmts = Vec::new();
    while p.peek().is_some() {
        if p.is_keyword("END") {
            p.bump();
            if p.peek() == Some(&Tok::Semi) {
                p.bump();
            }
            break;
        }
        stmts.push(p.statement()?);
        if p.peek() == Some(&Tok::Semi) {
            p.bump();
        }
    }
    Ok(stmts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_insert_multiple_rows() {
        let s = parse_dml("INSERT INTO v VALUES (1, 'a'), (2, 'b');").unwrap();
        match s {
            DmlStatement::Insert { table, rows } => {
                assert_eq!(table, "v");
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[0], vec![Value::Int(1), Value::str("a")]);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parse_delete_with_conditions() {
        let s = parse_dml("DELETE FROM items WHERE price > 100 AND name <> 'x'").unwrap();
        match s {
            DmlStatement::Delete { table, predicate } => {
                assert_eq!(table, "items");
                assert_eq!(predicate.len(), 2);
                assert!(predicate[0].matches(&Value::Int(101)));
                assert!(!predicate[0].matches(&Value::Int(100)));
                assert!(predicate[1].matches(&Value::str("y")));
                assert!(!predicate[1].matches(&Value::str("x")));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parse_update() {
        let s = parse_dml("UPDATE v SET price = 5, name = 'n' WHERE id = 3;").unwrap();
        match s {
            DmlStatement::Update {
                table,
                sets,
                predicate,
            } => {
                assert_eq!(table, "v");
                assert_eq!(sets.len(), 2);
                assert_eq!(sets[0], ("price".to_string(), Value::Int(5)));
                assert_eq!(predicate.len(), 1);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parse_transaction_script() {
        let stmts =
            parse_script("BEGIN; INSERT INTO v VALUES (1); DELETE FROM v WHERE a = 1; END;")
                .unwrap();
        assert_eq!(stmts.len(), 2);
    }

    #[test]
    fn keywords_case_insensitive() {
        assert!(parse_dml("insert into v values (1)").is_ok());
        assert!(parse_dml("delete from v where a >= -2").is_ok());
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_dml("DROP TABLE v").is_err());
        assert!(parse_dml("INSERT INTO v VALUES 1").is_err());
        assert!(parse_dml("DELETE FROM v WHERE a ==").is_err());
        assert!(parse_dml("INSERT INTO v VALUES (1) garbage").is_err());
    }

    #[test]
    fn string_escapes() {
        let s = parse_dml("INSERT INTO v VALUES ('o''clock')").unwrap();
        match s {
            DmlStatement::Insert { rows, .. } => {
                assert_eq!(rows[0][0], Value::str("o'clock"));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn float_and_negative_literals() {
        let s = parse_dml("INSERT INTO v VALUES (-3, 2.5)").unwrap();
        match s {
            DmlStatement::Insert { rows, .. } => {
                assert_eq!(rows[0][0], Value::Int(-3));
                assert_eq!(rows[0][1], Value::float(2.5));
            }
            _ => panic!(),
        }
    }
}
