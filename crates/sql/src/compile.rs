//! Full updatable-view SQL script generation (the §6.1 listing).

use crate::codegen::{constraint_to_select, program_to_sql, sql_ident};
use birds_core::{incrementalize, UpdateStrategy};
use birds_datalog::{DeltaKind, PredRef, Program};
use std::fmt::Write as _;

/// The compiled SQL artifacts for one updatable view.
#[derive(Debug, Clone)]
pub struct CompiledSql {
    /// `CREATE VIEW <name> AS <query>;`
    pub create_view: String,
    /// The trigger function + `CREATE TRIGGER` statement implementing the
    /// update strategy (original, non-incremental form).
    pub trigger_program: String,
    /// The incrementalized trigger program, when incrementalization
    /// succeeded.
    pub incremental_trigger_program: Option<String>,
}

impl CompiledSql {
    /// Whole script (view + original trigger).
    pub fn script(&self) -> String {
        format!("{}\n\n{}", self.create_view, self.trigger_program)
    }

    /// The paper's Table 1 "Compiled SQL (Byte)" metric: size of the
    /// generated script.
    pub fn byte_size(&self) -> usize {
        self.script().len()
    }
}

/// Compile a validated strategy (with its view definition `get`) into SQL.
pub fn compile_strategy(strategy: &UpdateStrategy, get: &Program) -> CompiledSql {
    let view = &strategy.view.name;
    let create_view = format!(
        "CREATE VIEW {view} AS\n{};",
        program_to_sql(get, &PredRef::plain(view))
    );
    let incremental_trigger_program = incrementalize(strategy)
        .ok()
        .map(|inc| trigger_program(strategy, &inc, true));
    CompiledSql {
        create_view,
        trigger_program: trigger_program(strategy, &strategy.putdelta, false),
        incremental_trigger_program,
    }
}

/// Generate the trigger function per the paper's §6.1 skeleton:
/// derive view deltas → check constraints → compute and apply deltas.
fn trigger_program(
    strategy: &UpdateStrategy,
    delta_program: &Program,
    incremental: bool,
) -> String {
    let view = &strategy.view.name;
    let suffix = if incremental { "_incremental" } else { "" };
    let mut sql = String::new();
    let _ = writeln!(
        sql,
        "CREATE OR REPLACE FUNCTION {view}_update_strategy{suffix}() RETURNS trigger AS $$"
    );
    let _ = writeln!(sql, "BEGIN");
    let _ = writeln!(sql, "  -- Deriving changes on the view (Algorithm 2)");
    let _ = writeln!(
        sql,
        "  CREATE TEMP TABLE delta_ins_{view} ON COMMIT DROP AS\n    SELECT * FROM {view}_delta_insertions;"
    );
    let _ = writeln!(
        sql,
        "  CREATE TEMP TABLE delta_del_{view} ON COMMIT DROP AS\n    SELECT * FROM {view}_delta_deletions;"
    );
    let _ = writeln!(sql, "  -- Checking constraints");
    for (i, c) in strategy.putdelta.constraints().enumerate() {
        let _ = writeln!(sql, "  IF EXISTS ({}) THEN", constraint_to_select(c));
        let _ = writeln!(
            sql,
            "    RAISE EXCEPTION 'Invalid view update: constraint {i} violated';"
        );
        let _ = writeln!(sql, "  END IF;");
    }
    let _ = writeln!(sql, "  -- Calculating and applying delta relations");
    for schema in &strategy.source_schema.relations {
        let name = &schema.name;
        for kind in [DeltaKind::Insert, DeltaKind::Delete] {
            let pred = PredRef {
                name: name.clone(),
                kind,
            };
            if delta_program.rules_for(&pred).next().is_none() {
                continue;
            }
            let ident = sql_ident(&pred);
            let _ = writeln!(
                sql,
                "  CREATE TEMP TABLE {ident} ON COMMIT DROP AS\n    {};",
                program_to_sql(delta_program, &pred)
            );
        }
        let del = PredRef::del(name);
        if delta_program.rules_for(&del).next().is_some() {
            let _ = writeln!(
                sql,
                "  DELETE FROM {name} WHERE ROW({name}.*) IN (SELECT * FROM {});",
                sql_ident(&del)
            );
        }
        let ins = PredRef::ins(name);
        if delta_program.rules_for(&ins).next().is_some() {
            let _ = writeln!(
                sql,
                "  INSERT INTO {name} SELECT * FROM {};",
                sql_ident(&ins)
            );
        }
    }
    let _ = writeln!(sql, "  RETURN NEW;");
    let _ = writeln!(sql, "END;");
    let _ = writeln!(sql, "$$ LANGUAGE plpgsql;");
    let _ = writeln!(sql);
    let _ = writeln!(
        sql,
        "CREATE TRIGGER {view}_update{suffix}\n  INSTEAD OF INSERT OR UPDATE OR DELETE ON {view}\n  FOR EACH ROW EXECUTE FUNCTION {view}_update_strategy{suffix}();"
    );
    sql
}

#[cfg(test)]
mod tests {
    use super::*;
    use birds_datalog::parse_program;
    use birds_store::{DatabaseSchema, Schema, SortKind};

    fn union_strategy() -> UpdateStrategy {
        UpdateStrategy::parse(
            DatabaseSchema::new()
                .with(Schema::new("r1", vec![("a", SortKind::Int)]))
                .with(Schema::new("r2", vec![("a", SortKind::Int)])),
            Schema::new("v", vec![("a", SortKind::Int)]),
            "
            false :- v(X), X > 1000.
            -r1(X) :- r1(X), not v(X).
            -r2(X) :- r2(X), not v(X).
            +r1(X) :- v(X), not r1(X), not r2(X).
            ",
            None,
        )
        .unwrap()
    }

    #[test]
    fn compiled_script_has_view_and_trigger() {
        let s = union_strategy();
        let get = parse_program("v(X) :- r1(X). v(X) :- r2(X).").unwrap();
        let compiled = compile_strategy(&s, &get);
        assert!(compiled.create_view.starts_with("CREATE VIEW v AS"));
        assert!(compiled
            .trigger_program
            .contains("INSTEAD OF INSERT OR UPDATE OR DELETE ON v"));
        assert!(compiled.trigger_program.contains("RAISE EXCEPTION"));
        assert!(compiled.byte_size() > 500);
    }

    #[test]
    fn incremental_trigger_references_view_deltas() {
        let s = union_strategy();
        let get = parse_program("v(X) :- r1(X). v(X) :- r2(X).").unwrap();
        let compiled = compile_strategy(&s, &get);
        let inc = compiled.incremental_trigger_program.unwrap();
        assert!(
            inc.contains("delta_ins_v") || inc.contains("delta_del_v"),
            "incremental trigger must consume view deltas: {inc}"
        );
    }

    #[test]
    fn deltas_applied_delete_before_insert() {
        let s = union_strategy();
        let get = parse_program("v(X) :- r1(X). v(X) :- r2(X).").unwrap();
        let compiled = compile_strategy(&s, &get);
        let t = &compiled.trigger_program;
        let del_pos = t.find("DELETE FROM r1").unwrap();
        let ins_pos = t.find("INSERT INTO r1").unwrap();
        assert!(del_pos < ins_pos);
    }
}
