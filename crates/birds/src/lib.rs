//! # birds — Programmable View Update Strategies on Relations
//!
//! A Rust reproduction of the BIRDS system from *“Programmable View Update
//! Strategies on Relations”* (Tran, Kato, Hu — VLDB 2020).
//!
//! A **view update strategy** is a putback program `putdelta`: a set of
//! non-recursive Datalog rules (with negation, equalities and comparisons)
//! that map the original source database `S` and an updated view `V′` to
//! **delta relations** `+r` / `-r` on the source tables. BIRDS
//!
//! 1. **validates** the strategy (Algorithm 1 of the paper):
//!    well-definedness, existence of a view definition satisfying
//!    **GetPut**, and the **PutGet** round-tripping property — a sound and
//!    complete decision procedure for the LVGN-Datalog fragment;
//! 2. **derives** the unique view definition `get` from the strategy;
//! 3. **incrementalizes** the strategy (§5) so each view update costs
//!    `O(|ΔV|)` rather than `O(|S|)`;
//! 4. **compiles** the strategy to SQL (`CREATE VIEW` + `INSTEAD OF`
//!    triggers) and — in this reproduction — also executes it directly in
//!    an in-process updatable-view [`Engine`].
//!
//! ## Quick start
//!
//! ```
//! use birds::prelude::*;
//!
//! // Source schema: two unary tables; view v = r1 ∪ r2 (Example 3.1).
//! let source = DatabaseSchema::new()
//!     .with(Schema::new("r1", vec![("a", SortKind::Int)]))
//!     .with(Schema::new("r2", vec![("a", SortKind::Int)]));
//! let view = Schema::new("v", vec![("a", SortKind::Int)]);
//!
//! // The programmable update strategy, as Datalog delta rules.
//! let strategy = UpdateStrategy::parse(
//!     source,
//!     view,
//!     "
//!     -r1(X) :- r1(X), not v(X).
//!     -r2(X) :- r2(X), not v(X).
//!     +r1(X) :- v(X), not r1(X), not r2(X).
//!     ",
//!     None,
//! )
//! .unwrap();
//!
//! // Validate (Algorithm 1) and read back the derived view definition.
//! let report = validate(&strategy).unwrap();
//! assert!(report.valid);
//! let get = report.derived_get.clone().unwrap();
//! assert_eq!(get.len(), 2); // v(X) :- r1(X).  v(X) :- r2(X).
//!
//! // Run it: an in-process database with an updatable view.
//! let mut db = Database::new();
//! db.add_relation(Relation::with_tuples("r1", 1, vec![tuple![1]]).unwrap()).unwrap();
//! db.add_relation(Relation::with_tuples("r2", 1, vec![tuple![2], tuple![4]]).unwrap()).unwrap();
//! let mut engine = Engine::new(db);
//! engine.register_view(strategy, StrategyMode::Incremental).unwrap();
//!
//! engine.execute("BEGIN; INSERT INTO v VALUES (3); DELETE FROM v WHERE a = 2; END;").unwrap();
//! assert!(engine.relation("r1").unwrap().contains(&tuple![3]));
//! assert!(!engine.relation("r2").unwrap().contains(&tuple![2]));
//! ```
//!
//! ## Crate map
//!
//! | module | re-exported from | paper section |
//! |---|---|---|
//! | [`datalog`] | `birds-datalog` | §2.1, §3.1–3.2 (language, LVGN) |
//! | [`store`] | `birds-store` | relational substrate, `R ⊕ ΔR` |
//! | [`eval`] | `birds-eval` | bottom-up Datalog evaluation |
//! | [`fol`] | `birds-fol` | §4 + Appendices A–B (Datalog ↔ FO) |
//! | [`solver`] | `birds-solver` | the Z3 substitute (bounded model finder) |
//! | [`core`] | `birds-core` | §4 validation, §5 incrementalization |
//! | [`sql`] | `birds-sql` | §6.1 SQL/trigger compilation |
//! | [`engine`] | `birds-engine` | §6.1 runtime (triggers, Algorithm 2) |
//! | [`service`] | `birds-service` | concurrent batched-update service layer |
//! | [`benchmarks`] | `birds-benchmarks` | §6.2 (Table 1 corpus, Figure 6) |

pub use birds_core as core;
pub use birds_datalog as datalog;
pub use birds_engine as engine;
pub use birds_eval as eval;
pub use birds_fol as fol;
pub use birds_service as service;
pub use birds_solver as solver;
pub use birds_sql as sql;
pub use birds_store as store;

pub use birds_benchmarks as benchmarks;

// Top-level convenience re-exports: the types almost every user touches.
pub use birds_core::{
    incrementalize, incrementalize_general, incrementalize_lvgn, validate, CoreError,
    UpdateStrategy, ValidationReport, Validator,
};
pub use birds_datalog::{parse_program, parse_rule, Program, Rule};
pub use birds_engine::{Engine, EngineError, ExecutionStats, StrategyMode};
pub use birds_sql::{compile_strategy, CompiledSql};
pub use birds_store::{Database, DatabaseSchema, Relation, Schema, SortKind, Tuple, Value};

/// Everything needed for typical use, importable with one `use`.
pub mod prelude {
    pub use birds_core::validate::FailedPass;
    pub use birds_core::{incrementalize, validate, UpdateStrategy, ValidationReport, Validator};
    pub use birds_datalog::{parse_program, parse_rule, DeltaKind, PredRef, Program, Rule};
    pub use birds_engine::{Engine, EngineError, ExecutionStats, StrategyMode};
    pub use birds_service::{LocalClient, Server, Service, ServiceError, Session};
    pub use birds_solver::{BoundedSolver, SatOutcome};
    pub use birds_sql::{compile_strategy, CompiledSql};
    pub use birds_store::{
        tuple, Database, DatabaseSchema, Delta, DeltaSet, Relation, Schema, SortKind, Tuple, Value,
    };
}
