//! Property-based tests for string interning: `Value`'s total order must
//! be exactly what it was when `Value::Str` held an owned `String`, and
//! cross-sort builtin comparisons must still be rejected.

use birds_store::{IStr, Value};
use proptest::prelude::*;

fn arb_str() -> impl Strategy<Value = String> {
    // Mix of short identifiers and ISO-date-shaped strings, the two
    // string populations the paper's programs use.
    "[a-z0-9~\u{1}-]{0,12}"
}

fn arb_date() -> impl Strategy<Value = String> {
    "19[0-9]{2}-[01][0-9]-[0-3][0-9]"
}

proptest! {
    /// Interned strings compare exactly like the raw strings: the
    /// lexicographic total order (and hence the paper's date-as-ISO-string
    /// trick) survives interning.
    #[test]
    fn istr_order_matches_str_order(a in arb_str(), b in arb_str()) {
        let (ia, ib) = (IStr::new(&a), IStr::new(&b));
        prop_assert_eq!(ia.cmp(&ib), a.as_str().cmp(b.as_str()));
        prop_assert_eq!(ia == ib, a == b);
    }

    /// Same property lifted to `Value`: both through `same_sort_cmp` (the
    /// builtin `<`/`>` path) and the blanket `Ord`.
    #[test]
    fn value_str_order_is_preserved(a in arb_str(), b in arb_str()) {
        let (va, vb) = (Value::str(&a), Value::str(&b));
        prop_assert_eq!(va.same_sort_cmp(&vb), Some(a.cmp(&b)));
        prop_assert_eq!(va.cmp(&vb), a.cmp(&b));
    }

    /// ISO dates keep ordering temporally under interning.
    #[test]
    fn dates_order_temporally(a in arb_date(), b in arb_date()) {
        prop_assert_eq!(Value::str(&a) < Value::str(&b), a < b);
    }

    /// Sorting a mixed batch of interned string values agrees with
    /// sorting the raw strings.
    #[test]
    fn sorting_values_matches_sorting_strings(
        raw in proptest::collection::vec(arb_str(), 0..16)
    ) {
        let mut raw = raw;
        let mut vals: Vec<Value> = raw.iter().map(Value::str).collect();
        vals.sort();
        raw.sort();
        let resorted: Vec<&str> = vals.iter().map(|v| v.as_str().unwrap()).collect();
        prop_assert_eq!(resorted, raw.iter().map(String::as_str).collect::<Vec<_>>());
    }

    /// Cross-sort comparisons are still rejected — interning must not make
    /// a string comparable to an int/float/bool.
    #[test]
    fn cross_sort_comparisons_rejected(s in arb_str(), i in any::<i64>(), b in any::<bool>()) {
        let vs = Value::str(&s);
        prop_assert_eq!(vs.same_sort_cmp(&Value::Int(i)), None);
        prop_assert_eq!(Value::Int(i).same_sort_cmp(&vs), None);
        prop_assert_eq!(vs.same_sort_cmp(&Value::Bool(b)), None);
        prop_assert_eq!(vs.same_sort_cmp(&Value::float(i as f64)), None);
    }

    /// Re-interning the same contents yields an identical symbol (equal,
    /// same hash, same backing pointer).
    #[test]
    fn interning_is_idempotent(s in arb_str()) {
        let a = IStr::new(&s);
        let b = IStr::new(&s.clone());
        prop_assert_eq!(a, b);
        prop_assert!(std::ptr::eq(a.as_str(), b.as_str()));
    }

    /// `Value` equality across sorts: `Eq` never panics and int/str are
    /// never equal however the string is constructed.
    #[test]
    fn int_str_never_equal(i in any::<i64>()) {
        prop_assert_ne!(Value::Int(i), Value::str(i.to_string()));
    }
}
