//! Property-based tests for the relational substrate: delta application
//! laws (the `R ⊕ ΔR` algebra of §3.1) and index/scan agreement.

use birds_store::{tuple, Database, Delta, DeltaSet, Relation, Tuple, Value};
use proptest::prelude::*;
use std::collections::HashSet;

fn arb_tuples() -> impl Strategy<Value = Vec<(i64, i64)>> {
    proptest::collection::vec((0i64..6, 0i64..6), 0..12)
}

fn rel_of(name: &str, rows: &[(i64, i64)]) -> Relation {
    Relation::with_tuples(name, 2, rows.iter().map(|&(a, b)| tuple![a, b])).unwrap()
}

fn set_of(rows: &[(i64, i64)]) -> HashSet<Tuple> {
    rows.iter().map(|&(a, b)| tuple![a, b]).collect()
}

proptest! {
    /// R ⊕ Δ = (R \ Δ⁻) ∪ Δ⁺ — the §3.1 definition, computed two ways.
    #[test]
    fn delta_application_matches_set_semantics(
        base in arb_tuples(),
        ins in arb_tuples(),
        del in arb_tuples(),
    ) {
        // Keep the delta non-contradictory: drop inserts that also appear
        // as deletes.
        let del_set = set_of(&del);
        let ins_set: HashSet<Tuple> = set_of(&ins)
            .difference(&del_set)
            .cloned()
            .collect();

        let mut delta = Delta::new();
        delta.insertions.extend(ins_set.iter().cloned());
        delta.deletions.extend(del_set.iter().cloned());
        prop_assert!(delta.is_non_contradictory());

        let mut db = Database::new();
        db.add_relation(rel_of("r", &base)).unwrap();
        let mut ds = DeltaSet::new();
        *ds.entry("r") = delta;
        ds.apply_to(&mut db).unwrap();

        let expected: HashSet<Tuple> = set_of(&base)
            .difference(&del_set)
            .cloned()
            .collect::<HashSet<_>>()
            .union(&ins_set)
            .cloned()
            .collect();
        let got: HashSet<Tuple> =
            db.relation("r").unwrap().iter().cloned().collect();
        prop_assert_eq!(got, expected);
    }

    /// Applying a delta built from the difference of two relations turns
    /// one into the other (delta extraction is exact).
    #[test]
    fn difference_delta_roundtrip(
        from in arb_tuples(),
        to in arb_tuples(),
    ) {
        let from_set = set_of(&from);
        let to_set = set_of(&to);
        let mut delta = Delta::new();
        delta.insertions = to_set.difference(&from_set).cloned().collect();
        delta.deletions = from_set.difference(&to_set).cloned().collect();

        let mut db = Database::new();
        db.add_relation(rel_of("r", &from)).unwrap();
        let mut ds = DeltaSet::new();
        *ds.entry("r") = delta;
        ds.apply_to(&mut db).unwrap();
        let got: HashSet<Tuple> =
            db.relation("r").unwrap().iter().cloned().collect();
        prop_assert_eq!(got, to_set);
    }

    /// An index probe returns exactly what a full scan returns, for any
    /// column subset and any probe key, under arbitrary mutation.
    #[test]
    fn probe_equals_scan(
        rows in arb_tuples(),
        extra in arb_tuples(),
        removed in arb_tuples(),
        col in 0usize..2,
        key in 0i64..6,
    ) {
        let mut r = rel_of("r", &rows);
        r.ensure_index(&[col]).unwrap();
        for &(a, b) in &extra {
            r.insert(tuple![a, b]).unwrap();
        }
        for &(a, b) in &removed {
            r.remove(&tuple![a, b]);
        }
        let key_val = Value::int(key);
        let mut via_probe: Vec<Tuple> =
            r.probe(&[col], &[key_val]).cloned().collect();
        via_probe.sort();
        let mut via_scan: Vec<Tuple> = r
            .iter()
            .filter(|t| t[col] == key_val)
            .cloned()
            .collect();
        via_scan.sort();
        prop_assert_eq!(via_probe, via_scan);
    }

    /// Insert-then-remove of the same tuple never changes a relation.
    #[test]
    fn insert_remove_identity(
        rows in arb_tuples(),
        a in 0i64..6,
        b in 0i64..6,
    ) {
        let mut r = rel_of("r", &rows);
        r.ensure_index(&[1]).unwrap();
        let before: HashSet<Tuple> = r.iter().cloned().collect();
        let was_present = r.contains(&tuple![a, b]);
        r.insert(tuple![a, b]).unwrap();
        if !was_present {
            r.remove(&tuple![a, b]);
        }
        let after: HashSet<Tuple> = r.iter().cloned().collect();
        prop_assert_eq!(before, after);
    }

    /// `replace_all` is equivalent to rebuilding from scratch, with
    /// indexes still answering correctly.
    #[test]
    fn replace_all_equals_fresh_relation(
        rows in arb_tuples(),
        next in arb_tuples(),
        key in 0i64..6,
    ) {
        let mut r = rel_of("r", &rows);
        r.ensure_index(&[0]).unwrap();
        r.replace_all(next.iter().map(|&(a, b)| tuple![a, b])).unwrap();
        let fresh = rel_of("r", &next);
        prop_assert_eq!(r.len(), fresh.len());
        let key_val = Value::int(key);
        let mut got: Vec<Tuple> = r.probe(&[0], &[key_val]).cloned().collect();
        got.sort();
        let mut want: Vec<Tuple> =
            fresh.iter().filter(|t| t[0] == key_val).cloned().collect();
        want.sort();
        prop_assert_eq!(got, want);
    }

    /// Value ordering is a total order on each sort: exactly one of
    /// <, =, > holds for same-sort pairs.
    #[test]
    fn value_order_is_total_per_sort(a in 0i64..100, b in 0i64..100) {
        let (va, vb) = (Value::int(a), Value::int(b));
        let lt = va < vb;
        let eq = va == vb;
        let gt = va > vb;
        prop_assert_eq!(1, [lt, eq, gt].iter().filter(|&&x| x).count());
    }
}
