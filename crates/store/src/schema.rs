//! Relation and database schemas.
//!
//! A database schema `S = ⟨r1, …, rn⟩` is a finite sequence of relation
//! names with associated attribute lists (paper §2.1).

use crate::value::ValueSort;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Re-export of the value sort used for attribute typing.
pub type SortKind = ValueSort;

/// A named, typed attribute of a relation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attribute {
    /// Attribute name (e.g. `emp_name`).
    pub name: String,
    /// Sort of values stored in this column.
    pub sort: SortKind,
}

impl Attribute {
    /// Build an attribute.
    pub fn new(name: impl Into<String>, sort: SortKind) -> Self {
        Attribute {
            name: name.into(),
            sort,
        }
    }
}

/// Schema of one relation: its name and attributes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    /// Relation (predicate) name.
    pub name: String,
    /// Ordered attribute list; the arity is `attributes.len()`.
    pub attributes: Vec<Attribute>,
}

impl Schema {
    /// Build a schema from `(name, sort)` pairs.
    pub fn new(name: impl Into<String>, attrs: Vec<(&str, SortKind)>) -> Self {
        Schema {
            name: name.into(),
            attributes: attrs
                .into_iter()
                .map(|(n, s)| Attribute::new(n, s))
                .collect(),
        }
    }

    /// Arity of the relation.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Position of the named attribute, if present.
    pub fn attribute_index(&self, name: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a.name == name)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, a) in self.attributes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {:?}", a.name, a.sort)?;
        }
        write!(f, ")")
    }
}

/// Schema of a whole database: an ordered list of relation schemas.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DatabaseSchema {
    /// Relation schemas in declaration order.
    pub relations: Vec<Schema>,
}

impl DatabaseSchema {
    /// Empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a relation schema (builder style).
    pub fn with(mut self, schema: Schema) -> Self {
        self.relations.push(schema);
        self
    }

    /// Look up a relation schema by name.
    pub fn get(&self, name: &str) -> Option<&Schema> {
        self.relations.iter().find(|s| s.name == name)
    }

    /// Names of all relations, in order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.relations.iter().map(|s| s.name.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_arity_and_lookup() {
        let s = Schema::new(
            "ed",
            vec![("emp_name", SortKind::Str), ("dept_name", SortKind::Str)],
        );
        assert_eq!(s.arity(), 2);
        assert_eq!(s.attribute_index("dept_name"), Some(1));
        assert_eq!(s.attribute_index("nope"), None);
    }

    #[test]
    fn database_schema_lookup() {
        let db = DatabaseSchema::new()
            .with(Schema::new("r1", vec![("a", SortKind::Int)]))
            .with(Schema::new("r2", vec![("a", SortKind::Int)]));
        assert!(db.get("r1").is_some());
        assert!(db.get("r3").is_none());
        assert_eq!(db.names().collect::<Vec<_>>(), vec!["r1", "r2"]);
    }

    #[test]
    fn display_is_readable() {
        let s = Schema::new("male", vec![("emp_name", SortKind::Str)]);
        assert_eq!(s.to_string(), "male(emp_name: Str)");
    }
}
