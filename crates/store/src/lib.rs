//! # birds-store
//!
//! In-memory relational storage substrate for the BIRDS reproduction.
//!
//! The paper ("Programmable View Update Strategies on Relations", VLDB 2020)
//! runs its compiled view-update strategies inside PostgreSQL. This crate is
//! the storage half of our PostgreSQL substitute: typed [`Value`]s,
//! [`Tuple`]s, per-relation [`Schema`]s, [`Relation`]s backed by a hash set
//! with incrementally-maintained secondary indexes, whole [`Database`]
//! instances, and delta application `R ⊕ ΔR = (R \ Δ⁻) ∪ Δ⁺` (paper §3.1).
//!
//! Everything here is deliberately engine-agnostic: the Datalog evaluator
//! (`birds-eval`) and the updatable-view runtime (`birds-engine`) both build
//! on these types.

pub mod codec;
pub mod database;
pub mod delta;
pub mod error;
pub mod fxhash;
pub mod intern;
pub mod relation;
pub mod schema;
pub mod tuple;
pub mod value;

pub use database::Database;
pub use delta::{Delta, DeltaSet};
pub use error::{StoreError, StoreResult};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use intern::IStr;
pub use relation::{Relation, RelationVersion};
pub use schema::{Attribute, DatabaseSchema, Schema, SortKind};
pub use tuple::Tuple;
pub use value::{Value, ValueSort};
