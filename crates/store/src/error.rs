//! Error type for storage operations.

use std::fmt;

/// Result alias for store operations.
pub type StoreResult<T> = Result<T, StoreError>;

/// Errors raised by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A tuple's arity does not match the relation's arity.
    ArityMismatch {
        relation: String,
        expected: usize,
        found: usize,
    },
    /// The named relation does not exist in the database.
    UnknownRelation(String),
    /// A relation with this name already exists.
    DuplicateRelation(String),
    /// A delta set simultaneously inserts and deletes the same tuple of the
    /// same relation — i.e. it is *contradictory* in the sense of paper
    /// Definition 3.1.
    ContradictoryDelta { relation: String, tuple: String },
    /// An index was requested over columns outside the relation arity.
    BadIndexColumns { relation: String, arity: usize },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::ArityMismatch {
                relation,
                expected,
                found,
            } => write!(
                f,
                "arity mismatch on relation '{relation}': expected {expected}, found {found}"
            ),
            StoreError::UnknownRelation(name) => write!(f, "unknown relation '{name}'"),
            StoreError::DuplicateRelation(name) => {
                write!(f, "relation '{name}' already exists")
            }
            StoreError::ContradictoryDelta { relation, tuple } => write!(
                f,
                "contradictory delta: tuple {tuple} is both inserted into and deleted from '{relation}'"
            ),
            StoreError::BadIndexColumns { relation, arity } => write!(
                f,
                "index columns out of range for relation '{relation}' of arity {arity}"
            ),
        }
    }
}

impl std::error::Error for StoreError {}
