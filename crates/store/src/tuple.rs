//! Tuples: fixed-arity sequences of [`Value`]s.

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Index;

/// A database tuple `⟨t1, …, tk⟩`.
///
/// Tuples are immutable once constructed; all mutation in the store happens
/// at the relation level (insert/delete whole tuples), mirroring the
/// set-semantics delta model of the paper (§3.1).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Tuple(Vec<Value>);

impl Tuple {
    /// Create a tuple from values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple(values)
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Field access; `None` when out of range.
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.0.get(i)
    }

    /// All fields.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Consume into the underlying values.
    pub fn into_values(self) -> Vec<Value> {
        self.0
    }

    /// Project onto the given column positions (used by index probes).
    /// Panics if a position is out of range — callers validate columns
    /// against the relation arity.
    pub fn project(&self, cols: &[usize]) -> Vec<Value> {
        cols.iter().map(|&c| self.0[c].clone()).collect()
    }

    /// Iterate over the fields.
    pub fn iter(&self) -> std::slice::Iter<'_, Value> {
        self.0.iter()
    }
}

impl Index<usize> for Tuple {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        &self.0[i]
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Self {
        Tuple(v)
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Tuple(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a Tuple {
    type Item = &'a Value;
    type IntoIter = std::slice::Iter<'a, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

/// Convenience macro for building tuples in tests and examples:
/// `tuple![1, "ann", true]`.
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::Tuple::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = tuple![1, "ann"];
        assert_eq!(t.arity(), 2);
        assert_eq!(t[0], Value::int(1));
        assert_eq!(t.get(1), Some(&Value::str("ann")));
        assert_eq!(t.get(2), None);
    }

    #[test]
    fn projection() {
        let t = tuple![1, "b", 3];
        assert_eq!(t.project(&[2, 0]), vec![Value::int(3), Value::int(1)]);
        assert_eq!(t.project(&[]), Vec::<Value>::new());
    }

    #[test]
    fn equality_is_structural() {
        assert_eq!(tuple![1, "x"], tuple![1, "x"]);
        assert_ne!(tuple![1, "x"], tuple!["x", 1]);
    }

    #[test]
    fn display_format() {
        assert_eq!(tuple![1, "a"].to_string(), "(1, 'a')");
    }
}
