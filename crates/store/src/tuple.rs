//! Tuples: fixed-arity sequences of [`Value`]s.

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Index;
use std::sync::Arc;

/// A database tuple `⟨t1, …, tk⟩`.
///
/// Tuples are immutable once constructed; all mutation in the store happens
/// at the relation level (insert/delete whole tuples), mirroring the
/// set-semantics delta model of the paper (§3.1). The fields are stored in
/// a shared `Arc<[Value]>`, so the same tuple referenced from the primary
/// set and any number of secondary index buckets (or probe result sets)
/// shares one allocation: `Tuple::clone` is a reference-count bump, never
/// a deep copy.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Tuple(Arc<[Value]>);

impl Tuple {
    /// Create a tuple from values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple(values.into())
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Field access; `None` when out of range.
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.0.get(i)
    }

    /// All fields.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Copy out the underlying values.
    pub fn into_values(self) -> Vec<Value> {
        self.0.to_vec()
    }

    /// Project onto the given column positions (used by index probes).
    /// Panics if a position is out of range — callers validate columns
    /// against the relation arity. `Value` is `Copy`, so this is a flat
    /// copy of `cols.len()` words into one fresh allocation.
    pub fn project(&self, cols: &[usize]) -> Vec<Value> {
        cols.iter().map(|&c| self.0[c]).collect()
    }

    /// Iterate over the fields.
    pub fn iter(&self) -> std::slice::Iter<'_, Value> {
        self.0.iter()
    }
}

impl Index<usize> for Tuple {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        &self.0[i]
    }
}

/// Tuples borrow as their field slice, so hash sets keyed by `Tuple` can
/// be probed with a `&[Value]` — no throwaway `Tuple` allocation for a
/// membership test. Sound because the derived `Hash`/`Eq` of `Tuple`
/// forward through `Arc` to the slice.
impl std::borrow::Borrow<[Value]> for Tuple {
    fn borrow(&self) -> &[Value] {
        &self.0
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Self {
        Tuple(v.into())
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Tuple(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a Tuple {
    type Item = &'a Value;
    type IntoIter = std::slice::Iter<'a, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

/// Convenience macro for building tuples in tests and examples:
/// `tuple![1, "ann", true]`.
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::Tuple::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = tuple![1, "ann"];
        assert_eq!(t.arity(), 2);
        assert_eq!(t[0], Value::int(1));
        assert_eq!(t.get(1), Some(&Value::str("ann")));
        assert_eq!(t.get(2), None);
    }

    #[test]
    fn projection() {
        let t = tuple![1, "b", 3];
        assert_eq!(t.project(&[2, 0]), vec![Value::int(3), Value::int(1)]);
        assert_eq!(t.project(&[]), Vec::<Value>::new());
    }

    #[test]
    fn equality_is_structural() {
        assert_eq!(tuple![1, "x"], tuple![1, "x"]);
        assert_ne!(tuple![1, "x"], tuple!["x", 1]);
    }

    #[test]
    fn clone_shares_the_allocation() {
        let t = tuple![1, "shared"];
        let u = t.clone();
        assert!(std::ptr::eq(t.values(), u.values()));
    }

    #[test]
    fn display_format() {
        assert_eq!(tuple![1, "a"].to_string(), "(1, 'a')");
    }
}
