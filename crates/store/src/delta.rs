//! Delta relations and their application (paper §3.1).
//!
//! A delta `ΔR` over relation `R` is a pair of tuple sets: insertions `Δ⁺`
//! and deletions `Δ⁻`. Application is `R ⊕ ΔR = (R \ Δ⁻) ∪ Δ⁺` (set
//! semantics). A delta *set* `ΔS` carries one delta per source relation;
//! it is **non-contradictory** when no tuple is simultaneously inserted and
//! deleted on the same relation (Definition 3.1) — contradictory delta sets
//! are rejected at application time.

use crate::database::Database;
use crate::error::{StoreError, StoreResult};
use crate::tuple::Tuple;
use std::collections::{BTreeMap, HashSet};

/// Insertions and deletions for a single relation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Delta {
    /// `Δ⁺`: tuples to insert.
    pub insertions: HashSet<Tuple>,
    /// `Δ⁻`: tuples to delete.
    pub deletions: HashSet<Tuple>,
}

impl Delta {
    /// Empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from explicit insertion / deletion sets.
    pub fn from_sets(insertions: HashSet<Tuple>, deletions: HashSet<Tuple>) -> Self {
        Delta {
            insertions,
            deletions,
        }
    }

    /// `true` when both sets are empty.
    pub fn is_empty(&self) -> bool {
        self.insertions.is_empty() && self.deletions.is_empty()
    }

    /// Tuples present in both `Δ⁺` and `Δ⁻` (witnesses of contradiction).
    pub fn contradictions(&self) -> impl Iterator<Item = &Tuple> {
        self.insertions
            .iter()
            .filter(|t| self.deletions.contains(*t))
    }

    /// `true` when `Δ⁺ ∩ Δ⁻ = ∅`.
    pub fn is_non_contradictory(&self) -> bool {
        self.contradictions().next().is_none()
    }

    /// Number of tuples touched.
    pub fn len(&self) -> usize {
        self.insertions.len() + self.deletions.len()
    }

    /// Is the delta a no-op *relative to R*: all insertions already in `R`
    /// and all deletions absent from `R`? (This is the per-relation
    /// steady-state condition `Δ⁻∩R = ∅ ∧ Δ⁺\R = ∅` of §4.3.)
    pub fn is_noop_on(&self, rel: &crate::relation::Relation) -> bool {
        self.insertions.iter().all(|t| rel.contains(t))
            && self.deletions.iter().all(|t| !rel.contains(t))
    }

    /// Record a *net-effect* insertion: a pending deletion of the same
    /// tuple is cancelled (the later statement overrides the earlier one,
    /// Algorithm 2's `Δ⁻ ← Δ⁻ \ δ⁺`).
    pub fn push_insert(&mut self, t: Tuple) {
        self.deletions.remove(&t);
        self.insertions.insert(t);
    }

    /// Record a *net-effect* deletion: a pending insertion of the same
    /// tuple is cancelled (`Δ⁺ ← Δ⁺ \ δ⁻`).
    pub fn push_delete(&mut self, t: Tuple) {
        self.insertions.remove(&t);
        self.deletions.insert(t);
    }

    /// Merge a later delta into this one under Algorithm 2's override
    /// semantics: `Δ⁺ ← (Δ⁺ \ δ⁻) ∪ δ⁺` and `Δ⁻ ← (Δ⁻ \ δ⁺) ∪ δ⁻`.
    /// The result is the net effect of applying `self` then `later`.
    pub fn merge(&mut self, later: Delta) {
        for t in &later.deletions {
            self.insertions.remove(t);
        }
        for t in &later.insertions {
            self.deletions.remove(t);
        }
        self.insertions.extend(later.insertions);
        self.deletions.extend(later.deletions);
    }

    /// Drop the parts of the delta that would be no-ops on `rel`:
    /// insertions already present and deletions already absent. The
    /// *effective* normalization the engine's incremental programs,
    /// rollback logic, **and the WAL** rely on: a delete of a tuple
    /// absent from both the relation and the pending insertions is a
    /// no-op and must not survive normalization — a stored no-effect
    /// delete would replay non-idempotently through the WAL (it becomes
    /// *effective* if replayed at a state where the tuple exists).
    /// `push_insert`/`push_delete`/`merge` keep Algorithm 2's raw
    /// override semantics (they cannot see `rel`), so every delta must
    /// pass through this normalization before being applied or logged;
    /// `Engine::derive_delta` and `Engine::apply_delta` both do.
    ///
    /// Contradictory input (a tuple in both sets — impossible via the
    /// `push_*`/`merge` API, constructible via [`Delta::from_sets`]) is
    /// resolved to the no-op, not to whichever side `rel` happens to
    /// favor: fabricating an effective insert (or delete) out of a
    /// contradictory pair would be exactly the non-idempotent replay
    /// hazard this normalization exists to prevent.
    pub fn normalize_against(&mut self, rel: &crate::relation::Relation) {
        let contradictory: Vec<Tuple> = self
            .insertions
            .intersection(&self.deletions)
            .cloned()
            .collect();
        for t in &contradictory {
            self.insertions.remove(t);
            self.deletions.remove(t);
        }
        self.insertions.retain(|t| !rel.contains(t));
        self.deletions.retain(|t| rel.contains(t));
    }
}

/// A delta for each of several relations, keyed by relation name.
///
/// Uses a `BTreeMap` so iteration (and hence application and display) is
/// deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaSet {
    deltas: BTreeMap<String, Delta>,
}

impl DeltaSet {
    /// Empty delta set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Access (creating if needed) the delta of the named relation.
    pub fn entry(&mut self, relation: impl Into<String>) -> &mut Delta {
        self.deltas.entry(relation.into()).or_default()
    }

    /// The delta of the named relation, if any was recorded.
    pub fn get(&self, relation: &str) -> Option<&Delta> {
        self.deltas.get(relation)
    }

    /// Record an insertion.
    pub fn insert(&mut self, relation: impl Into<String>, t: Tuple) {
        self.entry(relation).insertions.insert(t);
    }

    /// Record a deletion.
    pub fn delete(&mut self, relation: impl Into<String>, t: Tuple) {
        self.entry(relation).deletions.insert(t);
    }

    /// Iterate `(relation, delta)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Delta)> {
        self.deltas.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Total number of touched tuples across all relations.
    pub fn len(&self) -> usize {
        self.deltas.values().map(Delta::len).sum()
    }

    /// `true` when no relation has any change recorded.
    pub fn is_empty(&self) -> bool {
        self.deltas.values().all(Delta::is_empty)
    }

    /// Definition 3.1: no relation has a tuple both inserted and deleted.
    pub fn is_non_contradictory(&self) -> bool {
        self.deltas.values().all(Delta::is_non_contradictory)
    }

    /// Merge a later delta set into this one, relation by relation, under
    /// Algorithm 2's override semantics (see [`Delta::merge`]).
    pub fn merge(&mut self, later: DeltaSet) {
        for (name, d) in later.deltas {
            self.entry(name).merge(d);
        }
    }

    /// Apply this delta set to a database: `S ⊕ ΔS`.
    ///
    /// Fails if the delta set is contradictory, references an unknown
    /// relation, or contains a tuple of the wrong arity. Deletions are
    /// applied before insertions per the paper's `(R \ Δ⁻) ∪ Δ⁺`.
    pub fn apply_to(&self, db: &mut Database) -> StoreResult<()> {
        // Validate everything before mutating so failed application does
        // not leave the database half-updated.
        for (name, delta) in &self.deltas {
            if let Some(t) = delta.contradictions().next() {
                return Err(StoreError::ContradictoryDelta {
                    relation: name.clone(),
                    tuple: t.to_string(),
                });
            }
            let rel = db
                .relation(name)
                .ok_or_else(|| StoreError::UnknownRelation(name.clone()))?;
            for t in delta.insertions.iter().chain(delta.deletions.iter()) {
                if t.arity() != rel.arity() {
                    return Err(StoreError::ArityMismatch {
                        relation: name.clone(),
                        expected: rel.arity(),
                        found: t.arity(),
                    });
                }
            }
        }
        for (name, delta) in &self.deltas {
            let rel = db.relation_mut(name).expect("validated above");
            for t in &delta.deletions {
                rel.remove(t);
            }
            for t in &delta.insertions {
                rel.insert(t.clone())?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Relation;
    use crate::tuple;

    fn db() -> Database {
        let mut db = Database::new();
        db.add_relation(Relation::with_tuples("r1", 1, vec![tuple![1], tuple![2]]).unwrap())
            .unwrap();
        db.add_relation(Relation::with_tuples("r2", 1, vec![tuple![3]]).unwrap())
            .unwrap();
        db
    }

    #[test]
    fn paper_example_delta_application() {
        // Example from §3.1: R = {⟨1,2⟩, ⟨1,3⟩}, ΔR = {-r(1,2), +r(1,1)}
        // gives R' = {⟨1,1⟩, ⟨1,3⟩}.
        let mut db = Database::new();
        db.add_relation(Relation::with_tuples("r", 2, vec![tuple![1, 2], tuple![1, 3]]).unwrap())
            .unwrap();
        let mut ds = DeltaSet::new();
        ds.delete("r", tuple![1, 2]);
        ds.insert("r", tuple![1, 1]);
        ds.apply_to(&mut db).unwrap();
        let r = db.relation("r").unwrap();
        assert!(r.contains(&tuple![1, 1]));
        assert!(r.contains(&tuple![1, 3]));
        assert!(!r.contains(&tuple![1, 2]));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn contradictory_delta_rejected_without_mutation() {
        let mut database = db();
        let mut ds = DeltaSet::new();
        ds.insert("r1", tuple![5]);
        ds.delete("r1", tuple![5]);
        assert!(!ds.is_non_contradictory());
        let err = ds.apply_to(&mut database).unwrap_err();
        assert!(matches!(err, StoreError::ContradictoryDelta { .. }));
        assert_eq!(database.relation("r1").unwrap().len(), 2, "unchanged");
    }

    #[test]
    fn unknown_relation_rejected() {
        let mut database = db();
        let mut ds = DeltaSet::new();
        ds.insert("nope", tuple![1]);
        assert!(matches!(
            ds.apply_to(&mut database),
            Err(StoreError::UnknownRelation(_))
        ));
    }

    #[test]
    fn noop_detection() {
        let database = db();
        let mut d = Delta::new();
        d.insertions.insert(tuple![1]); // already present
        d.deletions.insert(tuple![9]); // already absent
        assert!(d.is_noop_on(database.relation("r1").unwrap()));
        d.deletions.insert(tuple![2]); // actually present -> not a noop
        assert!(!d.is_noop_on(database.relation("r1").unwrap()));
    }

    #[test]
    fn delete_then_insert_same_relation_different_tuples() {
        let mut database = db();
        let mut ds = DeltaSet::new();
        ds.delete("r2", tuple![3]);
        ds.insert("r2", tuple![4]);
        ds.apply_to(&mut database).unwrap();
        let r2 = database.relation("r2").unwrap();
        assert!(r2.contains(&tuple![4]) && !r2.contains(&tuple![3]));
    }

    #[test]
    fn insert_then_delete_cancels() {
        let mut d = Delta::new();
        d.push_insert(tuple![7]);
        d.push_delete(tuple![7]);
        assert!(d.insertions.is_empty());
        assert_eq!(d.deletions.len(), 1, "net effect is a plain deletion");
        assert!(d.is_non_contradictory());
    }

    #[test]
    fn delete_then_insert_cancels() {
        let mut d = Delta::new();
        d.push_delete(tuple![7]);
        d.push_insert(tuple![7]);
        assert!(d.deletions.is_empty());
        assert_eq!(d.insertions.len(), 1, "net effect is a plain insertion");
    }

    #[test]
    fn merge_applies_override_semantics() {
        // first: +{1}, -{2};  later: -{1}, +{2}, +{3}
        let mut first = Delta::new();
        first.push_insert(tuple![1]);
        first.push_delete(tuple![2]);
        let mut later = Delta::new();
        later.push_delete(tuple![1]);
        later.push_insert(tuple![2]);
        later.push_insert(tuple![3]);
        first.merge(later);
        assert!(!first.insertions.contains(&tuple![1]), "overridden");
        assert!(first.deletions.contains(&tuple![1]));
        assert!(first.insertions.contains(&tuple![2]), "overridden back");
        assert!(!first.deletions.contains(&tuple![2]));
        assert!(first.insertions.contains(&tuple![3]));
        assert!(first.is_non_contradictory());
    }

    #[test]
    fn merge_of_net_deltas_stays_non_contradictory() {
        // Any sequence of push_insert/push_delete/merge keeps Δ⁺ ∩ Δ⁻ = ∅.
        let mut acc = Delta::new();
        for i in 0..50i64 {
            let mut step = Delta::new();
            if i % 2 == 0 {
                step.push_insert(tuple![i % 7]);
            } else {
                step.push_delete(tuple![i % 7]);
            }
            step.push_delete(tuple![(i + 1) % 5]);
            acc.merge(step);
            assert!(acc.is_non_contradictory(), "after step {i}");
        }
    }

    #[test]
    fn normalize_against_drops_noops() {
        let database = db();
        let mut d = Delta::new();
        d.push_insert(tuple![1]); // already in r1
        d.push_insert(tuple![9]); // genuinely new
        d.push_delete(tuple![2]); // actually present
        d.push_delete(tuple![42]); // already absent
        d.normalize_against(database.relation("r1").unwrap());
        assert_eq!(d.insertions.len(), 1);
        assert!(d.insertions.contains(&tuple![9]));
        assert_eq!(d.deletions.len(), 1);
        assert!(d.deletions.contains(&tuple![2]));
    }

    #[test]
    fn normalize_drops_delete_absent_from_relation_and_pending_inserts() {
        // ISSUE 5 satellite: a delete of a tuple absent from both the
        // relation and the delta's own pending insertions is a no-op —
        // if it stayed stored, a WAL replay of this delta at a later
        // state (where tuple 42 might exist) would delete it, breaking
        // replay idempotency.
        let database = db(); // r1 = {1, 2}
        let mut d = Delta::new();
        d.push_insert(tuple![9]); // genuine pending insert
        d.push_delete(tuple![42]); // absent from r1, not a pending insert
        d.normalize_against(database.relation("r1").unwrap());
        assert!(
            d.deletions.is_empty(),
            "no-effect delete must not be stored: {d:?}"
        );
        assert_eq!(d.insertions.len(), 1);
        assert!(d.insertions.contains(&tuple![9]));
    }

    #[test]
    fn normalize_resolves_contradictory_pairs_to_noops() {
        // A contradictory pair (constructible via from_sets, never via
        // push_*) must normalize to nothing — not to whichever side the
        // relation state happens to favor, which would fabricate an
        // effective insert or delete out of an ill-defined input.
        let database = db(); // r1 = {1, 2}
        for t in [tuple![1], tuple![77]] {
            // present / absent
            let mut d = Delta::from_sets(
                HashSet::from([t.clone(), tuple![9]]),
                HashSet::from([t.clone()]),
            );
            assert!(!d.is_non_contradictory());
            d.normalize_against(database.relation("r1").unwrap());
            assert!(d.is_non_contradictory());
            assert!(!d.insertions.contains(&t), "{t} fabricated an insert");
            assert!(!d.deletions.contains(&t), "{t} fabricated a delete");
            assert!(d.insertions.contains(&tuple![9]), "bystander survives");
        }
    }

    #[test]
    fn normalized_deltas_replay_idempotently() {
        // The WAL contract end to end at the store level: applying a
        // normalized delta, then re-normalizing + re-applying the same
        // delta against the updated relation, changes nothing.
        let mut database = db(); // r1 = {1, 2}
        let mut d = Delta::new();
        d.push_insert(tuple![9]);
        d.push_delete(tuple![2]);
        d.push_delete(tuple![42]); // no-effect delete
        d.normalize_against(database.relation("r1").unwrap());
        let mut ds = DeltaSet::new();
        for t in &d.insertions {
            ds.insert("r1", t.clone());
        }
        for t in &d.deletions {
            ds.delete("r1", t.clone());
        }
        ds.apply_to(&mut database).unwrap();
        let after_first: Vec<_> = {
            let mut v: Vec<_> = database.relation("r1").unwrap().iter().cloned().collect();
            v.sort();
            v
        };
        // Replay: re-normalize against the new state (what the engine's
        // apply path does) and apply again.
        let mut replay = d.clone();
        replay.normalize_against(database.relation("r1").unwrap());
        assert!(replay.is_empty(), "replay of an applied delta is a no-op");
        let after_second: Vec<_> = {
            let mut v: Vec<_> = database.relation("r1").unwrap().iter().cloned().collect();
            v.sort();
            v
        };
        assert_eq!(after_first, after_second);
    }

    #[test]
    fn delta_set_merge_is_per_relation() {
        let mut a = DeltaSet::new();
        a.insert("r1", tuple![1]);
        a.delete("r2", tuple![3]);
        let mut b = DeltaSet::new();
        b.delete("r1", tuple![1]); // overrides a's insertion
        b.insert("r2", tuple![4]);
        a.merge(b);
        assert!(a.get("r1").unwrap().deletions.contains(&tuple![1]));
        assert!(a.get("r1").unwrap().insertions.is_empty());
        assert!(a.get("r2").unwrap().deletions.contains(&tuple![3]));
        assert!(a.get("r2").unwrap().insertions.contains(&tuple![4]));
    }

    #[test]
    fn empty_delta_set_is_noop() {
        let mut database = db();
        let before: Vec<usize> = ["r1", "r2"]
            .iter()
            .map(|n| database.relation(n).unwrap().len())
            .collect();
        DeltaSet::new().apply_to(&mut database).unwrap();
        let after: Vec<usize> = ["r1", "r2"]
            .iter()
            .map(|n| database.relation(n).unwrap().len())
            .collect();
        assert_eq!(before, after);
    }
}
