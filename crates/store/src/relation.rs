//! Relations: finite sets of tuples with maintained secondary indexes.
//!
//! The paper's compiled strategies run inside PostgreSQL, whose planner uses
//! B-tree indexes to make the *incrementalized* trigger programs touch only
//! `O(|ΔV|)` tuples. Our substitute keeps hash indexes on arbitrary column
//! subsets; once registered, an index is maintained incrementally under
//! inserts and deletes, so repeated index probes after warm-up are `O(1)`
//! just as in the paper's setting.
//!
//! ## Versioned tuple sets (left-right double buffering)
//!
//! The primary tuple set lives behind an [`Arc`]; a [`Relation`] can
//! publish an immutable [`RelationVersion`] of its current contents via
//! [`Relation::version`]. The naive copy-on-write scheme — share the
//! live `Arc` with every version and let [`Arc::make_mut`] clone on the
//! next mutation — makes *writers* pay `O(|relation|)` after **every**
//! publication, because the newest published version always pins the
//! live set. Under per-commit publication (the service's MVCC read
//! path) that clone tax serializes the write path on relation size.
//!
//! Instead, the first `version()` call switches the relation into
//! **left-right** mode: two shadow buffers alternate as the published
//! image, kept in sync by replaying a log of the relation's effective
//! mutations. Each publication refreshes the buffer *not* published
//! last time — by then the snapshot cell has dropped its reference, so
//! the replay mutates in place and costs `O(delta)`, not `O(n)`. Only a
//! reader still *holding* that older version forces a one-off clone:
//! writers pay proportional to what changed, and the full-copy cost
//! lands exactly when (and only when) a snapshot is actually pinned
//! across publications. Before the first `version()` call no log is
//! kept and mutations run exactly as they always have.
//!
//! Published versions never observe in-progress mutations. Secondary
//! indexes are *not* part of a version — they are an evaluator-side
//! acceleration structure and stay owned by the live relation.
//!
//! ## Index kinds
//!
//! Two kinds of secondary index are maintained, both incrementally:
//!
//! - **Hash indexes** over arbitrary column subsets
//!   ([`Relation::ensure_index`] / [`Relation::probe`]) serve equality
//!   probes in `O(1)`.
//! - **Ordered indexes** over single columns
//!   ([`Relation::ensure_ordered_index`] / [`Relation::range_probe`]) —
//!   a `BTreeMap<Value, set>` per column — serve *range* probes
//!   (`col < k`, `col >= k`, …) in `O(log n + matches)`. They are the
//!   substitute for the B-tree indexes the paper's PostgreSQL setup
//!   leans on for comparison guards. `Value`'s total order is sort-major
//!   (Int < Float < Str < Bool), so a range probe is only answered when
//!   the indexed column is homogeneous in the bound's sort — mixed-type
//!   columns make [`Relation::range_probe`] return `None` and the caller
//!   falls back to a scan-and-filter, preserving comparison semantics
//!   (cross-sort comparisons are runtime errors upstream).
//!
//! Probes count **hits** (served by an index) and **misses** (fell back
//! to a linear scan); see [`Relation::index_hits`]. The counters make
//! planner/registration drift — a plan probing a column nobody indexed —
//! observable instead of a silent O(n) cliff.

use crate::error::{StoreError, StoreResult};
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A relation instance: a named finite set of same-arity tuples.
#[derive(Debug, Clone, Default)]
pub struct Relation {
    name: String,
    arity: usize,
    /// Primary tuple set. Before the first [`Relation::version`] call it
    /// is unshared and [`Arc::make_mut`] mutates in place; afterwards the
    /// left-right buffers in `versions` carry the published images, so
    /// the live set stays unshared again after at most one divergence.
    tuples: Arc<FxHashSet<Tuple>>,
    /// Secondary hash indexes keyed by column subset. Maintained under all
    /// mutations. `Vec<usize>` keys are sorted, deduplicated column lists.
    indexes: FxHashMap<Vec<usize>, FxHashMap<Vec<Value>, FxHashSet<Tuple>>>,
    /// Ordered (B-tree) indexes keyed by single column, for range probes.
    /// Maintained under all mutations, exactly like the hash indexes.
    ordered: FxHashMap<usize, BTreeMap<Value, FxHashSet<Tuple>>>,
    /// Probe hit/miss counters (shared so `&self` probes can count).
    stats: Arc<IndexCounters>,
    /// Left-right publication state: `None` until the first
    /// [`Relation::version`] call (no logging cost for never-versioned
    /// relations, e.g. evaluator delta overlays). Boxed — it is two
    /// pointers of payload on the always-allocated path otherwise.
    versions: Option<Box<VersionBuffers>>,
}

/// Probe accounting: how often this relation's probes were served by an
/// index versus falling back to a linear scan. Interior-mutable
/// (`&self` probes count) and `Arc`-shared so clones of a relation keep
/// feeding the same counters. Relaxed ordering: the counters are
/// diagnostics, not synchronization.
#[derive(Debug, Default)]
struct IndexCounters {
    hits: AtomicU64,
    misses: AtomicU64,
}

/// One effective mutation, replayed into a shadow buffer at publication
/// time. Only *effective* ops are logged (an insert that was already
/// present, or a remove that missed, changes nothing), so replaying a
/// buffer from the same starting state reproduces the live set exactly.
#[derive(Debug, Clone)]
enum Op {
    Insert(Tuple),
    Remove(Tuple),
}

/// The left-right publication state of a versioned relation: two shadow
/// buffers that alternate as the published image, and the op log that
/// brings the stale one up to date at each publication.
///
/// Invariant: `bufs[i]` holds exactly the live set's contents as of
/// absolute op index `applied[i]`, and `log` holds every effective op
/// from `base` onward (`base <= min(applied)`).
#[derive(Debug, Clone)]
struct VersionBuffers {
    bufs: [Arc<FxHashSet<Tuple>>; 2],
    /// Absolute op index each buffer is synced to.
    applied: [u64; 2],
    /// Absolute op index of `log[0]`.
    base: u64,
    /// Buffer the next publication refreshes (the one published the
    /// time *before* last, whose snapshot-cell reference is gone).
    next: usize,
    log: Vec<Op>,
}

impl VersionBuffers {
    fn new(live: &Arc<FxHashSet<Tuple>>) -> VersionBuffers {
        // Both buffers start as O(1) shares of the live set; they
        // diverge lazily on their first post-publication refresh.
        VersionBuffers {
            bufs: [Arc::clone(live), Arc::clone(live)],
            applied: [0, 0],
            base: 0,
            next: 0,
            log: Vec::new(),
        }
    }

    /// Record one effective mutation.
    fn push(&mut self, op: Op) {
        self.log.push(op);
    }

    /// Bring a shadow buffer up to date and return it as the new
    /// published image. `O(delta)` since that buffer's last refresh —
    /// `O(n)` only if a reader still holds the version published from
    /// it two publications ago (then `Arc::make_mut` clones once).
    fn sync(&mut self) -> Arc<FxHashSet<Tuple>> {
        let end = self.base + self.log.len() as u64;
        let prev = self.next ^ 1;
        if self.applied[prev] == end {
            // Nothing changed since the last publication: re-share it
            // and leave the buffers as they are.
            return Arc::clone(&self.bufs[prev]);
        }
        let i = self.next;
        let set = Arc::make_mut(&mut self.bufs[i]);
        for op in &self.log[(self.applied[i] - self.base) as usize..] {
            match op {
                Op::Insert(t) => {
                    set.insert(t.clone());
                }
                Op::Remove(t) => {
                    set.remove(t);
                }
            }
        }
        self.applied[i] = end;
        self.next = prev;
        // Drop the log prefix both buffers have replayed; in steady
        // state the log holds at most two publications' worth of ops.
        let done = (self.applied[0].min(self.applied[1]) - self.base) as usize;
        if done > 0 {
            self.log.drain(..done);
            self.base += done as u64;
        }
        Arc::clone(&self.bufs[i])
    }
}

/// An immutable, cheaply cloneable version of a relation's contents at a
/// publication point.
///
/// Produced by [`Relation::version`] in `O(delta)` (left-right
/// publication, see the module docs). Versions are what MVCC snapshot
/// readers hold: they never change after creation, carry no secondary
/// indexes, and stay valid for as long as the reader keeps them —
/// independent of any later writes to the source relation.
#[derive(Debug, Clone)]
pub struct RelationVersion {
    name: String,
    arity: usize,
    tuples: Arc<FxHashSet<Tuple>>,
    /// Cumulative index probe hits of the source relation, as of
    /// publication (see [`Relation::index_hits`]).
    index_hits: u64,
    /// Cumulative scan-fallback probe misses, as of publication.
    index_misses: u64,
}

impl RelationVersion {
    /// Relation (predicate) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Arity of every tuple in the version.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` when the version holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Set membership test (full-tuple lookup, `O(1)`).
    pub fn contains(&self, t: &Tuple) -> bool {
        self.tuples.contains(t)
    }

    /// Iterate over all tuples (arbitrary order — set semantics).
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// The shared tuple set.
    pub fn tuples(&self) -> &FxHashSet<Tuple> {
        &self.tuples
    }

    /// Index probe hits of the source relation as of publication.
    pub fn index_hits(&self) -> u64 {
        self.index_hits
    }

    /// Scan-fallback probe misses of the source relation as of
    /// publication. A nonzero value flags planner/registration drift: a
    /// compiled plan probed columns nobody built an index for.
    pub fn index_misses(&self) -> u64 {
        self.index_misses
    }

    /// Rebuild a live [`Relation`] sharing this version's tuple set (no
    /// indexes, no tuple copying — the checkpoint/restore path uses this).
    pub fn to_relation(&self) -> Relation {
        Relation {
            name: self.name.clone(),
            arity: self.arity,
            tuples: Arc::clone(&self.tuples),
            indexes: FxHashMap::default(),
            ordered: FxHashMap::default(),
            stats: Arc::default(),
            versions: None,
        }
    }
}

impl Relation {
    /// Create an empty relation.
    pub fn new(name: impl Into<String>, arity: usize) -> Self {
        Relation {
            name: name.into(),
            arity,
            tuples: Arc::new(FxHashSet::default()),
            indexes: FxHashMap::default(),
            ordered: FxHashMap::default(),
            stats: Arc::default(),
            versions: None,
        }
    }

    /// Create a relation pre-populated with tuples.
    ///
    /// Fails with [`StoreError::ArityMismatch`] if any tuple has the wrong
    /// arity.
    pub fn with_tuples(
        name: impl Into<String>,
        arity: usize,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> StoreResult<Self> {
        let mut rel = Relation::new(name, arity);
        let tuples = tuples.into_iter();
        // Pre-size the primary set from the iterator's lower bound so bulk
        // loads (view materialization, benchmark datagen) don't rehash
        // log(n) times on the way up.
        Arc::make_mut(&mut rel.tuples).reserve(tuples.size_hint().0);
        for t in tuples {
            rel.insert(t)?;
        }
        Ok(rel)
    }

    /// Build a relation directly from an owned tuple set.
    ///
    /// The set is adopted as-is — no per-tuple re-hashing — after a linear
    /// arity check. This is the fast path for turning an evaluator result
    /// set into a relation.
    pub fn from_set(
        name: impl Into<String>,
        arity: usize,
        tuples: FxHashSet<Tuple>,
    ) -> StoreResult<Self> {
        let name = name.into();
        if let Some(t) = tuples.iter().find(|t| t.arity() != arity) {
            return Err(StoreError::ArityMismatch {
                relation: name,
                expected: arity,
                found: t.arity(),
            });
        }
        Ok(Relation {
            name,
            arity,
            tuples: Arc::new(tuples),
            indexes: FxHashMap::default(),
            ordered: FxHashMap::default(),
            stats: Arc::default(),
            versions: None,
        })
    }

    /// Consume the relation, giving it a new name (tuples and indexes are
    /// kept as-is).
    pub fn renamed(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Relation (predicate) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Arity of every tuple in the relation.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` when the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Set membership test (full-tuple lookup, `O(1)`).
    pub fn contains(&self, t: &Tuple) -> bool {
        self.tuples.contains(t)
    }

    /// Membership test by field slice — the evaluator's fully-bound
    /// existence checks use this to avoid allocating a `Tuple` per probe.
    pub fn contains_row(&self, row: &[Value]) -> bool {
        self.tuples.contains(row)
    }

    /// Iterate over all tuples (arbitrary order — set semantics).
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// Insert a tuple; `Ok(true)` if it was newly added.
    pub fn insert(&mut self, t: Tuple) -> StoreResult<bool> {
        if t.arity() != self.arity {
            return Err(StoreError::ArityMismatch {
                relation: self.name.clone(),
                expected: self.arity,
                found: t.arity(),
            });
        }
        // Fast path: with no registered indexes (bulk loads, overlay delta
        // relations) a single hash-set insert both tests membership and
        // stores the tuple — no re-projection, no second lookup.
        if self.indexes.is_empty() && self.ordered.is_empty() {
            return Ok(match &mut self.versions {
                None => Arc::make_mut(&mut self.tuples).insert(t),
                Some(vb) => {
                    let added = Arc::make_mut(&mut self.tuples).insert(t.clone());
                    if added {
                        vb.push(Op::Insert(t));
                    }
                    added
                }
            });
        }
        if self.tuples.contains(&t) {
            return Ok(false);
        }
        for (cols, index) in self.indexes.iter_mut() {
            index.entry(t.project(cols)).or_default().insert(t.clone());
        }
        for (&col, tree) in self.ordered.iter_mut() {
            tree.entry(t[col]).or_default().insert(t.clone());
        }
        if let Some(vb) = &mut self.versions {
            vb.push(Op::Insert(t.clone()));
        }
        Arc::make_mut(&mut self.tuples).insert(t);
        Ok(true)
    }

    /// Remove a tuple; `true` if it was present.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        // Membership test first so a miss never forces a COW clone.
        if !self.tuples.contains(t) {
            return false;
        }
        Arc::make_mut(&mut self.tuples).remove(t);
        if let Some(vb) = &mut self.versions {
            vb.push(Op::Remove(t.clone()));
        }
        for (cols, index) in self.indexes.iter_mut() {
            let key = t.project(cols);
            if let Some(bucket) = index.get_mut(&key) {
                bucket.remove(t);
                if bucket.is_empty() {
                    index.remove(&key);
                }
            }
        }
        for (&col, tree) in self.ordered.iter_mut() {
            let key = t[col];
            if let Some(bucket) = tree.get_mut(&key) {
                bucket.remove(t);
                if bucket.is_empty() {
                    tree.remove(&key);
                }
            }
        }
        true
    }

    /// Register (and build, if absent) an index on the given columns.
    ///
    /// Columns are normalized to sorted-unique order; an empty or full-arity
    /// column list is accepted but pointless (full-tuple lookups already use
    /// the primary hash set).
    pub fn ensure_index(&mut self, cols: &[usize]) -> StoreResult<()> {
        let key = normalize_cols(cols);
        if key.iter().any(|&c| c >= self.arity) {
            return Err(StoreError::BadIndexColumns {
                relation: self.name.clone(),
                arity: self.arity,
            });
        }
        if self.indexes.contains_key(&key) {
            return Ok(());
        }
        let mut index: FxHashMap<Vec<Value>, FxHashSet<Tuple>> = FxHashMap::default();
        for t in self.tuples.iter() {
            index.entry(t.project(&key)).or_default().insert(t.clone());
        }
        self.indexes.insert(key, index);
        Ok(())
    }

    /// `true` if an index over exactly these columns is registered.
    pub fn has_index(&self, cols: &[usize]) -> bool {
        self.indexes.contains_key(&normalize_cols(cols))
    }

    /// Probe an index: all tuples whose projection on `cols` equals `key`.
    ///
    /// `cols` and `key` must be parallel (same length, pre-normalization);
    /// the caller is expected to have called [`Relation::ensure_index`]
    /// first — probing a missing index falls back to a scan so results are
    /// always correct, just slower.
    pub fn probe<'a>(
        &'a self,
        cols: &[usize],
        key: &[Value],
    ) -> Box<dyn Iterator<Item = &'a Tuple> + 'a> {
        debug_assert_eq!(cols.len(), key.len());
        let (norm_cols, norm_key) = normalize_probe(cols, key);
        if let Some(index) = self.indexes.get(&norm_cols) {
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
            match index.get(&norm_key) {
                Some(bucket) => Box::new(bucket.iter()),
                None => Box::new(std::iter::empty()),
            }
        } else {
            // Correct-but-slow fallback: linear scan. Counted as a miss so
            // the drift (a plan probing columns nobody indexed) shows up
            // in `stats` instead of hiding as a latency cliff.
            self.stats.misses.fetch_add(1, Ordering::Relaxed);
            let cols: Vec<usize> = cols.to_vec();
            let key: Vec<Value> = key.to_vec();
            Box::new(
                self.tuples
                    .iter()
                    .filter(move |t| cols.iter().zip(&key).all(|(&c, v)| &t[c] == v)),
            )
        }
    }

    /// Register (and build, if absent) an ordered index on one column.
    ///
    /// The index is a `BTreeMap` from column value to the tuples holding
    /// it, maintained incrementally under inserts and deletes exactly
    /// like the hash indexes. It serves [`Relation::range_probe`].
    pub fn ensure_ordered_index(&mut self, col: usize) -> StoreResult<()> {
        if col >= self.arity {
            return Err(StoreError::BadIndexColumns {
                relation: self.name.clone(),
                arity: self.arity,
            });
        }
        if self.ordered.contains_key(&col) {
            return Ok(());
        }
        let mut tree: BTreeMap<Value, FxHashSet<Tuple>> = BTreeMap::new();
        for t in self.tuples.iter() {
            tree.entry(t[col]).or_default().insert(t.clone());
        }
        self.ordered.insert(col, tree);
        Ok(())
    }

    /// `true` if an ordered index over exactly this column is registered.
    pub fn has_ordered_index(&self, col: usize) -> bool {
        self.ordered.contains_key(&col)
    }

    /// Range-probe an ordered index: all tuples whose value in `col`
    /// falls within `(lo, hi)`.
    ///
    /// Returns `None` — and counts a probe miss — when the probe cannot
    /// be answered from an index: no ordered index on `col`, or the
    /// indexed column is not homogeneous in the bounds' sort. `Value`'s
    /// total order is sort-major, so a range over a mixed-type column
    /// would silently skip tuples whose comparison against the bound is
    /// a *sort error* upstream; the caller must fall back to
    /// scan-and-filter to preserve those semantics. At least one bound
    /// must be finite (both-unbounded callers should just scan).
    ///
    /// An empty interval (`lo > hi`, or touching exclusive bounds) yields
    /// an empty iterator.
    pub fn range_probe(
        &self,
        col: usize,
        lo: Bound<Value>,
        hi: Bound<Value>,
    ) -> Option<Box<dyn Iterator<Item = &Tuple> + '_>> {
        let Some(tree) = self.ordered.get(&col) else {
            self.stats.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        let sort = match (&lo, &hi) {
            (Bound::Included(v) | Bound::Excluded(v), _)
            | (_, Bound::Included(v) | Bound::Excluded(v)) => v.sort(),
            (Bound::Unbounded, Bound::Unbounded) => {
                debug_assert!(false, "range_probe needs at least one finite bound");
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        // Sort-homogeneity check in O(log n): keys are sort-major ordered,
        // so first and last key sharing the bound's sort means every key
        // does. (An empty index is trivially homogeneous — no tuples, no
        // skipped comparisons.)
        let homogeneous = match (tree.first_key_value(), tree.last_key_value()) {
            (Some((first, _)), Some((last, _))) => first.sort() == sort && last.sort() == sort,
            _ => true,
        };
        let same_sort_bounds = |b: &Bound<Value>| match b {
            Bound::Included(v) | Bound::Excluded(v) => v.sort() == sort,
            Bound::Unbounded => true,
        };
        if !homogeneous || !same_sort_bounds(&lo) || !same_sort_bounds(&hi) {
            self.stats.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        self.stats.hits.fetch_add(1, Ordering::Relaxed);
        // `BTreeMap::range` panics on inverted or empty exclusive ranges;
        // detect them first (the guards may genuinely be contradictory,
        // e.g. `X > 9, X < 3` — the right answer is "no tuples").
        let empty = match (&lo, &hi) {
            (Bound::Included(a), Bound::Included(b)) => a > b,
            (Bound::Included(a), Bound::Excluded(b))
            | (Bound::Excluded(a), Bound::Included(b))
            | (Bound::Excluded(a), Bound::Excluded(b)) => a >= b,
            _ => false,
        };
        if empty {
            return Some(Box::new(std::iter::empty()));
        }
        Some(Box::new(
            tree.range((lo, hi)).flat_map(|(_, bucket)| bucket.iter()),
        ))
    }

    /// Number of distinct keys in an existing index over `cols` (hash
    /// first, then single-column ordered); `None` when no such index
    /// exists. The planner's selectivity estimate divides relation size
    /// by this.
    pub fn distinct_keys(&self, cols: &[usize]) -> Option<usize> {
        let key = normalize_cols(cols);
        if let Some(index) = self.indexes.get(&key) {
            return Some(index.len());
        }
        if let [col] = key[..] {
            return self.ordered.get(&col).map(BTreeMap::len);
        }
        None
    }

    /// Cumulative probes served by an index (hash or ordered).
    pub fn index_hits(&self) -> u64 {
        self.stats.hits.load(Ordering::Relaxed)
    }

    /// Cumulative probes that fell back to a linear scan (missing index,
    /// or an ordered probe over a mixed-type column).
    pub fn index_misses(&self) -> u64 {
        self.stats.misses.load(Ordering::Relaxed)
    }

    /// Remove all tuples (indexes stay registered but become empty).
    pub fn clear(&mut self) {
        // Structural wipe: cheaper to restart the left-right protocol
        // (outstanding versions keep their own sets; the next
        // `version()` re-initializes from the emptied live set) than to
        // replay a per-tuple log.
        self.versions = None;
        if Arc::strong_count(&self.tuples) == 1 {
            Arc::make_mut(&mut self.tuples).clear();
        } else {
            // A published version still shares the set: detach instead of
            // cloning tuples we are about to discard.
            self.tuples = Arc::new(FxHashSet::default());
        }
        for index in self.indexes.values_mut() {
            index.clear();
        }
        for tree in self.ordered.values_mut() {
            tree.clear();
        }
    }

    /// Snapshot of the tuple set.
    pub fn tuples(&self) -> &FxHashSet<Tuple> {
        &self.tuples
    }

    /// Publish an immutable version of the current contents.
    ///
    /// The first call switches the relation into left-right mode (see
    /// the module docs) and shares the live set in `O(1)`. Each later
    /// call costs `O(delta)` — the effective mutations since the
    /// *previous* publication are replayed into the alternate shadow
    /// buffer — rising to one `O(n)` clone only when a reader still
    /// holds the version published from that buffer. With no mutations
    /// since the last call, the previous version is re-shared in
    /// `O(1)`.
    pub fn version(&mut self) -> RelationVersion {
        let tuples = match &mut self.versions {
            Some(vb) => vb.sync(),
            None => {
                self.versions = Some(Box::new(VersionBuffers::new(&self.tuples)));
                Arc::clone(&self.tuples)
            }
        };
        RelationVersion {
            name: self.name.clone(),
            arity: self.arity,
            tuples,
            index_hits: self.index_hits(),
            index_misses: self.index_misses(),
        }
    }

    /// Consume the relation, yielding its tuples (indexes dropped). The
    /// snapshot-restore path uses this to move decoded contents into a
    /// live relation without re-cloning every tuple (unless a published
    /// version still shares the set, in which case it is cloned once).
    pub fn into_tuples(mut self) -> impl Iterator<Item = Tuple> {
        // Drop the shadow buffers first: right after a `version()` call
        // they may still share the live `Arc`, which would force the
        // unwrap below into a clone.
        self.versions = None;
        Arc::try_unwrap(self.tuples)
            .unwrap_or_else(|shared| (*shared).clone())
            .into_iter()
    }

    /// Replace the entire contents of the relation (indexes are rebuilt).
    pub fn replace_all(&mut self, tuples: impl IntoIterator<Item = Tuple>) -> StoreResult<()> {
        // Structural wipe — same reasoning as `clear`: restart the
        // left-right protocol instead of logging every tuple.
        self.versions = None;
        let cols: Vec<Vec<usize>> = self.indexes.keys().cloned().collect();
        let ordered_cols: Vec<usize> = self.ordered.keys().copied().collect();
        // Build the fresh set aside and swap it in, so a shared (published)
        // old set is neither cloned nor disturbed.
        let mut fresh = FxHashSet::default();
        self.indexes.clear();
        self.ordered.clear();
        for t in tuples {
            if t.arity() != self.arity {
                return Err(StoreError::ArityMismatch {
                    relation: self.name.clone(),
                    expected: self.arity,
                    found: t.arity(),
                });
            }
            fresh.insert(t);
        }
        self.tuples = Arc::new(fresh);
        for c in cols {
            self.ensure_index(&c)?;
        }
        for c in ordered_cols {
            self.ensure_ordered_index(c)?;
        }
        Ok(())
    }
}

impl std::fmt::Display for Relation {
    /// `name{t1, t2, …}` with tuples in sorted order (deterministic).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut sorted: Vec<&Tuple> = self.tuples.iter().collect();
        sorted.sort();
        write!(f, "{}{{", self.name)?;
        for (i, t) in sorted.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}}")
    }
}

/// Sort + dedupe an index column list.
fn normalize_cols(cols: &[usize]) -> Vec<usize> {
    let mut v = cols.to_vec();
    v.sort_unstable();
    v.dedup();
    v
}

/// Normalize a probe's (cols, key) pair in tandem so it matches the
/// normalized index key layout. Duplicated columns keep the first value.
fn normalize_probe(cols: &[usize], key: &[Value]) -> (Vec<usize>, Vec<Value>) {
    let mut pairs: Vec<(usize, Value)> = cols.iter().copied().zip(key.iter().copied()).collect();
    pairs.sort_by_key(|(c, _)| *c);
    pairs.dedup_by_key(|(c, _)| *c);
    (
        pairs.iter().map(|(c, _)| *c).collect(),
        pairs.iter().map(|(_, v)| *v).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn rel() -> Relation {
        Relation::with_tuples("r", 2, vec![tuple![1, "a"], tuple![1, "b"], tuple![2, "a"]]).unwrap()
    }

    #[test]
    fn insert_remove_contains() {
        let mut r = rel();
        assert_eq!(r.len(), 3);
        assert!(r.contains(&tuple![1, "a"]));
        assert!(!r.insert(tuple![1, "a"]).unwrap(), "duplicate insert");
        assert!(r.remove(&tuple![1, "a"]));
        assert!(!r.remove(&tuple![1, "a"]));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn arity_is_enforced() {
        let mut r = rel();
        let err = r.insert(tuple![1]).unwrap_err();
        assert!(matches!(err, StoreError::ArityMismatch { .. }));
    }

    #[test]
    fn index_probe_matches_scan() {
        let mut r = rel();
        r.ensure_index(&[0]).unwrap();
        let one = Value::int(1);
        let mut via_index: Vec<&Tuple> = r.probe(&[0], &[one]).collect();
        via_index.sort();
        assert_eq!(via_index.len(), 2);
        // Fallback scan path (no index on column 1):
        let a = Value::str("a");
        let via_scan: Vec<&Tuple> = r.probe(&[1], &[a]).collect();
        assert_eq!(via_scan.len(), 2);
    }

    #[test]
    fn index_is_maintained_under_mutation() {
        let mut r = rel();
        r.ensure_index(&[0]).unwrap();
        r.insert(tuple![1, "c"]).unwrap();
        r.remove(&tuple![1, "a"]);
        let one = Value::int(1);
        let hits: Vec<&Tuple> = r.probe(&[0], &[one]).collect();
        assert_eq!(hits.len(), 2); // (1,b) and (1,c)
        assert!(hits.iter().all(|t| t[0] == Value::int(1)));
    }

    #[test]
    fn probe_with_unsorted_duplicate_columns() {
        let mut r = rel();
        r.ensure_index(&[0, 1]).unwrap();
        let one = Value::int(1);
        let a = Value::str("a");
        // cols out of order and duplicated must still hit the [0,1] index.
        let hits: Vec<&Tuple> = r.probe(&[1, 0, 0], &[a, one, one]).collect();
        assert_eq!(hits, vec![&tuple![1, "a"]]);
    }

    #[test]
    fn bad_index_columns_rejected() {
        let mut r = rel();
        assert!(matches!(
            r.ensure_index(&[5]),
            Err(StoreError::BadIndexColumns { .. })
        ));
    }

    #[test]
    fn version_is_immutable_under_later_mutation() {
        let mut r = rel();
        let v = r.version();
        assert_eq!(v.len(), 3);
        // Shared set: the first mutation after publication diverges.
        r.insert(tuple![9, "z"]).unwrap();
        r.remove(&tuple![1, "a"]);
        assert_eq!(v.len(), 3, "published version unchanged");
        assert!(v.contains(&tuple![1, "a"]));
        assert!(!v.contains(&tuple![9, "z"]));
        assert_eq!(r.len(), 3);
        assert!(r.contains(&tuple![9, "z"]));
        // A fresh version sees the new contents and shares the live set.
        let v2 = r.version();
        assert!(v2.contains(&tuple![9, "z"]));
        assert!(!v2.contains(&tuple![1, "a"]));
    }

    #[test]
    fn version_survives_clear_and_replace_all() {
        let mut r = rel();
        let v = r.version();
        r.clear();
        assert!(r.is_empty());
        assert_eq!(v.len(), 3, "clear detaches, does not clone-then-clear");
        let v_after_clear = r.version();
        r.replace_all(vec![tuple![7, "q"]]).unwrap();
        assert!(v_after_clear.is_empty());
        assert_eq!(r.len(), 1);
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn to_relation_round_trips_contents() {
        let mut r = rel();
        let back = r.version().to_relation();
        assert_eq!(back.name(), "r");
        assert_eq!(back.arity(), 2);
        assert_eq!(back.tuples(), r.tuples());
    }

    #[test]
    fn steady_state_publication_is_in_place() {
        // Left-right warm-up: after the first two publications have
        // diverged the shadow buffers, an unpinned publication replays
        // the delta in place — same buffer allocation, no O(n) clone —
        // and the live set's allocation never changes again either.
        let mut r = rel();
        let v0 = r.version();
        r.insert(tuple![10, "w"]).unwrap();
        let v1 = r.version();
        let live_ptr = Arc::as_ptr(&r.tuples);
        r.insert(tuple![11, "w"]).unwrap();
        let v2 = r.version();
        drop(v0);
        drop(v1);
        // v1's buffer is now unpinned: the next publication refreshes it
        // in place.
        r.insert(tuple![12, "w"]).unwrap();
        let v1_buf = std::ptr::from_ref(v2.tuples()); // v3 reuses the OTHER buffer
        let v3 = r.version();
        assert_ne!(std::ptr::from_ref(v3.tuples()), v1_buf, "buffers alternate");
        drop(v2);
        r.insert(tuple![13, "w"]).unwrap();
        let reused = std::ptr::from_ref(v3.tuples()) != Arc::as_ptr(&r.tuples);
        assert!(reused, "published buffers are not the live set");
        let v4_expected_buf = v1_buf;
        let v4 = r.version();
        assert_eq!(
            std::ptr::from_ref(v4.tuples()),
            v4_expected_buf,
            "unpinned buffer is refreshed in place, not cloned"
        );
        assert_eq!(Arc::as_ptr(&r.tuples), live_ptr, "live set never re-clones");
        assert_eq!(v4.len(), 7);
        assert!(v4.contains(&tuple![13, "w"]));
        assert_eq!(v3.len(), 6, "older pinned version is frozen");
        assert!(!v3.contains(&tuple![13, "w"]));
    }

    #[test]
    fn pinned_version_forces_one_clone_and_stays_frozen() {
        let mut r = rel();
        let _warm0 = r.version();
        r.insert(tuple![20, "x"]).unwrap();
        let _warm1 = r.version();
        r.remove(&tuple![1, "a"]);
        // Hold this one across two publications: its buffer is due for
        // refresh next, so the refresh must clone rather than mutate it.
        let pinned = r.version();
        let pinned_ptr = std::ptr::from_ref(pinned.tuples());
        r.insert(tuple![21, "x"]).unwrap();
        let _v = r.version();
        r.insert(tuple![22, "x"]).unwrap();
        let after = r.version();
        assert_ne!(
            std::ptr::from_ref(after.tuples()),
            pinned_ptr,
            "refresh of a pinned buffer clones"
        );
        assert_eq!(pinned.len(), 3);
        assert!(!pinned.contains(&tuple![21, "x"]));
        assert!(!pinned.contains(&tuple![22, "x"]));
        assert_eq!(after.len(), 5);
        assert!(after.contains(&tuple![21, "x"]));
        assert!(after.contains(&tuple![22, "x"]));
    }

    #[test]
    fn versions_reflect_indexed_mutations() {
        // The op log sits on both insert paths (indexed and fast): a
        // versioned relation with indexes still publishes exact images.
        let mut r = rel();
        r.ensure_index(&[0]).unwrap();
        let v0 = r.version();
        r.insert(tuple![3, "c"]).unwrap();
        r.insert(tuple![3, "c"]).unwrap(); // no-op: must not be replayed
        r.remove(&tuple![2, "a"]);
        r.remove(&tuple![2, "a"]); // no-op
        let v1 = r.version();
        r.insert(tuple![4, "d"]).unwrap();
        let v2 = r.version();
        assert_eq!(v0.len(), 3);
        assert_eq!(v1.len(), 3);
        assert!(v1.contains(&tuple![3, "c"]));
        assert!(!v1.contains(&tuple![2, "a"]));
        assert_eq!(v2.len(), 4);
        assert!(v2.contains(&tuple![4, "d"]));
        // Index probes on the live relation still work after versioning.
        let hits: Vec<_> = r.probe(&[0], &[Value::from(3)]).collect();
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn quiescent_publication_reshares_previous_version() {
        let mut r = rel();
        let _w0 = r.version();
        r.insert(tuple![30, "y"]).unwrap();
        let v1 = r.version();
        let v2 = r.version(); // no mutations in between
        assert_eq!(
            std::ptr::from_ref(v1.tuples()),
            std::ptr::from_ref(v2.tuples()),
            "quiescent publish is an O(1) re-share"
        );
    }

    #[test]
    fn unshared_mutation_does_not_clone() {
        // With no published version the Arc is unshared and make_mut works
        // in place — pointer identity is preserved across mutations.
        let mut r = rel();
        let before = Arc::as_ptr(&r.tuples);
        r.insert(tuple![5, "e"]).unwrap();
        r.remove(&tuple![5, "e"]);
        assert_eq!(Arc::as_ptr(&r.tuples), before);
    }

    #[test]
    fn replace_all_rebuilds_indexes() {
        let mut r = rel();
        r.ensure_index(&[0]).unwrap();
        r.replace_all(vec![tuple![7, "z"]]).unwrap();
        assert_eq!(r.len(), 1);
        let seven = Value::int(7);
        assert_eq!(r.probe(&[0], &[seven]).count(), 1);
        let one = Value::int(1);
        assert_eq!(r.probe(&[0], &[one]).count(), 0);
    }

    fn ints(ns: &[i64]) -> Relation {
        Relation::with_tuples("n", 2, ns.iter().map(|&i| tuple![i, i * 10])).unwrap()
    }

    #[test]
    fn range_probe_inclusive_and_exclusive_bounds() {
        let mut r = ints(&[1, 2, 3, 4, 5]);
        r.ensure_ordered_index(0).unwrap();
        let vals = |lo: Bound<Value>, hi: Bound<Value>| -> Vec<i64> {
            let mut v: Vec<i64> = r
                .range_probe(0, lo, hi)
                .expect("homogeneous int column")
                .map(|t| match t[0] {
                    Value::Int(i) => i,
                    _ => unreachable!(),
                })
                .collect();
            v.sort_unstable();
            v
        };
        let k = |i: i64| Value::int(i);
        assert_eq!(vals(Bound::Excluded(k(2)), Bound::Unbounded), vec![3, 4, 5]);
        assert_eq!(
            vals(Bound::Included(k(2)), Bound::Unbounded),
            vec![2, 3, 4, 5]
        );
        assert_eq!(vals(Bound::Unbounded, Bound::Excluded(k(3))), vec![1, 2]);
        assert_eq!(
            vals(Bound::Included(k(2)), Bound::Included(k(4))),
            vec![2, 3, 4]
        );
        // Empty and inverted intervals yield nothing (and must not panic).
        assert_eq!(
            vals(Bound::Excluded(k(3)), Bound::Excluded(k(3))),
            Vec::<i64>::new()
        );
        assert_eq!(
            vals(Bound::Included(k(9)), Bound::Included(k(1))),
            Vec::<i64>::new()
        );
    }

    #[test]
    fn range_probe_is_maintained_under_mutation() {
        let mut r = ints(&[1, 5]);
        r.ensure_ordered_index(0).unwrap();
        r.insert(tuple![3, 30]).unwrap();
        r.remove(&tuple![5, 50]);
        let hits: Vec<&Tuple> = r
            .range_probe(0, Bound::Excluded(Value::int(1)), Bound::Unbounded)
            .unwrap()
            .collect();
        assert_eq!(hits, vec![&tuple![3, 30]]);
    }

    #[test]
    fn range_probe_refuses_mixed_sort_columns() {
        let mut r = Relation::with_tuples("m", 1, vec![tuple![1], tuple!["x"]]).unwrap();
        r.ensure_ordered_index(0).unwrap();
        assert!(
            r.range_probe(0, Bound::Excluded(Value::int(0)), Bound::Unbounded)
                .is_none(),
            "mixed-sort column must fall back to filter"
        );
        // Bound sort differing from a homogeneous column also refuses.
        let mut s = ints(&[1, 2]);
        s.ensure_ordered_index(0).unwrap();
        assert!(s
            .range_probe(0, Bound::Excluded(Value::str("a")), Bound::Unbounded)
            .is_none());
    }

    #[test]
    fn range_probe_preserves_string_lexicographic_order() {
        let mut r = Relation::with_tuples(
            "d",
            1,
            vec![
                tuple!["2020-01-15"],
                tuple!["2020-06-01"],
                tuple!["2021-03-09"],
            ],
        )
        .unwrap();
        r.ensure_ordered_index(0).unwrap();
        let hits: Vec<&Tuple> = r
            .range_probe(
                0,
                Bound::Included(Value::str("2020-06-01")),
                Bound::Excluded(Value::str("2021-01-01")),
            )
            .unwrap()
            .collect();
        assert_eq!(hits, vec![&tuple!["2020-06-01"]]);
    }

    #[test]
    fn ordered_index_survives_clear_and_replace_all() {
        let mut r = ints(&[1, 2, 3]);
        r.ensure_ordered_index(0).unwrap();
        r.clear();
        assert!(r.has_ordered_index(0));
        assert_eq!(
            r.range_probe(0, Bound::Unbounded, Bound::Included(Value::int(9)))
                .unwrap()
                .count(),
            0
        );
        r.replace_all(vec![tuple![7, 70], tuple![8, 80]]).unwrap();
        assert_eq!(
            r.range_probe(0, Bound::Excluded(Value::int(7)), Bound::Unbounded)
                .unwrap()
                .count(),
            1
        );
    }

    #[test]
    fn probe_counters_track_hits_and_misses() {
        let mut r = rel();
        assert_eq!((r.index_hits(), r.index_misses()), (0, 0));
        let one = Value::int(1);
        r.probe(&[0], &[one]).count(); // no index yet: scan fallback
        assert_eq!((r.index_hits(), r.index_misses()), (0, 1));
        r.ensure_index(&[0]).unwrap();
        r.probe(&[0], &[one]).count();
        assert_eq!((r.index_hits(), r.index_misses()), (1, 1));
        // Ordered probes count too: a miss without the index, a hit with.
        assert!(r
            .range_probe(1, Bound::Excluded(Value::str("a")), Bound::Unbounded)
            .is_none());
        assert_eq!((r.index_hits(), r.index_misses()), (1, 2));
        r.ensure_ordered_index(1).unwrap();
        r.range_probe(1, Bound::Excluded(Value::str("a")), Bound::Unbounded)
            .unwrap()
            .count();
        assert_eq!((r.index_hits(), r.index_misses()), (2, 2));
        // Versions snapshot the counters at publication time.
        let v = r.version();
        assert_eq!((v.index_hits(), v.index_misses()), (2, 2));
    }

    #[test]
    fn distinct_keys_reports_index_cardinality() {
        let mut r = ints(&[1, 1, 2, 3]); // tuples (1,10),(2,20),(3,30)
        assert_eq!(r.distinct_keys(&[0]), None, "no index, no estimate");
        r.ensure_index(&[0]).unwrap();
        assert_eq!(r.distinct_keys(&[0]), Some(3));
        r.ensure_ordered_index(1).unwrap();
        assert_eq!(r.distinct_keys(&[1]), Some(3), "ordered index counts too");
        assert_eq!(r.distinct_keys(&[0, 1]), None);
    }
}
