//! Relations: finite sets of tuples with maintained secondary indexes.
//!
//! The paper's compiled strategies run inside PostgreSQL, whose planner uses
//! B-tree indexes to make the *incrementalized* trigger programs touch only
//! `O(|ΔV|)` tuples. Our substitute keeps hash indexes on arbitrary column
//! subsets; once registered, an index is maintained incrementally under
//! inserts and deletes, so repeated index probes after warm-up are `O(1)`
//! just as in the paper's setting.

use crate::error::{StoreError, StoreResult};
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::tuple::Tuple;
use crate::value::Value;

/// A relation instance: a named finite set of same-arity tuples.
#[derive(Debug, Clone, Default)]
pub struct Relation {
    name: String,
    arity: usize,
    tuples: FxHashSet<Tuple>,
    /// Secondary hash indexes keyed by column subset. Maintained under all
    /// mutations. `Vec<usize>` keys are sorted, deduplicated column lists.
    indexes: FxHashMap<Vec<usize>, FxHashMap<Vec<Value>, FxHashSet<Tuple>>>,
}

impl Relation {
    /// Create an empty relation.
    pub fn new(name: impl Into<String>, arity: usize) -> Self {
        Relation {
            name: name.into(),
            arity,
            tuples: FxHashSet::default(),
            indexes: FxHashMap::default(),
        }
    }

    /// Create a relation pre-populated with tuples.
    ///
    /// Fails with [`StoreError::ArityMismatch`] if any tuple has the wrong
    /// arity.
    pub fn with_tuples(
        name: impl Into<String>,
        arity: usize,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> StoreResult<Self> {
        let mut rel = Relation::new(name, arity);
        let tuples = tuples.into_iter();
        // Pre-size the primary set from the iterator's lower bound so bulk
        // loads (view materialization, benchmark datagen) don't rehash
        // log(n) times on the way up.
        rel.tuples.reserve(tuples.size_hint().0);
        for t in tuples {
            rel.insert(t)?;
        }
        Ok(rel)
    }

    /// Build a relation directly from an owned tuple set.
    ///
    /// The set is adopted as-is — no per-tuple re-hashing — after a linear
    /// arity check. This is the fast path for turning an evaluator result
    /// set into a relation.
    pub fn from_set(
        name: impl Into<String>,
        arity: usize,
        tuples: FxHashSet<Tuple>,
    ) -> StoreResult<Self> {
        let name = name.into();
        if let Some(t) = tuples.iter().find(|t| t.arity() != arity) {
            return Err(StoreError::ArityMismatch {
                relation: name,
                expected: arity,
                found: t.arity(),
            });
        }
        Ok(Relation {
            name,
            arity,
            tuples,
            indexes: FxHashMap::default(),
        })
    }

    /// Consume the relation, giving it a new name (tuples and indexes are
    /// kept as-is).
    pub fn renamed(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Relation (predicate) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Arity of every tuple in the relation.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` when the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Set membership test (full-tuple lookup, `O(1)`).
    pub fn contains(&self, t: &Tuple) -> bool {
        self.tuples.contains(t)
    }

    /// Membership test by field slice — the evaluator's fully-bound
    /// existence checks use this to avoid allocating a `Tuple` per probe.
    pub fn contains_row(&self, row: &[Value]) -> bool {
        self.tuples.contains(row)
    }

    /// Iterate over all tuples (arbitrary order — set semantics).
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// Insert a tuple; `Ok(true)` if it was newly added.
    pub fn insert(&mut self, t: Tuple) -> StoreResult<bool> {
        if t.arity() != self.arity {
            return Err(StoreError::ArityMismatch {
                relation: self.name.clone(),
                expected: self.arity,
                found: t.arity(),
            });
        }
        // Fast path: with no registered indexes (bulk loads, overlay delta
        // relations) a single hash-set insert both tests membership and
        // stores the tuple — no re-projection, no second lookup.
        if self.indexes.is_empty() {
            return Ok(self.tuples.insert(t));
        }
        if self.tuples.contains(&t) {
            return Ok(false);
        }
        for (cols, index) in self.indexes.iter_mut() {
            index.entry(t.project(cols)).or_default().insert(t.clone());
        }
        self.tuples.insert(t);
        Ok(true)
    }

    /// Remove a tuple; `true` if it was present.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        if !self.tuples.remove(t) {
            return false;
        }
        for (cols, index) in self.indexes.iter_mut() {
            let key = t.project(cols);
            if let Some(bucket) = index.get_mut(&key) {
                bucket.remove(t);
                if bucket.is_empty() {
                    index.remove(&key);
                }
            }
        }
        true
    }

    /// Register (and build, if absent) an index on the given columns.
    ///
    /// Columns are normalized to sorted-unique order; an empty or full-arity
    /// column list is accepted but pointless (full-tuple lookups already use
    /// the primary hash set).
    pub fn ensure_index(&mut self, cols: &[usize]) -> StoreResult<()> {
        let key = normalize_cols(cols);
        if key.iter().any(|&c| c >= self.arity) {
            return Err(StoreError::BadIndexColumns {
                relation: self.name.clone(),
                arity: self.arity,
            });
        }
        if self.indexes.contains_key(&key) {
            return Ok(());
        }
        let mut index: FxHashMap<Vec<Value>, FxHashSet<Tuple>> = FxHashMap::default();
        for t in &self.tuples {
            index.entry(t.project(&key)).or_default().insert(t.clone());
        }
        self.indexes.insert(key, index);
        Ok(())
    }

    /// `true` if an index over exactly these columns is registered.
    pub fn has_index(&self, cols: &[usize]) -> bool {
        self.indexes.contains_key(&normalize_cols(cols))
    }

    /// Probe an index: all tuples whose projection on `cols` equals `key`.
    ///
    /// `cols` and `key` must be parallel (same length, pre-normalization);
    /// the caller is expected to have called [`Relation::ensure_index`]
    /// first — probing a missing index falls back to a scan so results are
    /// always correct, just slower.
    pub fn probe<'a>(
        &'a self,
        cols: &[usize],
        key: &[Value],
    ) -> Box<dyn Iterator<Item = &'a Tuple> + 'a> {
        debug_assert_eq!(cols.len(), key.len());
        let (norm_cols, norm_key) = normalize_probe(cols, key);
        if let Some(index) = self.indexes.get(&norm_cols) {
            match index.get(&norm_key) {
                Some(bucket) => Box::new(bucket.iter()),
                None => Box::new(std::iter::empty()),
            }
        } else {
            // Correct-but-slow fallback: linear scan.
            let cols: Vec<usize> = cols.to_vec();
            let key: Vec<Value> = key.to_vec();
            Box::new(
                self.tuples
                    .iter()
                    .filter(move |t| cols.iter().zip(&key).all(|(&c, v)| &t[c] == v)),
            )
        }
    }

    /// Remove all tuples (indexes stay registered but become empty).
    pub fn clear(&mut self) {
        self.tuples.clear();
        for index in self.indexes.values_mut() {
            index.clear();
        }
    }

    /// Snapshot of the tuple set.
    pub fn tuples(&self) -> &FxHashSet<Tuple> {
        &self.tuples
    }

    /// Consume the relation, yielding its tuples (indexes dropped). The
    /// snapshot-restore path uses this to move decoded contents into a
    /// live relation without re-cloning every tuple.
    pub fn into_tuples(self) -> impl Iterator<Item = Tuple> {
        self.tuples.into_iter()
    }

    /// Replace the entire contents of the relation (indexes are rebuilt).
    pub fn replace_all(&mut self, tuples: impl IntoIterator<Item = Tuple>) -> StoreResult<()> {
        let cols: Vec<Vec<usize>> = self.indexes.keys().cloned().collect();
        self.tuples.clear();
        self.indexes.clear();
        for t in tuples {
            if t.arity() != self.arity {
                return Err(StoreError::ArityMismatch {
                    relation: self.name.clone(),
                    expected: self.arity,
                    found: t.arity(),
                });
            }
            self.tuples.insert(t);
        }
        for c in cols {
            self.ensure_index(&c)?;
        }
        Ok(())
    }
}

impl std::fmt::Display for Relation {
    /// `name{t1, t2, …}` with tuples in sorted order (deterministic).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut sorted: Vec<&Tuple> = self.tuples.iter().collect();
        sorted.sort();
        write!(f, "{}{{", self.name)?;
        for (i, t) in sorted.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}}")
    }
}

/// Sort + dedupe an index column list.
fn normalize_cols(cols: &[usize]) -> Vec<usize> {
    let mut v = cols.to_vec();
    v.sort_unstable();
    v.dedup();
    v
}

/// Normalize a probe's (cols, key) pair in tandem so it matches the
/// normalized index key layout. Duplicated columns keep the first value.
fn normalize_probe(cols: &[usize], key: &[Value]) -> (Vec<usize>, Vec<Value>) {
    let mut pairs: Vec<(usize, Value)> = cols.iter().copied().zip(key.iter().copied()).collect();
    pairs.sort_by_key(|(c, _)| *c);
    pairs.dedup_by_key(|(c, _)| *c);
    (
        pairs.iter().map(|(c, _)| *c).collect(),
        pairs.iter().map(|(_, v)| *v).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn rel() -> Relation {
        Relation::with_tuples("r", 2, vec![tuple![1, "a"], tuple![1, "b"], tuple![2, "a"]]).unwrap()
    }

    #[test]
    fn insert_remove_contains() {
        let mut r = rel();
        assert_eq!(r.len(), 3);
        assert!(r.contains(&tuple![1, "a"]));
        assert!(!r.insert(tuple![1, "a"]).unwrap(), "duplicate insert");
        assert!(r.remove(&tuple![1, "a"]));
        assert!(!r.remove(&tuple![1, "a"]));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn arity_is_enforced() {
        let mut r = rel();
        let err = r.insert(tuple![1]).unwrap_err();
        assert!(matches!(err, StoreError::ArityMismatch { .. }));
    }

    #[test]
    fn index_probe_matches_scan() {
        let mut r = rel();
        r.ensure_index(&[0]).unwrap();
        let one = Value::int(1);
        let mut via_index: Vec<&Tuple> = r.probe(&[0], &[one]).collect();
        via_index.sort();
        assert_eq!(via_index.len(), 2);
        // Fallback scan path (no index on column 1):
        let a = Value::str("a");
        let via_scan: Vec<&Tuple> = r.probe(&[1], &[a]).collect();
        assert_eq!(via_scan.len(), 2);
    }

    #[test]
    fn index_is_maintained_under_mutation() {
        let mut r = rel();
        r.ensure_index(&[0]).unwrap();
        r.insert(tuple![1, "c"]).unwrap();
        r.remove(&tuple![1, "a"]);
        let one = Value::int(1);
        let hits: Vec<&Tuple> = r.probe(&[0], &[one]).collect();
        assert_eq!(hits.len(), 2); // (1,b) and (1,c)
        assert!(hits.iter().all(|t| t[0] == Value::int(1)));
    }

    #[test]
    fn probe_with_unsorted_duplicate_columns() {
        let mut r = rel();
        r.ensure_index(&[0, 1]).unwrap();
        let one = Value::int(1);
        let a = Value::str("a");
        // cols out of order and duplicated must still hit the [0,1] index.
        let hits: Vec<&Tuple> = r.probe(&[1, 0, 0], &[a, one, one]).collect();
        assert_eq!(hits, vec![&tuple![1, "a"]]);
    }

    #[test]
    fn bad_index_columns_rejected() {
        let mut r = rel();
        assert!(matches!(
            r.ensure_index(&[5]),
            Err(StoreError::BadIndexColumns { .. })
        ));
    }

    #[test]
    fn replace_all_rebuilds_indexes() {
        let mut r = rel();
        r.ensure_index(&[0]).unwrap();
        r.replace_all(vec![tuple![7, "z"]]).unwrap();
        assert_eq!(r.len(), 1);
        let seven = Value::int(7);
        assert_eq!(r.probe(&[0], &[seven]).count(), 1);
        let one = Value::int(1);
        assert_eq!(r.probe(&[0], &[one]).count(), 0);
    }
}
