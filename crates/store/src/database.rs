//! A database instance: a collection of named relations.

use crate::error::{StoreError, StoreResult};
use crate::relation::Relation;
use crate::schema::DatabaseSchema;
use std::collections::BTreeMap;

/// A database instance `D` assigning a finite relation to each predicate
/// (paper §2.1). Relation names are unique; iteration order is name order
/// for determinism.
#[derive(Debug, Clone, Default)]
pub struct Database {
    relations: BTreeMap<String, Relation>,
}

impl Database {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create empty relations for every schema entry.
    pub fn from_schema(schema: &DatabaseSchema) -> Self {
        let mut db = Database::new();
        for s in &schema.relations {
            db.relations
                .insert(s.name.clone(), Relation::new(s.name.clone(), s.arity()));
        }
        db
    }

    /// Add a relation; fails if the name is already taken.
    pub fn add_relation(&mut self, rel: Relation) -> StoreResult<()> {
        if self.relations.contains_key(rel.name()) {
            return Err(StoreError::DuplicateRelation(rel.name().to_owned()));
        }
        self.relations.insert(rel.name().to_owned(), rel);
        Ok(())
    }

    /// Add or overwrite a relation.
    pub fn set_relation(&mut self, rel: Relation) {
        self.relations.insert(rel.name().to_owned(), rel);
    }

    /// Remove a relation, returning it if present.
    pub fn remove_relation(&mut self, name: &str) -> Option<Relation> {
        self.relations.remove(name)
    }

    /// Shared access to a relation.
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// Mutable access to a relation.
    pub fn relation_mut(&mut self, name: &str) -> Option<&mut Relation> {
        self.relations.get_mut(name)
    }

    /// `true` if the named relation exists.
    pub fn contains_relation(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// Iterate relations in name order.
    pub fn relations(&self) -> impl Iterator<Item = &Relation> {
        self.relations.values()
    }

    /// Iterate relations mutably, in name order (the MVCC publication
    /// path uses this: `Relation::version` maintains per-relation
    /// publication state).
    pub fn relations_mut(&mut self) -> impl Iterator<Item = &mut Relation> {
        self.relations.values_mut()
    }

    /// Relation names in order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(String::as_str)
    }

    /// Consume the database, yielding its relations in name order (used
    /// to move relations between footprint shards without copying).
    pub fn into_relations(self) -> impl Iterator<Item = Relation> {
        self.relations.into_values()
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// Structural equality of contents (names, arities and tuple sets),
    /// ignoring index registration. Used heavily by round-trip tests:
    /// GetPut says `put(S, get(S)) = S`.
    pub fn same_contents(&self, other: &Database) -> bool {
        if self.relations.len() != other.relations.len() {
            return false;
        }
        self.relations.iter().all(|(name, rel)| {
            other
                .relations
                .get(name)
                .is_some_and(|o| o.arity() == rel.arity() && o.tuples() == rel.tuples())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DatabaseSchema, Schema, SortKind};
    use crate::tuple;

    #[test]
    fn from_schema_creates_empty_relations() {
        let schema = DatabaseSchema::new()
            .with(Schema::new("a", vec![("x", SortKind::Int)]))
            .with(Schema::new(
                "b",
                vec![("x", SortKind::Int), ("y", SortKind::Str)],
            ));
        let db = Database::from_schema(&schema);
        assert_eq!(db.relation("a").unwrap().arity(), 1);
        assert_eq!(db.relation("b").unwrap().arity(), 2);
        assert!(db.relation("a").unwrap().is_empty());
    }

    #[test]
    fn duplicate_relation_rejected() {
        let mut db = Database::new();
        db.add_relation(Relation::new("r", 1)).unwrap();
        assert!(matches!(
            db.add_relation(Relation::new("r", 2)),
            Err(StoreError::DuplicateRelation(_))
        ));
    }

    #[test]
    fn same_contents_ignores_indexes() {
        let mut a = Database::new();
        a.add_relation(Relation::with_tuples("r", 1, vec![tuple![1]]).unwrap())
            .unwrap();
        let mut b = a.clone();
        b.relation_mut("r").unwrap().ensure_index(&[0]).unwrap();
        assert!(a.same_contents(&b));
        b.relation_mut("r").unwrap().insert(tuple![2]).unwrap();
        assert!(!a.same_contents(&b));
    }

    #[test]
    fn total_tuples_counts_everything() {
        let mut db = Database::new();
        db.add_relation(Relation::with_tuples("r", 1, vec![tuple![1], tuple![2]]).unwrap())
            .unwrap();
        db.add_relation(Relation::with_tuples("s", 1, vec![tuple![3]]).unwrap())
            .unwrap();
        assert_eq!(db.total_tuples(), 3);
    }
}
