//! Typed constants stored in relations.
//!
//! The paper's Datalog dialect has constants drawn from totally ordered
//! domains (§3.2.1: comparisons `X < c` / `X > c` on totally ordered
//! domains). We support 64-bit integers, finite floating-point numbers,
//! strings and booleans. Dates are represented as ISO-8601 strings, whose
//! lexicographic order coincides with temporal order — the paper's own
//! `residents1962` example relies on exactly this encoding.
//!
//! Strings are interned ([`IStr`]), which makes every `Value` a 16-byte
//! `Copy` type: cloning a value is a register move, string equality is a
//! pointer comparison, and hashing a string is a single precomputed word.
//! The evaluator's slot frames and the store's index keys lean on this.

use crate::intern::IStr;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A constant value in a tuple.
///
/// `Value` has a *total* order: values of the same sort compare naturally,
/// and values of different sorts compare by sort tag (Int < Float < Str <
/// Bool). Cross-sort ordering only exists so that `Value` can be used in
/// ordered collections; the Datalog builtin comparison predicates reject
/// cross-sort comparisons (see [`Value::same_sort_cmp`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Value {
    /// 64-bit signed integer (a *discrete* ordered domain: there is no
    /// value strictly between `n` and `n+1`, which matters for the bounded
    /// solver's gap-witness construction).
    Int(i64),
    /// Finite 64-bit float, stored as normalized bits so that `Eq`/`Hash`
    /// are well defined. NaN is rejected at construction; `-0.0` is
    /// normalized to `0.0`. Floats form a *dense* ordered domain.
    Float(F64),
    /// Interned UTF-8 string (dense ordered domain under lexicographic
    /// order).
    Str(IStr),
    /// Boolean.
    Bool(bool),
}

/// Sort (type) tag of a [`Value`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ValueSort {
    Int,
    Float,
    Str,
    Bool,
}

impl Value {
    /// Build a string value (interning the string).
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(IStr::new(s.as_ref()))
    }

    /// Build an integer value.
    pub fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// Build a float value. Panics on NaN (floats must be totally ordered).
    pub fn float(f: f64) -> Self {
        Value::Float(F64::new(f).expect("NaN is not a valid database value"))
    }

    /// The sort tag of this value.
    pub fn sort(&self) -> ValueSort {
        match self {
            Value::Int(_) => ValueSort::Int,
            Value::Float(_) => ValueSort::Float,
            Value::Str(_) => ValueSort::Str,
            Value::Bool(_) => ValueSort::Bool,
        }
    }

    /// The string content, if this is a string value.
    pub fn as_str(&self) -> Option<&'static str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Compare two values of the same sort; `None` if sorts differ.
    ///
    /// This is the comparison used by the Datalog builtins `<` and `>`:
    /// the paper only compares values drawn from one totally ordered
    /// domain, so a cross-sort comparison indicates a type error in the
    /// user's program and is surfaced as `None` by callers.
    pub fn same_sort_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.same_sort_cmp(other)
            .unwrap_or_else(|| self.sort().cmp(&other.sort()))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{}", x.get()),
            Value::Str(s) => write!(f, "'{}'", s.as_str().replace('\'', "''")),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::str(s)
    }
}

impl From<IStr> for Value {
    fn from(s: IStr) -> Self {
        Value::Str(s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::float(f)
    }
}

/// A finite, totally ordered `f64` wrapper with well-defined `Eq`/`Hash`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct F64(f64);

impl F64 {
    /// Wrap a float; `None` for NaN. `-0.0` is normalized to `0.0`.
    pub fn new(f: f64) -> Option<Self> {
        if f.is_nan() {
            None
        } else if f == 0.0 {
            Some(F64(0.0))
        } else {
            Some(F64(f))
        }
    }

    /// The wrapped float.
    pub fn get(self) -> f64 {
        self.0
    }
}

impl PartialEq for F64 {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}
impl Eq for F64 {}

impl PartialOrd for F64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for F64 {
    fn cmp(&self, other: &Self) -> Ordering {
        // Finite (non-NaN) floats are totally ordered.
        self.0.partial_cmp(&other.0).expect("F64 is never NaN")
    }
}

impl std::hash::Hash for F64 {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of<T: Hash>(t: &T) -> u64 {
        let mut h = DefaultHasher::new();
        t.hash(&mut h);
        h.finish()
    }

    #[test]
    fn same_sort_comparisons() {
        assert_eq!(
            Value::int(1).same_sort_cmp(&Value::int(2)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::str("b").same_sort_cmp(&Value::str("a")),
            Some(Ordering::Greater)
        );
        assert_eq!(
            Value::float(1.5).same_sort_cmp(&Value::float(1.5)),
            Some(Ordering::Equal)
        );
        assert_eq!(Value::int(1).same_sort_cmp(&Value::str("1")), None);
    }

    #[test]
    fn iso_dates_order_lexicographically() {
        // The residents1962 example depends on this.
        let before = Value::str("1961-12-31");
        let start = Value::str("1962-01-01");
        let end = Value::str("1962-12-31");
        assert!(before < start);
        assert!(start < end);
    }

    #[test]
    fn interned_strings_share_storage() {
        let a = Value::str("shared-contents");
        let b = Value::str(String::from("shared-contents"));
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
        let (Value::Str(x), Value::Str(y)) = (a, b) else {
            unreachable!()
        };
        assert!(std::ptr::eq(x.as_str(), y.as_str()), "one pool entry");
    }

    #[test]
    fn negative_zero_is_normalized() {
        assert_eq!(Value::float(-0.0), Value::float(0.0));
        assert_eq!(hash_of(&Value::float(-0.0)), hash_of(&Value::float(0.0)));
    }

    #[test]
    fn nan_is_rejected() {
        assert!(F64::new(f64::NAN).is_none());
    }

    #[test]
    fn cross_sort_total_order_is_consistent() {
        let vals = [
            Value::int(3),
            Value::float(1.0),
            Value::str("x"),
            Value::Bool(false),
        ];
        // Ord must be transitive/total: sorting must not panic and must be
        // stable under repetition.
        let mut a = vals.to_vec();
        a.sort();
        let mut b = a.clone();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn display_quotes_strings() {
        assert_eq!(Value::str("o'clock").to_string(), "'o''clock'");
        assert_eq!(Value::int(-7).to_string(), "-7");
    }
}
