//! A fast, deterministic hasher for the store's hot hash collections.
//!
//! The relation primary sets and secondary indexes hash millions of small
//! keys (tuples of `Copy` [`crate::Value`]s, whose string payloads already
//! carry a precomputed content hash — see [`crate::intern`]). The standard
//! library's SipHash is DoS-resistant but pays for it per call; this is the
//! well-known Fx multiply-xor hash (as used by rustc), which is several
//! times faster on word-sized input and — having no random seed — makes
//! relation behaviour reproducible across runs. Acceptable here because
//! relation keys are program data, not untrusted network input.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Fx multiply-xor hasher state.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

/// The Fx multiplication constant (golden-ratio derived).
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf) ^ rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }
    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(i as u64);
    }
    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }
    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }
    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add(i as u64);
        self.add((i >> 64) as u64);
    }
}

/// Deterministic `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn fx_hash_of<T: Hash + ?Sized>(t: &T) -> u64 {
        FxBuildHasher::default().hash_one(t)
    }

    #[test]
    fn deterministic_across_builders() {
        assert_eq!(fx_hash_of(&42u64), fx_hash_of(&42u64));
        assert_eq!(fx_hash_of(&"abc"), fx_hash_of(&"abc"));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(fx_hash_of(&1u64), fx_hash_of(&2u64));
        assert_ne!(fx_hash_of(&"ab"), fx_hash_of(&"ba"));
        // Trailing-byte lengths are folded in, so prefixes differ.
        assert_ne!(fx_hash_of(&[1u8, 2, 3][..]), fx_hash_of(&[1u8, 2][..]));
    }

    #[test]
    fn tuple_and_slice_agree() {
        // The Borrow<[Value]>-based probes depend on this.
        use crate::{tuple, Value};
        let t = tuple![1, "x", 2.5];
        let row: Vec<Value> = t.values().to_vec();
        assert_eq!(fx_hash_of(&t), fx_hash_of(&row[..]));
    }
}
