//! Versioned binary codec for store types — the durability substrate.
//!
//! The WAL and snapshot files (`birds-wal`) need a compact, stable
//! on-disk form for [`Value`], [`Tuple`], [`Delta`] and [`Relation`].
//! This module defines it once, at the store layer, so every consumer
//! (engine snapshots, per-shard WAL segments, tests) reads and writes
//! the same bytes:
//!
//! * **Length-prefixed records** — [`write_record`] frames a payload as
//!   `len: u32 LE | crc: u32 LE | payload`, and [`read_record`] refuses
//!   to return bytes whose CRC32 does not match. A crash mid-append
//!   leaves a torn tail that reads back as [`RecordRead::Torn`], never
//!   as silently corrupt data.
//! * **Interned strings written by bytes** — a `Value::Str` is encoded
//!   as its UTF-8 bytes (length-prefixed) and re-interned on decode;
//!   pool pointers never reach disk, so files are portable across
//!   processes.
//! * **Versioned** — every framed stream starts with a
//!   [`StreamHeader`] carrying a magic tag and [`FORMAT_VERSION`];
//!   decoding a future (or foreign) format fails up front instead of
//!   misparsing.
//!
//! Numbers are fixed-width little-endian: the corpus workloads are
//! dominated by interned-string bytes and tuple payloads, where varint
//! shaving would buy little at the cost of a second code path.

use crate::delta::Delta;
use crate::relation::Relation;
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::HashSet;
use std::fmt;
use std::io::{Read, Write};

/// Version written into every [`StreamHeader`]. Bump when the byte
/// layout of any encoder below changes; decoders reject other versions.
pub const FORMAT_VERSION: u16 = 1;

/// Errors raised while encoding or decoding.
#[derive(Debug)]
pub enum CodecError {
    /// The underlying reader/writer failed.
    Io(std::io::Error),
    /// The bytes do not decode as the expected structure.
    Corrupt(String),
    /// The stream was written by an unknown format version.
    Version { found: u16, expected: u16 },
    /// The stream's magic tag does not match the expected kind.
    Magic { found: [u8; 4], expected: [u8; 4] },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Io(e) => write!(f, "io error: {e}"),
            CodecError::Corrupt(m) => write!(f, "corrupt stream: {m}"),
            CodecError::Version { found, expected } => {
                write!(
                    f,
                    "unsupported format version {found} (expected {expected})"
                )
            }
            CodecError::Magic { found, expected } => write!(
                f,
                "bad magic {:?} (expected {:?})",
                String::from_utf8_lossy(found),
                String::from_utf8_lossy(expected)
            ),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<std::io::Error> for CodecError {
    fn from(e: std::io::Error) -> Self {
        CodecError::Io(e)
    }
}

/// Result alias for codec operations.
pub type CodecResult<T> = Result<T, CodecError>;

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected) — the checksum every framed record carries.
// ---------------------------------------------------------------------------

/// The 256-entry CRC32 lookup table, built once at first use.
fn crc32_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *slot = crc;
        }
        table
    })
}

/// CRC32 (IEEE) of `bytes` — the per-record checksum the WAL uses to
/// detect torn tails.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc32_table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ table[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Primitives.
// ---------------------------------------------------------------------------

/// Append a single byte (tags and flags).
pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

/// Append a `u32` (little-endian).
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64` (little-endian).
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a length-prefixed byte string.
pub fn put_bytes(buf: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(buf, bytes.len() as u32);
    buf.extend_from_slice(bytes);
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_bytes(buf, s.as_bytes());
}

/// A cursor over an in-memory payload being decoded.
pub struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Decode from `bytes`.
    pub fn new(bytes: &'a [u8]) -> Cursor<'a> {
        Cursor { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// `true` once every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> CodecResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(CodecError::Corrupt(format!(
                "truncated payload: wanted {n} bytes, {} left",
                self.remaining()
            )));
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read a `u8`.
    pub fn get_u8(&mut self) -> CodecResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> CodecResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> CodecResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> CodecResult<&'a [u8]> {
        let len = self.get_u32()? as usize;
        self.take(len)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> CodecResult<&'a str> {
        std::str::from_utf8(self.get_bytes()?)
            .map_err(|e| CodecError::Corrupt(format!("invalid UTF-8 in string: {e}")))
    }
}

// ---------------------------------------------------------------------------
// Values, tuples, deltas, relations.
// ---------------------------------------------------------------------------

const TAG_INT: u8 = 0;
const TAG_FLOAT: u8 = 1;
const TAG_STR: u8 = 2;
const TAG_BOOL: u8 = 3;

/// Encode one [`Value`]: a sort tag byte followed by the payload. A
/// string is written as its bytes — the intern pool is process-local and
/// never serialized.
pub fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Int(i) => {
            buf.push(TAG_INT);
            put_u64(buf, *i as u64);
        }
        Value::Float(f) => {
            buf.push(TAG_FLOAT);
            put_u64(buf, f.get().to_bits());
        }
        Value::Str(s) => {
            buf.push(TAG_STR);
            put_str(buf, s.as_str());
        }
        Value::Bool(b) => {
            buf.push(TAG_BOOL);
            buf.push(u8::from(*b));
        }
    }
}

/// Decode one [`Value`]. Strings are re-interned; floats go back through
/// [`Value::float`]'s normalization (`-0.0` → `0.0`), and NaN bits —
/// which no encoder produces — are rejected rather than panicking.
pub fn get_value(cur: &mut Cursor<'_>) -> CodecResult<Value> {
    match cur.get_u8()? {
        TAG_INT => Ok(Value::Int(cur.get_u64()? as i64)),
        TAG_FLOAT => {
            let bits = cur.get_u64()?;
            let f = f64::from_bits(bits);
            if f.is_nan() {
                return Err(CodecError::Corrupt("NaN float value".into()));
            }
            Ok(Value::float(f))
        }
        TAG_STR => Ok(Value::str(cur.get_str()?)),
        TAG_BOOL => match cur.get_u8()? {
            0 => Ok(Value::Bool(false)),
            1 => Ok(Value::Bool(true)),
            other => Err(CodecError::Corrupt(format!("bad bool byte {other}"))),
        },
        tag => Err(CodecError::Corrupt(format!("unknown value tag {tag}"))),
    }
}

/// Encode one [`Tuple`]: arity then values.
pub fn put_tuple(buf: &mut Vec<u8>, t: &Tuple) {
    put_u32(buf, t.arity() as u32);
    for v in t.values() {
        put_value(buf, v);
    }
}

/// Decode one [`Tuple`].
pub fn get_tuple(cur: &mut Cursor<'_>) -> CodecResult<Tuple> {
    let arity = cur.get_u32()? as usize;
    let mut values = Vec::with_capacity(arity);
    for _ in 0..arity {
        values.push(get_value(cur)?);
    }
    Ok(Tuple::new(values))
}

fn put_tuple_set<'a>(buf: &mut Vec<u8>, tuples: impl ExactSizeIterator<Item = &'a Tuple>) {
    put_u32(buf, tuples.len() as u32);
    for t in tuples {
        put_tuple(buf, t);
    }
}

fn get_tuple_set(cur: &mut Cursor<'_>) -> CodecResult<HashSet<Tuple>> {
    let count = cur.get_u32()? as usize;
    let mut set = HashSet::with_capacity(count);
    for _ in 0..count {
        set.insert(get_tuple(cur)?);
    }
    Ok(set)
}

/// Encode one [`Delta`]: insertions then deletions. Set iteration order
/// is arbitrary, so two encodings of the same delta may differ byte for
/// byte — equality is defined on the decoded sets, not the bytes.
pub fn put_delta(buf: &mut Vec<u8>, d: &Delta) {
    put_tuple_set(buf, d.insertions.iter());
    put_tuple_set(buf, d.deletions.iter());
}

/// Decode one [`Delta`].
pub fn get_delta(cur: &mut Cursor<'_>) -> CodecResult<Delta> {
    let insertions = get_tuple_set(cur)?;
    let deletions = get_tuple_set(cur)?;
    Ok(Delta::from_sets(insertions, deletions))
}

/// Encode one [`Relation`]: name, arity, tuple count, tuples. Secondary
/// indexes are derived data and are not serialized — the engine rebuilds
/// them on restore.
pub fn put_relation(buf: &mut Vec<u8>, rel: &Relation) {
    put_str(buf, rel.name());
    put_u32(buf, rel.arity() as u32);
    put_u64(buf, rel.len() as u64);
    for t in rel.iter() {
        put_tuple(buf, t);
    }
}

/// Decode one [`Relation`] (no indexes — see [`put_relation`]).
pub fn get_relation(cur: &mut Cursor<'_>) -> CodecResult<Relation> {
    let name = cur.get_str()?.to_owned();
    let arity = cur.get_u32()? as usize;
    let count = cur.get_u64()? as usize;
    let mut rel = Relation::new(name, arity);
    for _ in 0..count {
        let t = get_tuple(cur)?;
        rel.insert(t)
            .map_err(|e| CodecError::Corrupt(format!("relation payload: {e}")))?;
    }
    Ok(rel)
}

// ---------------------------------------------------------------------------
// Stream headers and record framing.
// ---------------------------------------------------------------------------

/// The versioned header every framed stream (WAL segment, snapshot)
/// starts with: 4 magic bytes + `FORMAT_VERSION` (u16 LE).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamHeader {
    /// Stream kind tag (e.g. `b"BWAL"`, `b"BSNP"`).
    pub magic: [u8; 4],
}

impl StreamHeader {
    /// Write the header.
    pub fn write(&self, w: &mut impl Write) -> CodecResult<()> {
        w.write_all(&self.magic)?;
        w.write_all(&FORMAT_VERSION.to_le_bytes())?;
        Ok(())
    }

    /// Read and validate a header of the expected kind.
    pub fn read(r: &mut impl Read, expected: [u8; 4]) -> CodecResult<()> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if magic != expected {
            return Err(CodecError::Magic {
                found: magic,
                expected,
            });
        }
        let mut version = [0u8; 2];
        r.read_exact(&mut version)?;
        let version = u16::from_le_bytes(version);
        if version != FORMAT_VERSION {
            return Err(CodecError::Version {
                found: version,
                expected: FORMAT_VERSION,
            });
        }
        Ok(())
    }

    /// Header size in bytes.
    pub const LEN: u64 = 6;
}

/// Upper bound on one framed record, a corruption tripwire: a length
/// prefix beyond this is treated as a torn/corrupt tail rather than an
/// instruction to allocate gigabytes.
pub const MAX_RECORD_BYTES: u32 = 1 << 30;

/// Frame and write one record: `len | crc32(payload) | payload`. An
/// oversized payload is a hard error (not a debug assert): silently
/// framing it would produce a record that [`read_record`] rejects as
/// torn — an acknowledged-but-unreadable write.
pub fn write_record(w: &mut impl Write, payload: &[u8]) -> CodecResult<()> {
    if payload.len() as u64 > u64::from(MAX_RECORD_BYTES) {
        return Err(CodecError::Corrupt(format!(
            "record payload of {} bytes exceeds the {MAX_RECORD_BYTES}-byte cap",
            payload.len()
        )));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(&crc32(payload).to_le_bytes())?;
    w.write_all(payload)?;
    Ok(())
}

/// Outcome of one framed-record read.
#[derive(Debug)]
pub enum RecordRead {
    /// A complete record whose CRC matched.
    Payload(Vec<u8>),
    /// Clean end of stream: zero bytes remained.
    Eof,
    /// The stream ended mid-record, or the CRC did not match — the torn
    /// tail a crash mid-append leaves behind. Everything read so far is
    /// valid; everything from this record on must be discarded.
    Torn,
}

/// Read one framed record. IO errors other than a mid-record EOF are
/// surfaced as [`CodecError::Io`]; a short read or CRC mismatch is
/// [`RecordRead::Torn`].
pub fn read_record(r: &mut impl Read) -> CodecResult<RecordRead> {
    let mut len_bytes = [0u8; 4];
    match read_exact_or_eof(r, &mut len_bytes)? {
        Fill::Empty => return Ok(RecordRead::Eof),
        Fill::Partial => return Ok(RecordRead::Torn),
        Fill::Full => {}
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_RECORD_BYTES {
        return Ok(RecordRead::Torn);
    }
    let mut crc_bytes = [0u8; 4];
    match read_exact_or_eof(r, &mut crc_bytes)? {
        Fill::Full => {}
        _ => return Ok(RecordRead::Torn),
    }
    let expected_crc = u32::from_le_bytes(crc_bytes);
    let mut payload = vec![0u8; len as usize];
    match read_exact_or_eof(r, &mut payload)? {
        Fill::Full => {}
        _ => return Ok(RecordRead::Torn),
    }
    if crc32(&payload) != expected_crc {
        return Ok(RecordRead::Torn);
    }
    Ok(RecordRead::Payload(payload))
}

enum Fill {
    Empty,
    Partial,
    Full,
}

/// `read_exact` that distinguishes "no bytes at all" from "some but not
/// enough" — the difference between a clean EOF and a torn record.
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> CodecResult<Fill> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 {
                    Fill::Empty
                } else {
                    Fill::Partial
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(CodecError::Io(e)),
        }
    }
    Ok(Fill::Full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn crc32_matches_known_vectors() {
        // The standard IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    fn round_trip_value(v: Value) {
        let mut buf = Vec::new();
        put_value(&mut buf, &v);
        let mut cur = Cursor::new(&buf);
        assert_eq!(get_value(&mut cur).unwrap(), v);
        assert!(cur.is_exhausted());
    }

    #[test]
    fn values_round_trip() {
        round_trip_value(Value::int(0));
        round_trip_value(Value::int(-1));
        round_trip_value(Value::int(i64::MAX));
        round_trip_value(Value::int(i64::MIN));
        round_trip_value(Value::float(3.5));
        round_trip_value(Value::float(-0.0)); // normalized to 0.0 both sides
        round_trip_value(Value::str(""));
        round_trip_value(Value::str("1962-01-01"));
        round_trip_value(Value::str("uni\u{00e7}ode"));
        round_trip_value(Value::Bool(true));
        round_trip_value(Value::Bool(false));
    }

    #[test]
    fn decoded_strings_are_interned() {
        let mut buf = Vec::new();
        put_value(&mut buf, &Value::str("pooled"));
        let decoded = get_value(&mut Cursor::new(&buf)).unwrap();
        let (Value::Str(a), Value::Str(b)) = (decoded, Value::str("pooled")) else {
            panic!("not strings");
        };
        assert!(std::ptr::eq(a.as_str(), b.as_str()), "one pool entry");
    }

    #[test]
    fn nan_bits_are_rejected_not_panicked() {
        let mut buf = vec![TAG_FLOAT];
        put_u64(&mut buf, f64::NAN.to_bits());
        assert!(matches!(
            get_value(&mut Cursor::new(&buf)),
            Err(CodecError::Corrupt(_))
        ));
    }

    #[test]
    fn tuples_round_trip() {
        for t in [tuple![], tuple![1], tuple![1, "ann", true, 2.5]] {
            let mut buf = Vec::new();
            put_tuple(&mut buf, &t);
            assert_eq!(get_tuple(&mut Cursor::new(&buf)).unwrap(), t);
        }
    }

    #[test]
    fn deltas_round_trip() {
        let mut d = Delta::new();
        d.push_insert(tuple![1, "a"]);
        d.push_insert(tuple![2, "b"]);
        d.push_delete(tuple![3, "c"]);
        let mut buf = Vec::new();
        put_delta(&mut buf, &d);
        let decoded = get_delta(&mut Cursor::new(&buf)).unwrap();
        assert_eq!(decoded, d);
    }

    #[test]
    fn relations_round_trip_without_indexes() {
        let mut rel = Relation::with_tuples("r", 2, vec![tuple![1, "a"], tuple![2, "b"]]).unwrap();
        rel.ensure_index(&[0]).unwrap();
        let mut buf = Vec::new();
        put_relation(&mut buf, &rel);
        let decoded = get_relation(&mut Cursor::new(&buf)).unwrap();
        assert_eq!(decoded.name(), "r");
        assert_eq!(decoded.arity(), 2);
        assert_eq!(decoded.tuples(), rel.tuples());
        assert!(!decoded.has_index(&[0]), "indexes are rebuilt, not stored");
    }

    #[test]
    fn records_round_trip_and_detect_corruption() {
        let mut stream = Vec::new();
        write_record(&mut stream, b"first").unwrap();
        write_record(&mut stream, b"second record").unwrap();

        let mut r = &stream[..];
        assert!(matches!(
            read_record(&mut r).unwrap(),
            RecordRead::Payload(p) if p == b"first"
        ));
        assert!(matches!(
            read_record(&mut r).unwrap(),
            RecordRead::Payload(p) if p == b"second record"
        ));
        assert!(matches!(read_record(&mut r).unwrap(), RecordRead::Eof));

        // Flip one payload byte: CRC must catch it.
        let mut bad = stream.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        let mut r = &bad[..];
        assert!(matches!(
            read_record(&mut r).unwrap(),
            RecordRead::Payload(_)
        ));
        assert!(matches!(read_record(&mut r).unwrap(), RecordRead::Torn));
    }

    #[test]
    fn torn_tails_at_every_truncation_point() {
        let mut stream = Vec::new();
        write_record(&mut stream, b"only").unwrap();
        for cut in 1..stream.len() {
            let mut r = &stream[..cut];
            assert!(
                matches!(read_record(&mut r).unwrap(), RecordRead::Torn),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn oversized_payload_is_rejected_before_any_byte_is_written() {
        // Zero-filled and never touched until write, so the 1 GiB + 1
        // allocation stays virtual: write_record must refuse up front.
        let payload = vec![0u8; MAX_RECORD_BYTES as usize + 1];
        let mut out = Vec::new();
        assert!(matches!(
            write_record(&mut out, &payload),
            Err(CodecError::Corrupt(_))
        ));
        assert!(out.is_empty(), "nothing reached the stream");
    }

    #[test]
    fn absurd_length_prefix_is_torn_not_oom() {
        let mut stream = Vec::new();
        stream.extend_from_slice(&u32::MAX.to_le_bytes());
        stream.extend_from_slice(&0u32.to_le_bytes());
        let mut r = &stream[..];
        assert!(matches!(read_record(&mut r).unwrap(), RecordRead::Torn));
    }

    #[test]
    fn stream_headers_validate_magic_and_version() {
        let header = StreamHeader { magic: *b"BTST" };
        let mut buf = Vec::new();
        header.write(&mut buf).unwrap();
        assert_eq!(buf.len() as u64, StreamHeader::LEN);
        assert!(StreamHeader::read(&mut &buf[..], *b"BTST").is_ok());
        assert!(matches!(
            StreamHeader::read(&mut &buf[..], *b"XXXX"),
            Err(CodecError::Magic { .. })
        ));
        let mut wrong_version = buf.clone();
        wrong_version[4] = 0xFF;
        assert!(matches!(
            StreamHeader::read(&mut &wrong_version[..], *b"BTST"),
            Err(CodecError::Version { .. })
        ));
    }
}
