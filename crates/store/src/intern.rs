//! Process-wide string interning.
//!
//! The evaluation pipeline clones and compares string values constantly:
//! every index key, every join check, every emitted head tuple. Interning
//! turns `Value::Str` into a `Copy` symbol ([`IStr`]) whose
//!
//! * **clone** is a pointer copy,
//! * **equality** is a pointer comparison (`O(1)` regardless of length),
//! * **hash** is a single precomputed `u64` write, and
//! * **order** still consults the underlying bytes, so the lexicographic
//!   order the paper's date-as-ISO-string encoding relies on (`residents1962`,
//!   §3.2.1) is exactly preserved.
//!
//! Interned strings live for the lifetime of the process (they are leaked
//! into the pool), which matches how the store uses them: relation contents
//! are long-lived, and re-interning an already-known string is a hash-map
//! hit, not a new allocation. The pool is append-only — strings from
//! deleted tuples, rolled-back updates or unmatched query literals are
//! never evicted — so memory grows with the number of *distinct* strings
//! ever seen, not with the live database size. That is the right trade for
//! this engine's workloads (bounded vocabularies, repeated deltas); a
//! workload streaming unbounded fresh strings would need an epoch- or
//! refcount-based pool instead.

use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

/// One pool entry: the string plus its content hash, computed once at
/// intern time with a fixed-key hasher so `Hash` is `O(1)` *and*
/// deterministic across runs.
struct Entry {
    hash: u64,
    text: Box<str>,
}

/// The global intern pool, keyed by string content.
static POOL: Mutex<Option<HashMap<&'static str, &'static Entry>>> = Mutex::new(None);

fn content_hash(s: &str) -> u64 {
    // DefaultHasher::new() uses fixed keys, so this is stable per build.
    let mut h = std::collections::hash_map::DefaultHasher::new();
    s.hash(&mut h);
    h.finish()
}

/// An interned, immutable, process-lifetime string symbol.
///
/// `IStr` is a thin pointer to a pool `Entry`; two `IStr`s are equal iff
/// they point at the same entry, which the pool guarantees iff their
/// contents are equal. Ordering goes through the bytes, so `IStr` sorts
/// exactly like the `String` it replaced.
#[derive(Clone, Copy)]
pub struct IStr(&'static Entry);

impl IStr {
    /// Intern `s`, returning its canonical symbol.
    pub fn new(s: &str) -> IStr {
        let mut guard = POOL.lock().expect("intern pool poisoned");
        let pool = guard.get_or_insert_with(HashMap::new);
        if let Some(e) = pool.get(s) {
            return IStr(e);
        }
        let entry: &'static Entry = Box::leak(Box::new(Entry {
            hash: content_hash(s),
            text: s.into(),
        }));
        pool.insert(&entry.text, entry);
        IStr(entry)
    }

    /// The underlying string (valid for the life of the process).
    pub fn as_str(&self) -> &'static str {
        &self.0.text
    }
}

impl PartialEq for IStr {
    fn eq(&self, other: &Self) -> bool {
        // Pointer identity: the pool maps equal contents to one entry.
        std::ptr::eq(self.0, other.0)
    }
}
impl Eq for IStr {}

impl Hash for IStr {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.0.hash);
    }
}

impl PartialOrd for IStr {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for IStr {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if std::ptr::eq(self.0, other.0) {
            return std::cmp::Ordering::Equal;
        }
        self.as_str().cmp(other.as_str())
    }
}

impl std::ops::Deref for IStr {
    type Target = str;
    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for IStr {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl fmt::Debug for IStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

impl fmt::Display for IStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for IStr {
    fn from(s: &str) -> Self {
        IStr::new(s)
    }
}

impl From<String> for IStr {
    fn from(s: String) -> Self {
        IStr::new(&s)
    }
}

impl PartialEq<str> for IStr {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for IStr {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of<T: Hash>(t: &T) -> u64 {
        let mut h = DefaultHasher::new();
        t.hash(&mut h);
        h.finish()
    }

    #[test]
    fn interning_is_canonical() {
        let a = IStr::new("hello");
        let b = IStr::new(&("hel".to_string() + "lo"));
        assert_eq!(a, b);
        assert!(std::ptr::eq(a.as_str(), b.as_str()));
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn distinct_strings_differ() {
        assert_ne!(IStr::new("a"), IStr::new("b"));
    }

    #[test]
    fn order_is_lexicographic() {
        assert!(IStr::new("1961-12-31") < IStr::new("1962-01-01"));
        assert!(IStr::new("abc") < IStr::new("abd"));
        assert_eq!(
            IStr::new("same").cmp(&IStr::new("same")),
            std::cmp::Ordering::Equal
        );
    }

    #[test]
    fn empty_string_interns() {
        assert_eq!(IStr::new("").as_str(), "");
        assert!(IStr::new("") < IStr::new("\u{1}"));
    }
}
