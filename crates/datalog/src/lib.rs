//! # birds-datalog
//!
//! The Datalog dialect of the BIRDS reproduction: **non-recursive Datalog
//! with negation, builtin predicates and delta predicates** (paper §2.1 and
//! §3), plus the static analyses the paper relies on:
//!
//! * a hand-written lexer / recursive-descent parser for the concrete
//!   syntax used throughout the paper (`-r1(X) :- r1(X), not v(X).`);
//! * safety (range restriction) checking;
//! * predicate dependency graphs, non-recursion checking and
//!   stratification;
//! * classification into **LVGN-Datalog** (linear-view guarded-negation
//!   Datalog, §3.2), the fragment for which the paper's validation is sound
//!   and complete.
//!
//! Delta predicates `+r` / `-r` (and the internal `r_new` used by the
//! PutGet construction of §4.4) are first-class: a predicate reference is a
//! `(name, DeltaKind)` pair.

pub mod analysis;
pub mod ast;
pub mod lexer;
pub mod lvgn;
pub mod parser;
pub mod pretty;

pub use analysis::{
    binding_closure, check_nonrecursive, check_safety, dependency_graph, stratify, AnalysisError,
};
pub use ast::{Atom, CmpOp, DeltaKind, Head, Literal, PredRef, Program, Rule, Term};
pub use lvgn::{check_guarded_negation, check_linear_view, check_lvgn, LvgnViolation};
pub use parser::{parse_program, parse_rule, ParseError};
