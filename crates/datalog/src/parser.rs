//! Recursive-descent parser for the Datalog dialect.
//!
//! Grammar (LL(1) over the lexer's tokens):
//!
//! ```text
//! program  := rule*
//! rule     := head ( ':-' body )? '.'
//! head     := '⊥' | atom
//! atom     := ('+' | '-')? lower_ident '(' term (',' term)* ')'
//! body     := literal (',' literal)*
//! literal  := 'not'? ( atom | term cmp term )
//! cmp      := '=' | '<>' | '!=' | '<' | '>' | '<=' | '>='
//! term     := Variable | '_' | constant | '-' integer
//! ```
//!
//! `t1 <> t2` parses as a negated equality; a `not` in front flips the
//! polarity again.

use crate::ast::{Atom, CmpOp, DeltaKind, Head, Literal, PredRef, Program, Rule, Term};
use crate::lexer::{lex, LexError, Spanned, Token};
use birds_store::Value;
use std::fmt;

/// Parse error (includes lexing failures).
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// Tokenization failed.
    Lex(LexError),
    /// Parse failure with message and 1-based line.
    Syntax { message: String, line: usize },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex(e) => write!(f, "{e}"),
            ParseError::Syntax { message, line } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::Lex(e)
    }
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    anon_counter: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1).map(|s| &s.token)
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|s| s.line)
            .unwrap_or(0)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|s| s.token.clone());
        self.pos += 1;
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError::Syntax {
            message: message.into(),
            line: self.line(),
        })
    }

    fn expect(&mut self, want: &Token) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == want => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => {
                let t = t.clone();
                self.err(format!("expected '{want}', found '{t}'"))
            }
            None => self.err(format!("expected '{want}', found end of input")),
        }
    }

    fn fresh_anon(&mut self) -> Term {
        let t = Term::Var(format!("_#{}", self.anon_counter));
        self.anon_counter += 1;
        t
    }

    fn parse_program(&mut self) -> Result<Program, ParseError> {
        let mut rules = Vec::new();
        while self.peek().is_some() {
            rules.push(self.parse_rule()?);
        }
        Ok(Program::new(rules))
    }

    fn parse_rule(&mut self) -> Result<Rule, ParseError> {
        let head = match self.peek() {
            Some(Token::Bottom) => {
                self.bump();
                Head::Bottom
            }
            _ => Head::Atom(self.parse_atom()?),
        };
        let body = match self.peek() {
            Some(Token::Implies) => {
                self.bump();
                self.parse_body()?
            }
            _ => Vec::new(),
        };
        self.expect(&Token::Dot)?;
        Ok(Rule { head, body })
    }

    fn parse_body(&mut self) -> Result<Vec<Literal>, ParseError> {
        let mut lits = vec![self.parse_literal()?];
        while self.peek() == Some(&Token::Comma) {
            self.bump();
            lits.push(self.parse_literal()?);
        }
        Ok(lits)
    }

    fn parse_literal(&mut self) -> Result<Literal, ParseError> {
        let mut negated = false;
        while self.peek() == Some(&Token::Not) {
            self.bump();
            negated = !negated;
        }
        // Delta atom: '+'/'-' followed by a lowercase identifier.
        let starts_atom = matches!(
            (self.peek(), self.peek2()),
            (Some(Token::Plus | Token::Minus), Some(Token::LowerIdent(_)))
                | (Some(Token::LowerIdent(_)), Some(Token::LParen))
        );
        if starts_atom {
            let atom = self.parse_atom()?;
            return Ok(Literal::Atom { atom, negated });
        }
        // Builtin comparison.
        let left = self.parse_term()?;
        let (op, flip) = match self.bump() {
            Some(Token::Eq) => (CmpOp::Eq, false),
            Some(Token::Neq) => (CmpOp::Eq, true),
            Some(Token::Lt) => (CmpOp::Lt, false),
            Some(Token::Gt) => (CmpOp::Gt, false),
            Some(Token::Le) => (CmpOp::Le, false),
            Some(Token::Ge) => (CmpOp::Ge, false),
            other => {
                return self.err(format!(
                    "expected comparison operator, found {}",
                    other
                        .map(|t| t.to_string())
                        .unwrap_or_else(|| "end of input".into())
                ))
            }
        };
        let right = self.parse_term()?;
        Ok(Literal::Builtin {
            op,
            left,
            right,
            negated: negated ^ flip,
        })
    }

    fn parse_atom(&mut self) -> Result<Atom, ParseError> {
        let kind = match self.peek() {
            Some(Token::Plus) => {
                self.bump();
                DeltaKind::Insert
            }
            Some(Token::Minus) => {
                self.bump();
                DeltaKind::Delete
            }
            _ => DeltaKind::None,
        };
        let name = match self.bump() {
            Some(Token::LowerIdent(n)) => n,
            other => {
                return self.err(format!(
                    "expected predicate name, found {}",
                    other
                        .map(|t| t.to_string())
                        .unwrap_or_else(|| "end of input".into())
                ))
            }
        };
        self.expect(&Token::LParen)?;
        let mut terms = vec![self.parse_term()?];
        while self.peek() == Some(&Token::Comma) {
            self.bump();
            terms.push(self.parse_term()?);
        }
        self.expect(&Token::RParen)?;
        Ok(Atom::new(PredRef { name, kind }, terms))
    }

    fn parse_term(&mut self) -> Result<Term, ParseError> {
        match self.bump() {
            Some(Token::UpperIdent(v)) => Ok(Term::Var(v)),
            Some(Token::Underscore) => Ok(self.fresh_anon()),
            Some(Token::Int(i)) => Ok(Term::Const(Value::Int(i))),
            Some(Token::Float(x)) => Ok(Term::Const(Value::float(x))),
            Some(Token::Str(s)) => Ok(Term::Const(Value::str(s))),
            Some(Token::True) => Ok(Term::Const(Value::Bool(true))),
            Some(Token::Minus) => match self.bump() {
                Some(Token::Int(i)) => Ok(Term::Const(Value::Int(-i))),
                Some(Token::Float(x)) => Ok(Term::Const(Value::float(-x))),
                other => self.err(format!(
                    "expected number after '-', found {}",
                    other
                        .map(|t| t.to_string())
                        .unwrap_or_else(|| "end of input".into())
                )),
            },
            other => self.err(format!(
                "expected term, found {}",
                other
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "end of input".into())
            )),
        }
    }
}

/// Parse a whole program.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        anon_counter: 0,
    };
    p.parse_program()
}

/// Parse a single rule (convenience for tests and builders).
pub fn parse_rule(src: &str) -> Result<Rule, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        anon_counter: 0,
    };
    let rule = p.parse_rule()?;
    if p.peek().is_some() {
        return p.err("trailing input after rule");
    }
    Ok(rule)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_union_strategy_from_example_3_1() {
        let src = "
            -r1(X) :- r1(X), not v(X).
            -r2(X) :- r2(X), not v(X).
            +r1(X) :- v(X), not r1(X), not r2(X).
        ";
        let p = parse_program(src).unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.rules[0].head.atom().unwrap().pred, PredRef::del("r1"));
        assert_eq!(p.rules[2].head.atom().unwrap().pred, PredRef::ins("r1"));
        assert!(p.rules[0].body[1].is_negated());
    }

    #[test]
    fn parse_constants_and_comparisons() {
        let r = parse_rule(
            "residents1962(E,B,G) :- residents(E,B,G), not B < '1962-01-01', not B > '1962-12-31'.",
        )
        .unwrap();
        assert_eq!(r.body.len(), 3);
        match &r.body[1] {
            Literal::Builtin {
                op, negated, right, ..
            } => {
                assert_eq!(*op, CmpOp::Lt);
                assert!(*negated);
                assert_eq!(right, &Term::Const(Value::str("1962-01-01")));
            }
            _ => panic!("expected builtin"),
        }
    }

    #[test]
    fn parse_constraint() {
        let r = parse_rule("false :- v(X,Y,Z), Z > 2.").unwrap();
        assert!(r.is_constraint());
        let r2 = parse_rule("_|_ :- v(X), X = 1.").unwrap();
        assert!(r2.is_constraint());
    }

    #[test]
    fn neq_is_negated_eq() {
        let r = parse_rule("p(X) :- r(X), X <> 1.").unwrap();
        match &r.body[1] {
            Literal::Builtin { op, negated, .. } => {
                assert_eq!(*op, CmpOp::Eq);
                assert!(*negated);
            }
            _ => panic!(),
        }
        // double negation: not X <> 1  ==  X = 1
        let r = parse_rule("p(X) :- r(X), not X <> 1.").unwrap();
        match &r.body[1] {
            Literal::Builtin { op, negated, .. } => {
                assert_eq!(*op, CmpOp::Eq);
                assert!(!negated);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn anonymous_variables_are_fresh() {
        let r = parse_rule("retired(E) :- residents(E,_,_), not ced(E,_).").unwrap();
        let anon: Vec<String> = r
            .body
            .iter()
            .flat_map(|l| l.variables())
            .filter(|v| v.starts_with("_#"))
            .map(str::to_owned)
            .collect();
        // three distinct anonymous variables
        let unique: std::collections::BTreeSet<_> = anon.iter().collect();
        assert_eq!(unique.len(), 3);
    }

    #[test]
    fn negative_number_constants() {
        let r = parse_rule("p(X) :- r(X), X > -5.").unwrap();
        match &r.body[1] {
            Literal::Builtin { right, .. } => {
                assert_eq!(right, &Term::Const(Value::Int(-5)));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn facts_have_empty_bodies() {
        let p = parse_program("r(1, 'a'). r(2, 'b').").unwrap();
        assert_eq!(p.len(), 2);
        assert!(p.rules[0].body.is_empty());
        assert!(p.rules[0].head.atom().unwrap().is_ground());
    }

    #[test]
    fn delta_atoms_in_bodies() {
        // well-definedness check rule (2) of §4.2
        let r = parse_rule("d1(X) :- +r1(X), -r1(X).").unwrap();
        assert_eq!(r.body[0].atom().unwrap().pred, PredRef::ins("r1"));
        assert_eq!(r.body[1].atom().unwrap().pred, PredRef::del("r1"));
    }

    #[test]
    fn error_reporting_includes_line() {
        let err = parse_program("p(X) :- q(X).\np(Y) :- ,").unwrap_err();
        match err {
            ParseError::Syntax { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn reject_trailing_garbage_in_single_rule() {
        assert!(parse_rule("p(X) :- q(X). extra").is_err());
    }

    #[test]
    fn unicode_negation_and_bottom() {
        let r = parse_rule("⊥ :- v(X), ¬ r(X).").unwrap();
        assert!(r.is_constraint());
        assert!(r.body[1].is_negated());
    }
}
