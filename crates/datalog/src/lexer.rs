//! Lexer for the concrete Datalog syntax.
//!
//! Token set (paper notation → concrete syntax):
//!
//! * `¬`        → `not` (keyword) or `¬`
//! * `⊥`        → `false` (keyword) or `_|_` or `⊥`
//! * `:−`       → `:-`
//! * delta      → `+name` / `-name` before a `(`
//! * constants  → integers, floats, `'single-quoted strings'`, `true`/`false`
//! * variables  → identifiers starting with an uppercase letter; `_` is the
//!   anonymous variable
//! * `%`        → line comment

use std::fmt;

/// Lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier starting lowercase: predicate or attribute name.
    LowerIdent(String),
    /// Identifier starting uppercase (or `_x`): a variable.
    UpperIdent(String),
    /// Anonymous variable `_`.
    Underscore,
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// Keyword `not` / `¬`.
    Not,
    /// Keyword `true`.
    True,
    /// `⊥` / `_|_` / keyword `false`.
    Bottom,
    /// `:-`
    Implies,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Neq,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::LowerIdent(s) | Token::UpperIdent(s) => write!(f, "{s}"),
            Token::Underscore => write!(f, "_"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Not => write!(f, "not"),
            Token::True => write!(f, "true"),
            Token::Bottom => write!(f, "false"),
            Token::Implies => write!(f, ":-"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Eq => write!(f, "="),
            Token::Neq => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::Gt => write!(f, ">"),
            Token::Le => write!(f, "<="),
            Token::Ge => write!(f, ">="),
        }
    }
}

/// A token with its source position (byte offset and 1-based line).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// 1-based line number.
    pub line: usize,
}

/// Lexing error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable message.
    pub message: String,
    /// 1-based line number.
    pub line: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize a source string.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let mut out = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    let mut line = 1;
    let n = chars.len();
    while i < n {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '%' => {
                while i < n && chars[i] != '\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Spanned {
                    token: Token::LParen,
                    line,
                });
                i += 1;
            }
            ')' => {
                out.push(Spanned {
                    token: Token::RParen,
                    line,
                });
                i += 1;
            }
            ',' => {
                out.push(Spanned {
                    token: Token::Comma,
                    line,
                });
                i += 1;
            }
            '.' => {
                out.push(Spanned {
                    token: Token::Dot,
                    line,
                });
                i += 1;
            }
            '+' => {
                out.push(Spanned {
                    token: Token::Plus,
                    line,
                });
                i += 1;
            }
            '-' => {
                out.push(Spanned {
                    token: Token::Minus,
                    line,
                });
                i += 1;
            }
            '=' => {
                out.push(Spanned {
                    token: Token::Eq,
                    line,
                });
                i += 1;
            }
            '¬' => {
                out.push(Spanned {
                    token: Token::Not,
                    line,
                });
                i += 1;
            }
            '⊥' => {
                out.push(Spanned {
                    token: Token::Bottom,
                    line,
                });
                i += 1;
            }
            '!' => {
                if i + 1 < n && chars[i + 1] == '=' {
                    out.push(Spanned {
                        token: Token::Neq,
                        line,
                    });
                    i += 2;
                } else {
                    return Err(LexError {
                        message: "unexpected '!' (did you mean '!='?)".into(),
                        line,
                    });
                }
            }
            '<' => {
                if i + 1 < n && chars[i + 1] == '=' {
                    out.push(Spanned {
                        token: Token::Le,
                        line,
                    });
                    i += 2;
                } else if i + 1 < n && chars[i + 1] == '>' {
                    out.push(Spanned {
                        token: Token::Neq,
                        line,
                    });
                    i += 2;
                } else {
                    out.push(Spanned {
                        token: Token::Lt,
                        line,
                    });
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < n && chars[i + 1] == '=' {
                    out.push(Spanned {
                        token: Token::Ge,
                        line,
                    });
                    i += 2;
                } else {
                    out.push(Spanned {
                        token: Token::Gt,
                        line,
                    });
                    i += 1;
                }
            }
            ':' => {
                if i + 1 < n && chars[i + 1] == '-' {
                    out.push(Spanned {
                        token: Token::Implies,
                        line,
                    });
                    i += 2;
                } else {
                    return Err(LexError {
                        message: "unexpected ':' (did you mean ':-'?)".into(),
                        line,
                    });
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= n {
                        return Err(LexError {
                            message: "unterminated string literal".into(),
                            line,
                        });
                    }
                    if chars[i] == '\'' {
                        if i + 1 < n && chars[i + 1] == '\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        if chars[i] == '\n' {
                            line += 1;
                        }
                        s.push(chars[i]);
                        i += 1;
                    }
                }
                out.push(Spanned {
                    token: Token::Str(s),
                    line,
                });
            }
            '_' => {
                // `_|_` is ⊥; `_` alone or before a delimiter is anonymous;
                // `_foo` is a (lowercase-ish) variable-like identifier that
                // we treat as a variable for ergonomics.
                if i + 2 < n && chars[i + 1] == '|' && chars[i + 2] == '_' {
                    out.push(Spanned {
                        token: Token::Bottom,
                        line,
                    });
                    i += 3;
                } else if i + 1 < n && (chars[i + 1].is_alphanumeric() || chars[i + 1] == '_') {
                    let start = i;
                    i += 1;
                    while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                    let ident: String = chars[start..i].iter().collect();
                    out.push(Spanned {
                        token: Token::UpperIdent(ident),
                        line,
                    });
                } else {
                    out.push(Spanned {
                        token: Token::Underscore,
                        line,
                    });
                    i += 1;
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < n && chars[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i + 1 < n && chars[i] == '.' && chars[i + 1].is_ascii_digit() {
                    is_float = true;
                    i += 1;
                    while i < n && chars[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text: String = chars[start..i].iter().collect();
                if is_float {
                    let v: f64 = text.parse().map_err(|_| LexError {
                        message: format!("bad float literal '{text}'"),
                        line,
                    })?;
                    out.push(Spanned {
                        token: Token::Float(v),
                        line,
                    });
                } else {
                    let v: i64 = text.parse().map_err(|_| LexError {
                        message: format!("integer literal '{text}' out of range"),
                        line,
                    })?;
                    out.push(Spanned {
                        token: Token::Int(v),
                        line,
                    });
                }
            }
            c if c.is_alphabetic() => {
                let start = i;
                while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let ident: String = chars[start..i].iter().collect();
                let token = match ident.as_str() {
                    "not" => Token::Not,
                    "true" => Token::True,
                    "false" => Token::Bottom,
                    _ if c.is_uppercase() => Token::UpperIdent(ident),
                    _ => Token::LowerIdent(ident),
                };
                out.push(Spanned { token, line });
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character '{other}'"),
                    line,
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn lex_simple_rule() {
        let t = toks("-r1(X) :- r1(X), not v(X).");
        assert_eq!(
            t,
            vec![
                Token::Minus,
                Token::LowerIdent("r1".into()),
                Token::LParen,
                Token::UpperIdent("X".into()),
                Token::RParen,
                Token::Implies,
                Token::LowerIdent("r1".into()),
                Token::LParen,
                Token::UpperIdent("X".into()),
                Token::RParen,
                Token::Comma,
                Token::Not,
                Token::LowerIdent("v".into()),
                Token::LParen,
                Token::UpperIdent("X".into()),
                Token::RParen,
                Token::Dot,
            ]
        );
    }

    #[test]
    fn lex_strings_with_escapes() {
        assert_eq!(
            toks("'a''b' 'x'"),
            vec![Token::Str("a'b".into()), Token::Str("x".into())]
        );
    }

    #[test]
    fn lex_comparison_operators() {
        assert_eq!(
            toks("< <= > >= <> != ="),
            vec![
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge,
                Token::Neq,
                Token::Neq,
                Token::Eq
            ]
        );
    }

    #[test]
    fn lex_numbers() {
        assert_eq!(toks("42 3.25"), vec![Token::Int(42), Token::Float(3.25)]);
    }

    #[test]
    fn lex_bottom_forms() {
        assert_eq!(
            toks("_|_ false ⊥"),
            vec![Token::Bottom, Token::Bottom, Token::Bottom]
        );
    }

    #[test]
    fn lex_comments_and_unicode_not() {
        assert_eq!(
            toks("% a comment line\n¬ p"),
            vec![Token::Not, Token::LowerIdent("p".into())]
        );
    }

    #[test]
    fn lex_anonymous_and_named_underscore() {
        assert_eq!(
            toks("_ _x"),
            vec![Token::Underscore, Token::UpperIdent("_x".into())]
        );
    }

    #[test]
    fn lex_error_has_line() {
        let err = lex("p(X).\n&").unwrap_err();
        assert_eq!(err.line, 2);
    }
}
