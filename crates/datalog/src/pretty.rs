//! Pretty-printing of Datalog programs.
//!
//! The output round-trips through the parser (tested below), which lets the
//! rest of the system treat "program text" and "program AST" as
//! interchangeable.

use crate::ast::{Head, Literal, Program, Rule, Term};
use std::fmt;

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) if v.starts_with("_#") => {
                // Parser-generated anonymous variables print back as `_`:
                // each occurs exactly once, so this round-trips (the
                // reparse regenerates `_#k` in the same order) and keeps
                // the linear-view classification stable.
                write!(f, "_")
            }
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

impl fmt::Display for crate::ast::Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.pred)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Atom { atom, negated } => {
                if *negated {
                    write!(f, "not {atom}")
                } else {
                    write!(f, "{atom}")
                }
            }
            Literal::Builtin {
                op,
                left,
                right,
                negated,
            } => {
                if *negated {
                    write!(f, "not {left} {} {right}", op.symbol())
                } else {
                    write!(f, "{left} {} {right}", op.symbol())
                }
            }
        }
    }
}

impl fmt::Display for Head {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Head::Atom(a) => write!(f, "{a}"),
            Head::Bottom => write!(f, "false"),
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.head)?;
        if !self.body.is_empty() {
            write!(f, " :- ")?;
            for (i, lit) in self.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{lit}")?;
            }
        }
        write!(f, ".")
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for rule in &self.rules {
            writeln!(f, "{rule}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::{parse_program, parse_rule};

    #[test]
    fn roundtrip_case_study_rules() {
        let sources = [
            "-r1(X) :- r1(X), not v(X).",
            "+male(E, B) :- residents(E, B, 'M'), not male(E, B), not others(E, B, 'M').",
            "false :- v(X, Y, Z), Z > 2.",
            "p(X) :- r(X), X <> 1.",
            "q(X) :- r(X, Y), Y >= -3.",
        ];
        for src in sources {
            let rule = parse_rule(src).unwrap();
            let printed = rule.to_string();
            let reparsed = parse_rule(&printed).unwrap();
            assert_eq!(rule, reparsed, "failed roundtrip for {src}");
        }
    }

    #[test]
    fn roundtrip_anonymous_variables() {
        let rule = parse_rule("retired(E) :- residents(E, _, _), not ced(E, _).").unwrap();
        let printed = rule.to_string();
        let reparsed = parse_rule(&printed).unwrap();
        // Anonymous variables become fresh named variables; structure (arity
        // and number of distinct variables) must be preserved.
        assert_eq!(rule.body.len(), reparsed.body.len());
        assert_eq!(rule.variables().len(), reparsed.variables().len());
    }

    #[test]
    fn roundtrip_whole_program() {
        let src = "
            -r1(X) :- r1(X), not v(X).
            -r2(X) :- r2(X), not v(X).
            +r1(X) :- v(X), not r1(X), not r2(X).
            false :- v(X), X > 100.
        ";
        let p = parse_program(src).unwrap();
        let p2 = parse_program(&p.to_string()).unwrap();
        assert_eq!(p, p2);
    }
}
