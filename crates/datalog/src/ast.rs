//! Abstract syntax of non-recursive Datalog with negation, builtins and
//! delta predicates.

use birds_store::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A term: a variable or a constant (paper §2.1).
///
/// Anonymous variables (`_`) are expanded by the parser into fresh variables
/// named `_#k`; [`Term::is_anonymous`] recognizes them (the linear-view
/// restriction of Definition 3.2 forbids them inside view atoms).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Term {
    /// A variable (uppercase by convention).
    Var(String),
    /// A constant value.
    Const(Value),
}

impl Term {
    /// Build a variable term.
    pub fn var(name: impl Into<String>) -> Self {
        Term::Var(name.into())
    }

    /// Build a constant term.
    pub fn constant(v: impl Into<Value>) -> Self {
        Term::Const(v.into())
    }

    /// Is this a parser-generated anonymous variable?
    pub fn is_anonymous(&self) -> bool {
        matches!(self, Term::Var(n) if n.starts_with("_#"))
    }

    /// Variable name, if this is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Term::Var(n) => Some(n),
            Term::Const(_) => None,
        }
    }

    /// Constant value, if this is a constant.
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            Term::Const(v) => Some(v),
            Term::Var(_) => None,
        }
    }
}

/// Whether a predicate reference denotes the relation itself or one of its
/// delta relations (paper §3.1) / the post-update relation (§4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DeltaKind {
    /// The plain relation `r`.
    None,
    /// The insertion set `+r`.
    Insert,
    /// The deletion set `-r`.
    Delete,
    /// The post-update relation `rⁿᵉʷ` (internal; used by the PutGet
    /// construction of §4.4 and by incrementalization's `rᵛ` relations).
    New,
}

/// A reference to a predicate: base name plus delta kind.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PredRef {
    /// Base relation name.
    pub name: String,
    /// Plain / `+` / `-` / `new`.
    pub kind: DeltaKind,
}

impl PredRef {
    /// Plain predicate `r`.
    pub fn plain(name: impl Into<String>) -> Self {
        PredRef {
            name: name.into(),
            kind: DeltaKind::None,
        }
    }

    /// Insertion delta `+r`.
    pub fn ins(name: impl Into<String>) -> Self {
        PredRef {
            name: name.into(),
            kind: DeltaKind::Insert,
        }
    }

    /// Deletion delta `-r`.
    pub fn del(name: impl Into<String>) -> Self {
        PredRef {
            name: name.into(),
            kind: DeltaKind::Delete,
        }
    }

    /// Post-update predicate `rⁿᵉʷ`.
    pub fn new_rel(name: impl Into<String>) -> Self {
        PredRef {
            name: name.into(),
            kind: DeltaKind::New,
        }
    }

    /// Is this a `+r` or `-r` delta predicate?
    pub fn is_delta(&self) -> bool {
        matches!(self.kind, DeltaKind::Insert | DeltaKind::Delete)
    }

    /// Unique flat name used when the predicate is materialized as a
    /// relation (e.g. in the evaluator): `r`, `+r`, `-r`, `r__new`.
    pub fn flat_name(&self) -> String {
        match self.kind {
            DeltaKind::None => self.name.clone(),
            DeltaKind::Insert => format!("+{}", self.name),
            DeltaKind::Delete => format!("-{}", self.name),
            DeltaKind::New => format!("{}__new", self.name),
        }
    }
}

impl fmt::Display for PredRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            DeltaKind::None => write!(f, "{}", self.name),
            DeltaKind::Insert => write!(f, "+{}", self.name),
            DeltaKind::Delete => write!(f, "-{}", self.name),
            DeltaKind::New => write!(f, "{}__new", self.name),
        }
    }
}

/// An atom `p(t1, …, tk)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Atom {
    /// The predicate being applied.
    pub pred: PredRef,
    /// Argument terms.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Build an atom.
    pub fn new(pred: PredRef, terms: Vec<Term>) -> Self {
        Atom { pred, terms }
    }

    /// Arity of the atom.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// Set of variable names occurring in the atom.
    pub fn variables(&self) -> BTreeSet<&str> {
        self.terms.iter().filter_map(Term::as_var).collect()
    }

    /// `true` when all terms are constants.
    pub fn is_ground(&self) -> bool {
        self.terms.iter().all(|t| matches!(t, Term::Const(_)))
    }
}

/// Builtin comparison operators. `≠` is represented as a negated `Eq`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Evaluate the comparison on two values; `None` on cross-sort input.
    pub fn eval(self, a: &Value, b: &Value) -> Option<bool> {
        use std::cmp::Ordering::*;
        if self == CmpOp::Eq {
            return Some(a == b);
        }
        let ord = a.same_sort_cmp(b)?;
        Some(match self {
            CmpOp::Eq => unreachable!(),
            CmpOp::Lt => ord == Less,
            CmpOp::Gt => ord == Greater,
            CmpOp::Le => ord != Greater,
            CmpOp::Ge => ord != Less,
        })
    }

    /// Symbol for display.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Lt => "<",
            CmpOp::Gt => ">",
            CmpOp::Le => "<=",
            CmpOp::Ge => ">=",
        }
    }
}

/// A body literal: a possibly negated atom, or a possibly negated builtin
/// comparison.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Literal {
    /// `p(~t)` or `not p(~t)`.
    Atom {
        /// The atom.
        atom: Atom,
        /// `true` for `not p(~t)`.
        negated: bool,
    },
    /// `t1 op t2` or `not (t1 op t2)`.
    Builtin {
        /// Comparison operator.
        op: CmpOp,
        /// Left operand.
        left: Term,
        /// Right operand.
        right: Term,
        /// `true` for the negated form.
        negated: bool,
    },
}

impl Literal {
    /// Positive atom literal.
    pub fn pos(atom: Atom) -> Self {
        Literal::Atom {
            atom,
            negated: false,
        }
    }

    /// Negated atom literal.
    pub fn neg(atom: Atom) -> Self {
        Literal::Atom {
            atom,
            negated: true,
        }
    }

    /// Is this literal negated?
    pub fn is_negated(&self) -> bool {
        match self {
            Literal::Atom { negated, .. } | Literal::Builtin { negated, .. } => *negated,
        }
    }

    /// The atom, if this is an atom literal.
    pub fn atom(&self) -> Option<&Atom> {
        match self {
            Literal::Atom { atom, .. } => Some(atom),
            Literal::Builtin { .. } => None,
        }
    }

    /// Variables occurring in the literal.
    pub fn variables(&self) -> BTreeSet<&str> {
        match self {
            Literal::Atom { atom, .. } => atom.variables(),
            Literal::Builtin { left, right, .. } => {
                [left, right].into_iter().filter_map(Term::as_var).collect()
            }
        }
    }
}

/// A rule head: an atom, or `⊥` for integrity constraints (§3.2.3).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Head {
    /// Ordinary rule head.
    Atom(Atom),
    /// Truth constant `⊥` — the rule is an integrity constraint
    /// `∀X, Φ(X) → ⊥`.
    Bottom,
}

impl Head {
    /// The head atom, if not `⊥`.
    pub fn atom(&self) -> Option<&Atom> {
        match self {
            Head::Atom(a) => Some(a),
            Head::Bottom => None,
        }
    }
}

/// A Datalog rule `H :- L1, …, Ln.`
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rule {
    /// Rule head (atom or `⊥`).
    pub head: Head,
    /// Body literals.
    pub body: Vec<Literal>,
}

impl Rule {
    /// Build a rule with an atom head.
    pub fn new(head: Atom, body: Vec<Literal>) -> Self {
        Rule {
            head: Head::Atom(head),
            body,
        }
    }

    /// Build an integrity constraint (`⊥` head).
    pub fn constraint(body: Vec<Literal>) -> Self {
        Rule {
            head: Head::Bottom,
            body,
        }
    }

    /// Is this rule an integrity constraint?
    pub fn is_constraint(&self) -> bool {
        matches!(self.head, Head::Bottom)
    }

    /// All positive body atoms.
    pub fn positive_atoms(&self) -> impl Iterator<Item = &Atom> {
        self.body.iter().filter_map(|l| match l {
            Literal::Atom {
                atom,
                negated: false,
            } => Some(atom),
            _ => None,
        })
    }

    /// All negated body atoms.
    pub fn negated_atoms(&self) -> impl Iterator<Item = &Atom> {
        self.body.iter().filter_map(|l| match l {
            Literal::Atom {
                atom,
                negated: true,
            } => Some(atom),
            _ => None,
        })
    }

    /// All variables in the rule (head and body).
    pub fn variables(&self) -> BTreeSet<&str> {
        let mut vars: BTreeSet<&str> = self.body.iter().flat_map(|l| l.variables()).collect();
        if let Head::Atom(a) = &self.head {
            vars.extend(a.variables());
        }
        vars
    }

    /// Number of atoms in the body mentioning predicate `p`.
    pub fn count_body_atoms_of(&self, p: &PredRef) -> usize {
        self.body
            .iter()
            .filter_map(Literal::atom)
            .filter(|a| &a.pred == p)
            .count()
    }

    /// A copy with variables renamed to the canonical `V0, V1, …` in order
    /// of first occurrence (head first, then body, left to right).
    pub fn canonical_vars(&self) -> Rule {
        let mut map: std::collections::HashMap<String, String> = std::collections::HashMap::new();
        let mut rename = |t: &Term, map: &mut std::collections::HashMap<String, String>| match t {
            Term::Var(v) => {
                let n = map.len();
                Term::Var(
                    map.entry(v.clone())
                        .or_insert_with(|| format!("V{n}"))
                        .clone(),
                )
            }
            c => c.clone(),
        };
        let map_atom = |a: &Atom,
                        map: &mut std::collections::HashMap<String, String>,
                        rename: &mut dyn FnMut(
            &Term,
            &mut std::collections::HashMap<String, String>,
        ) -> Term| {
            Atom::new(
                a.pred.clone(),
                a.terms.iter().map(|t| rename(t, map)).collect(),
            )
        };
        let head = match &self.head {
            Head::Atom(a) => Head::Atom(map_atom(a, &mut map, &mut rename)),
            Head::Bottom => Head::Bottom,
        };
        let body = self
            .body
            .iter()
            .map(|l| match l {
                Literal::Atom { atom, negated } => Literal::Atom {
                    atom: map_atom(atom, &mut map, &mut rename),
                    negated: *negated,
                },
                Literal::Builtin {
                    op,
                    left,
                    right,
                    negated,
                } => Literal::Builtin {
                    op: *op,
                    left: rename(left, &mut map),
                    right: rename(right, &mut map),
                    negated: *negated,
                },
            })
            .collect();
        Rule { head, body }
    }

    /// Alpha-equivalence: equality up to a consistent renaming of
    /// variables.
    pub fn alpha_eq(&self, other: &Rule) -> bool {
        self.canonical_vars() == other.canonical_vars()
    }
}

/// A Datalog program: a finite, nonempty set of rules (kept in source
/// order).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Program {
    /// Rules in source order.
    pub rules: Vec<Rule>,
}

impl Program {
    /// Build a program from rules.
    pub fn new(rules: Vec<Rule>) -> Self {
        Program { rules }
    }

    /// Alpha-equivalence as rule *sets*: both programs contain the same
    /// rules up to consistent variable renaming and rule order.
    pub fn alpha_eq(&self, other: &Program) -> bool {
        let canon = |p: &Program| -> Vec<Rule> {
            let mut rules: Vec<Rule> = p.rules.iter().map(Rule::canonical_vars).collect();
            rules.sort_by_key(|r| r.to_string());
            rules
        };
        canon(self) == canon(other)
    }

    /// All rules that are integrity constraints.
    pub fn constraints(&self) -> impl Iterator<Item = &Rule> {
        self.rules.iter().filter(|r| r.is_constraint())
    }

    /// All non-constraint rules.
    pub fn proper_rules(&self) -> impl Iterator<Item = &Rule> {
        self.rules.iter().filter(|r| !r.is_constraint())
    }

    /// The set of IDB predicates: those occurring as a rule head.
    pub fn idb_predicates(&self) -> BTreeSet<PredRef> {
        self.rules
            .iter()
            .filter_map(|r| r.head.atom())
            .map(|a| a.pred.clone())
            .collect()
    }

    /// The set of EDB predicates: those occurring only in rule bodies.
    pub fn edb_predicates(&self) -> BTreeSet<PredRef> {
        let idb = self.idb_predicates();
        self.all_body_predicates()
            .into_iter()
            .filter(|p| !idb.contains(p))
            .collect()
    }

    /// All predicates occurring in any rule body.
    pub fn all_body_predicates(&self) -> BTreeSet<PredRef> {
        self.rules
            .iter()
            .flat_map(|r| r.body.iter())
            .filter_map(Literal::atom)
            .map(|a| a.pred.clone())
            .collect()
    }

    /// All predicates (heads and bodies).
    pub fn all_predicates(&self) -> BTreeSet<PredRef> {
        let mut s = self.all_body_predicates();
        s.extend(self.idb_predicates());
        s
    }

    /// Rules whose head predicate is `p`.
    pub fn rules_for<'a>(&'a self, p: &'a PredRef) -> impl Iterator<Item = &'a Rule> + 'a {
        self.rules
            .iter()
            .filter(move |r| r.head.atom().is_some_and(|a| &a.pred == p))
    }

    /// Arity of predicate `p` as used anywhere in the program (first use
    /// wins; [`crate::analysis::check_safety`] verifies consistency).
    pub fn arity_of(&self, p: &PredRef) -> Option<usize> {
        for rule in &self.rules {
            if let Some(a) = rule.head.atom() {
                if &a.pred == p {
                    return Some(a.arity());
                }
            }
            for lit in &rule.body {
                if let Some(a) = lit.atom() {
                    if &a.pred == p {
                        return Some(a.arity());
                    }
                }
            }
        }
        None
    }

    /// Merge another program's rules into this one.
    pub fn extend(&mut self, other: Program) {
        self.rules.extend(other.rules);
    }

    /// Number of rules (the paper's "program size (LOC)" metric).
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// `true` when the program has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom(p: PredRef, vars: &[&str]) -> Atom {
        Atom::new(p, vars.iter().map(|v| Term::var(*v)).collect())
    }

    #[test]
    fn predref_flat_names() {
        assert_eq!(PredRef::plain("r").flat_name(), "r");
        assert_eq!(PredRef::ins("r").flat_name(), "+r");
        assert_eq!(PredRef::del("r").flat_name(), "-r");
        assert_eq!(PredRef::new_rel("r").flat_name(), "r__new");
    }

    #[test]
    fn idb_edb_partition() {
        // -r1(X) :- r1(X), not v(X).
        let rule = Rule::new(
            atom(PredRef::del("r1"), &["X"]),
            vec![
                Literal::pos(atom(PredRef::plain("r1"), &["X"])),
                Literal::neg(atom(PredRef::plain("v"), &["X"])),
            ],
        );
        let p = Program::new(vec![rule]);
        assert!(p.idb_predicates().contains(&PredRef::del("r1")));
        assert!(p.edb_predicates().contains(&PredRef::plain("r1")));
        assert!(p.edb_predicates().contains(&PredRef::plain("v")));
    }

    #[test]
    fn cmp_eval() {
        use birds_store::Value;
        assert_eq!(CmpOp::Lt.eval(&Value::int(1), &Value::int(2)), Some(true));
        assert_eq!(
            CmpOp::Ge.eval(&Value::str("b"), &Value::str("a")),
            Some(true)
        );
        assert_eq!(CmpOp::Lt.eval(&Value::int(1), &Value::str("a")), None);
        assert_eq!(
            CmpOp::Eq.eval(&Value::int(1), &Value::str("1")),
            Some(false),
            "equality across sorts is simply false"
        );
    }

    #[test]
    fn anonymous_detection() {
        assert!(Term::var("_#0").is_anonymous());
        assert!(!Term::var("X").is_anonymous());
        assert!(!Term::constant(1).is_anonymous());
    }

    #[test]
    fn rule_variable_collection() {
        let rule = Rule::new(
            atom(PredRef::plain("h"), &["X"]),
            vec![
                Literal::pos(atom(PredRef::plain("r"), &["X", "Y"])),
                Literal::Builtin {
                    op: CmpOp::Gt,
                    left: Term::var("Z"),
                    right: Term::constant(1),
                    negated: false,
                },
            ],
        );
        let vars = rule.variables();
        assert_eq!(vars.into_iter().collect::<Vec<_>>(), vec!["X", "Y", "Z"]);
    }

    #[test]
    fn constraint_head() {
        let c = Rule::constraint(vec![Literal::pos(atom(PredRef::plain("v"), &["X"]))]);
        assert!(c.is_constraint());
        assert!(c.head.atom().is_none());
    }

    #[test]
    fn arity_lookup() {
        let p = Program::new(vec![Rule::new(
            atom(PredRef::plain("h"), &["X", "Y"]),
            vec![Literal::pos(atom(PredRef::plain("r"), &["X", "Y"]))],
        )]);
        assert_eq!(p.arity_of(&PredRef::plain("h")), Some(2));
        assert_eq!(p.arity_of(&PredRef::plain("r")), Some(2));
        assert_eq!(p.arity_of(&PredRef::plain("zzz")), None);
    }
}
