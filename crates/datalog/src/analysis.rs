//! Static analyses: safety (range restriction), arity consistency,
//! non-recursion and stratification.
//!
//! The paper's language is *non-recursive* Datalog with safe negation
//! (§2.1): every variable occurring in a negated atom or builtin must also
//! occur in a positive atom — we additionally let positive equalities
//! against constants (or against already-bound variables) bind variables,
//! which is how the paper itself uses equalities as guards (§3.2.1 and the
//! Appendix A.2 rewriting).

use crate::ast::{CmpOp, Head, Literal, PredRef, Program, Rule, Term};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Errors from static analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalysisError {
    /// A head / negated / builtin variable is not bound by any positive
    /// atom or grounding equality chain.
    UnsafeVariable { rule: String, variable: String },
    /// A predicate is used with two different arities.
    InconsistentArity {
        predicate: String,
        first: usize,
        second: usize,
    },
    /// The program's dependency graph has a cycle through the predicate.
    Recursive { predicate: String },
    /// A rule head uses a predicate also used as EDB input — specifically,
    /// a plain predicate cannot appear both as a head and as `+r`/`-r`
    /// target base... (not an error in general; reserved for engine-level
    /// checks). Currently unused placeholder kept out of the public enum.
    #[doc(hidden)]
    _Reserved,
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::UnsafeVariable { rule, variable } => {
                write!(f, "unsafe variable '{variable}' in rule: {rule}")
            }
            AnalysisError::InconsistentArity {
                predicate,
                first,
                second,
            } => write!(
                f,
                "predicate '{predicate}' used with arities {first} and {second}"
            ),
            AnalysisError::Recursive { predicate } => {
                write!(f, "program is recursive through predicate '{predicate}'")
            }
            AnalysisError::_Reserved => write!(f, "reserved"),
        }
    }
}

impl std::error::Error for AnalysisError {}

/// Compute the set of *bound* (range-restricted) variables of a rule body.
///
/// Seed: variables of positive atoms. Closure: a positive equality `X = t`
/// binds `X` when `t` is a constant or an already-bound variable (and
/// symmetrically).
pub fn binding_closure(rule: &Rule) -> BTreeSet<String> {
    let mut bound: BTreeSet<String> = rule
        .positive_atoms()
        .flat_map(|a| a.variables().into_iter().map(str::to_owned))
        .collect();
    loop {
        let mut changed = false;
        for lit in &rule.body {
            if let Literal::Builtin {
                op: CmpOp::Eq,
                left,
                right,
                negated: false,
            } = lit
            {
                let newly = match (left, right) {
                    (Term::Var(x), Term::Const(_)) => Some(x),
                    (Term::Const(_), Term::Var(x)) => Some(x),
                    (Term::Var(x), Term::Var(y)) => {
                        if bound.contains(x) && !bound.contains(y) {
                            Some(y)
                        } else if bound.contains(y) && !bound.contains(x) {
                            Some(x)
                        } else {
                            None
                        }
                    }
                    _ => None,
                };
                if let Some(v) = newly {
                    if bound.insert(v.clone()) {
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            return bound;
        }
    }
}

/// Check safety (range restriction) of every rule, plus arity consistency
/// across the program.
pub fn check_safety(program: &Program) -> Result<(), Vec<AnalysisError>> {
    let mut errors = Vec::new();

    // Arity consistency.
    let mut arities: BTreeMap<PredRef, usize> = BTreeMap::new();
    // Delta predicates must also agree with their base relation's arity.
    let mut base_arities: BTreeMap<String, usize> = BTreeMap::new();
    let mut record = |pred: &PredRef, arity: usize, errors: &mut Vec<AnalysisError>| {
        if let Some(&prev) = arities.get(pred) {
            if prev != arity {
                errors.push(AnalysisError::InconsistentArity {
                    predicate: pred.to_string(),
                    first: prev,
                    second: arity,
                });
            }
        } else {
            arities.insert(pred.clone(), arity);
        }
        if let Some(&prev) = base_arities.get(&pred.name) {
            if prev != arity {
                errors.push(AnalysisError::InconsistentArity {
                    predicate: pred.name.clone(),
                    first: prev,
                    second: arity,
                });
            }
        } else {
            base_arities.insert(pred.name.clone(), arity);
        }
    };
    for rule in &program.rules {
        if let Some(a) = rule.head.atom() {
            record(&a.pred, a.arity(), &mut errors);
        }
        for lit in &rule.body {
            if let Some(a) = lit.atom() {
                record(&a.pred, a.arity(), &mut errors);
            }
        }
    }

    // Range restriction.
    for rule in &program.rules {
        let bound = binding_closure(rule);
        let mut need: BTreeSet<&str> = BTreeSet::new();
        if let Head::Atom(a) = &rule.head {
            need.extend(a.variables());
        }
        for lit in &rule.body {
            match lit {
                Literal::Atom {
                    atom,
                    negated: true,
                } => {
                    // Anonymous variables inside a negated atom are
                    // existentially quantified *inside* the negation
                    // (`not ced(E, _)` reads `¬∃X ced(E, X)`), so they are
                    // exempt from range restriction.
                    need.extend(
                        atom.terms
                            .iter()
                            .filter(|t| !t.is_anonymous())
                            .filter_map(Term::as_var),
                    )
                }
                Literal::Builtin {
                    op,
                    left,
                    right,
                    negated,
                } => {
                    // A positive grounding equality is itself a binder; all
                    // other builtins (comparisons, negated equalities)
                    // require their variables bound.
                    let is_binder = *op == CmpOp::Eq && !*negated;
                    if !is_binder {
                        need.extend([left, right].into_iter().filter_map(Term::as_var));
                    }
                }
                _ => {}
            }
        }
        for v in need {
            if !bound.contains(v) {
                errors.push(AnalysisError::UnsafeVariable {
                    rule: rule.to_string(),
                    variable: v.to_owned(),
                });
            }
        }
    }

    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// Predicate dependency graph: edges from each head predicate to every
/// predicate in its rules' bodies.
pub fn dependency_graph(program: &Program) -> BTreeMap<PredRef, BTreeSet<PredRef>> {
    let mut graph: BTreeMap<PredRef, BTreeSet<PredRef>> = BTreeMap::new();
    for rule in &program.rules {
        let Some(head) = rule.head.atom() else {
            continue;
        };
        let entry = graph.entry(head.pred.clone()).or_default();
        for lit in &rule.body {
            if let Some(a) = lit.atom() {
                entry.insert(a.pred.clone());
            }
        }
    }
    graph
}

/// Check that the program is non-recursive (no cycle among IDB predicates).
pub fn check_nonrecursive(program: &Program) -> Result<(), AnalysisError> {
    let graph = dependency_graph(program);
    // Depth-first cycle detection restricted to IDB nodes.
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let mut marks: BTreeMap<&PredRef, Mark> = graph.keys().map(|k| (k, Mark::White)).collect();

    fn visit<'a>(
        node: &'a PredRef,
        graph: &'a BTreeMap<PredRef, BTreeSet<PredRef>>,
        marks: &mut BTreeMap<&'a PredRef, Mark>,
    ) -> Option<PredRef> {
        match marks.get(node) {
            Some(Mark::Black) | None => return None, // EDB or done
            Some(Mark::Grey) => return Some(node.clone()),
            Some(Mark::White) => {}
        }
        marks.insert(node, Mark::Grey);
        if let Some(deps) = graph.get(node) {
            for dep in deps {
                if let Some(cyc) = visit(dep, graph, marks) {
                    return Some(cyc);
                }
            }
        }
        marks.insert(node, Mark::Black);
        None
    }

    let nodes: Vec<&PredRef> = graph.keys().collect();
    for node in nodes {
        if let Some(pred) = visit(node, &graph, &mut marks) {
            return Err(AnalysisError::Recursive {
                predicate: pred.to_string(),
            });
        }
    }
    Ok(())
}

/// Stratification: a topological order of the IDB predicates such that
/// every predicate is preceded by everything it depends on (§5 Step 1).
///
/// For non-recursive programs this always exists; errors mirror
/// [`check_nonrecursive`].
pub fn stratify(program: &Program) -> Result<Vec<PredRef>, AnalysisError> {
    check_nonrecursive(program)?;
    let graph = dependency_graph(program);
    let idb: BTreeSet<&PredRef> = graph.keys().collect();
    let mut order = Vec::new();
    let mut done: BTreeSet<&PredRef> = BTreeSet::new();

    fn visit<'a>(
        node: &'a PredRef,
        graph: &'a BTreeMap<PredRef, BTreeSet<PredRef>>,
        idb: &BTreeSet<&'a PredRef>,
        done: &mut BTreeSet<&'a PredRef>,
        order: &mut Vec<PredRef>,
    ) {
        if done.contains(node) || !idb.contains(node) {
            return;
        }
        done.insert(node);
        if let Some(deps) = graph.get(node) {
            for dep in deps {
                // Look up the canonical reference inside the graph keys.
                if let Some((canon, _)) = graph.get_key_value(dep) {
                    visit(canon, graph, idb, done, order);
                }
            }
        }
        order.push(node.clone());
    }

    for node in graph.keys() {
        visit(node, &graph, &idb, &mut done, &mut order);
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_program, parse_rule};

    #[test]
    fn safe_program_passes() {
        let p = parse_program(
            "
            -r1(X) :- r1(X), not v(X).
            +r1(X) :- v(X), not r1(X), not r2(X).
            ",
        )
        .unwrap();
        assert!(check_safety(&p).is_ok());
    }

    #[test]
    fn unsafe_head_variable_detected() {
        let p = parse_program("h(X, Y) :- r(X).").unwrap();
        let errs = check_safety(&p).unwrap_err();
        assert!(errs.iter().any(|e| matches!(
            e,
            AnalysisError::UnsafeVariable { variable, .. } if variable == "Y"
        )));
    }

    #[test]
    fn unsafe_negated_variable_detected() {
        let p = parse_program("h(X) :- r(X), not s(X, Y).").unwrap();
        assert!(check_safety(&p).is_err());
    }

    #[test]
    fn equality_binds_variables() {
        // G is bound through G = 'unknown'; B through B = '00-00-00'.
        let p = parse_program(
            "+residents(E, B, G) :- retired(E), G = 'unknown', not residents(E, _, _), B = '00-00-00'.",
        )
        .unwrap();
        assert!(check_safety(&p).is_ok(), "{:?}", check_safety(&p));
    }

    #[test]
    fn transitive_equality_binding() {
        let p = parse_program("h(X, Y) :- r(X), Y = Z, Z = X.").unwrap();
        assert!(check_safety(&p).is_ok());
    }

    #[test]
    fn comparison_variables_must_be_bound() {
        let p = parse_program("h(X) :- r(X), Y > 2.").unwrap();
        assert!(check_safety(&p).is_err());
    }

    #[test]
    fn inconsistent_arity_detected() {
        let p = parse_program("h(X) :- r(X). g(X) :- r(X, X).").unwrap();
        let errs = check_safety(&p).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, AnalysisError::InconsistentArity { .. })));
    }

    #[test]
    fn delta_and_base_arity_must_agree() {
        let p = parse_program("h(X) :- +r(X), s(X). g(X, Y) :- r(X, Y), s(X).").unwrap();
        let errs = check_safety(&p).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, AnalysisError::InconsistentArity { .. })));
    }

    #[test]
    fn recursion_detected() {
        let p = parse_program("p(X) :- q(X). q(X) :- p(X).").unwrap();
        assert!(matches!(
            check_nonrecursive(&p),
            Err(AnalysisError::Recursive { .. })
        ));
        assert!(stratify(&p).is_err());
    }

    #[test]
    fn self_recursion_detected() {
        let p = parse_program("p(X) :- r(X), p(X).").unwrap();
        assert!(check_nonrecursive(&p).is_err());
    }

    #[test]
    fn stratification_orders_dependencies_first() {
        let p = parse_program(
            "
            a(X) :- b(X), c(X).
            b(X) :- d(X).
            c(X) :- d(X), not b(X).
            ",
        )
        .unwrap();
        let order = stratify(&p).unwrap();
        let pos = |n: &str| order.iter().position(|p| p.name == n).unwrap_or(usize::MAX);
        assert!(pos("b") < pos("a"));
        assert!(pos("c") < pos("a"));
        assert!(pos("b") < pos("c"));
    }

    #[test]
    fn case_study_residents_program_is_safe_and_stratifiable() {
        let p = parse_program(
            "
            +male(E, B) :- residents(E, B, 'M'), not male(E, B), not others(E, B, 'M').
            -male(E, B) :- male(E, B), not residents(E, B, 'M').
            +female(E, B) :- residents(E, B, G), G = 'F', not female(E, B), not others(E, B, G).
            -female(E, B) :- female(E, B), not residents(E, B, 'F').
            +others(E, B, G) :- residents(E, B, G), not G = 'M', not G = 'F', not others(E, B, G).
            -others(E, B, G) :- others(E, B, G), not residents(E, B, G).
            ",
        )
        .unwrap();
        assert!(check_safety(&p).is_ok(), "{:?}", check_safety(&p));
        assert!(stratify(&p).is_ok());
    }

    #[test]
    fn binding_closure_of_rule() {
        let r = parse_rule("h(X, Y) :- r(X), Y = 3, not s(Z), Z = X.").unwrap();
        let bound = binding_closure(&r);
        assert!(bound.contains("X") && bound.contains("Y") && bound.contains("Z"));
    }
}
