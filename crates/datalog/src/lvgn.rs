//! Classification into **LVGN-Datalog** (paper §3.2): non-recursive
//! guarded-negation Datalog with equalities, constants and comparisons,
//! under the *linear view* restriction.
//!
//! * **Guarded negation** (§3.2.1): for every atom / equality / comparison
//!   `L` occurring in the rule head or negated in the body, the body must
//!   have a guard — a positive atom (helped by positive constant
//!   equalities, exactly as in the Appendix A.2 rewriting) containing all
//!   variables of `L`.
//! * **Comparisons** are restricted to `X < c` / `X > c` (variable vs
//!   constant on totally ordered domains). We also admit the definable
//!   `<=` / `>=` forms.
//! * **Linear view** (Definition 3.2): the view predicate occurs only in
//!   rules defining delta relations (or in `⊥` constraints, §3.2.3); each
//!   such rule has at most one view atom; no anonymous variable occurs in
//!   the view atom.
//!
//! The checker returns *all* violations so Table-1 style reports can
//! explain exactly why a strategy falls outside the fragment.

use crate::analysis::{check_nonrecursive, check_safety};
use crate::ast::{CmpOp, Head, Literal, Program, Rule, Term};
use std::collections::BTreeSet;
use std::fmt;

/// A reason why a program is not in LVGN-Datalog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LvgnViolation {
    /// A head atom or negated literal has no guard.
    NotGuarded {
        /// Offending rule (pretty-printed).
        rule: String,
        /// Offending literal or head (pretty-printed).
        literal: String,
    },
    /// A comparison is not of the form `X op c`.
    BadComparison { rule: String, literal: String },
    /// The view predicate appears in a rule that defines neither a delta
    /// relation nor a constraint.
    ViewOutsideDeltaRules { rule: String },
    /// More than one view atom in a delta/constraint rule (self-join on
    /// the view).
    ViewSelfJoin { rule: String },
    /// An anonymous variable occurs in a view atom (projection on the
    /// view).
    ViewProjection { rule: String },
    /// The view predicate occurs in a rule head.
    ViewInHead { rule: String },
    /// The program is recursive or unsafe (LVGN requires non-recursive
    /// safe Datalog to begin with).
    NotValidDatalog { detail: String },
}

impl fmt::Display for LvgnViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LvgnViolation::NotGuarded { rule, literal } => {
                write!(
                    f,
                    "literal '{literal}' is not negation-guarded in rule: {rule}"
                )
            }
            LvgnViolation::BadComparison { rule, literal } => write!(
                f,
                "comparison '{literal}' is not of the form 'Var op constant' in rule: {rule}"
            ),
            LvgnViolation::ViewOutsideDeltaRules { rule } => write!(
                f,
                "view predicate used outside delta/constraint rules: {rule}"
            ),
            LvgnViolation::ViewSelfJoin { rule } => {
                write!(f, "self-join on the view in rule: {rule}")
            }
            LvgnViolation::ViewProjection { rule } => write!(
                f,
                "anonymous variable (projection) in a view atom in rule: {rule}"
            ),
            LvgnViolation::ViewInHead { rule } => {
                write!(f, "view predicate occurs in a rule head: {rule}")
            }
            LvgnViolation::NotValidDatalog { detail } => {
                write!(f, "not valid non-recursive safe Datalog: {detail}")
            }
        }
    }
}

/// Variables bound by positive constant equalities in the rule body
/// (these do not need to appear in an atom guard; see Appendix A.2).
fn const_bound_vars(rule: &Rule) -> BTreeSet<&str> {
    let mut bound = BTreeSet::new();
    for lit in &rule.body {
        if let Literal::Builtin {
            op: CmpOp::Eq,
            left,
            right,
            negated: false,
        } = lit
        {
            match (left, right) {
                (Term::Var(x), Term::Const(_)) => {
                    bound.insert(x.as_str());
                }
                (Term::Const(_), Term::Var(x)) => {
                    bound.insert(x.as_str());
                }
                _ => {}
            }
        }
    }
    bound
}

/// Does some single positive body atom contain all of `vars`?
fn has_guard(rule: &Rule, vars: &BTreeSet<&str>) -> bool {
    if vars.is_empty() {
        return true;
    }
    rule.positive_atoms()
        .any(|a| vars.iter().all(|v| a.variables().contains(v)))
}

/// Check the guarded-negation condition (§3.2.1) on every rule.
pub fn check_guarded_negation(program: &Program) -> Vec<LvgnViolation> {
    let mut violations = Vec::new();
    for rule in &program.rules {
        let cbound = const_bound_vars(rule);
        let check_lit =
            |vars: BTreeSet<&str>, display: String, violations: &mut Vec<LvgnViolation>| {
                let need: BTreeSet<&str> = vars.difference(&cbound).copied().collect();
                if !has_guard(rule, &need) {
                    violations.push(LvgnViolation::NotGuarded {
                        rule: rule.to_string(),
                        literal: display,
                    });
                }
            };
        if let Head::Atom(a) = &rule.head {
            check_lit(a.variables(), a.to_string(), &mut violations);
        }
        for lit in &rule.body {
            match lit {
                Literal::Atom {
                    atom,
                    negated: true,
                } => {
                    // Anonymous variables in a negated atom are inner
                    // existentials (`¬∃X ced(E, X)`); only the free
                    // variables need a guard.
                    let vars: BTreeSet<&str> = atom
                        .terms
                        .iter()
                        .filter(|t| !t.is_anonymous())
                        .filter_map(Term::as_var)
                        .collect();
                    check_lit(vars, atom.to_string(), &mut violations)
                }
                Literal::Builtin { negated: true, .. } => {
                    check_lit(lit.variables(), lit.to_string(), &mut violations)
                }
                _ => {}
            }
        }
        // Comparison form restriction: X op c only (op in <, >, <=, >=).
        for lit in &rule.body {
            if let Literal::Builtin {
                op, left, right, ..
            } = lit
            {
                if *op != CmpOp::Eq {
                    let ok = matches!(
                        (left, right),
                        (Term::Var(_), Term::Const(_)) | (Term::Const(_), Term::Var(_))
                    );
                    if !ok {
                        violations.push(LvgnViolation::BadComparison {
                            rule: rule.to_string(),
                            literal: lit.to_string(),
                        });
                    }
                }
            }
        }
    }
    violations
}

/// Check the linear-view restriction (Definition 3.2, extended to
/// constraints per §3.2.3) for view predicate `view`.
pub fn check_linear_view(program: &Program, view: &str) -> Vec<LvgnViolation> {
    let mut violations = Vec::new();
    for rule in &program.rules {
        if let Some(h) = rule.head.atom() {
            if h.pred.name == view {
                violations.push(LvgnViolation::ViewInHead {
                    rule: rule.to_string(),
                });
                continue;
            }
        }
        let is_delta_rule = rule.head.atom().is_some_and(|a| a.pred.is_delta());
        let is_constraint = rule.is_constraint();
        let view_atoms: Vec<_> = rule
            .body
            .iter()
            .filter_map(Literal::atom)
            .filter(|a| a.pred.name == view)
            .collect();
        if view_atoms.is_empty() {
            continue;
        }
        if !is_delta_rule && !is_constraint {
            violations.push(LvgnViolation::ViewOutsideDeltaRules {
                rule: rule.to_string(),
            });
            continue;
        }
        if view_atoms.len() > 1 {
            violations.push(LvgnViolation::ViewSelfJoin {
                rule: rule.to_string(),
            });
        }
        for atom in view_atoms {
            if atom.terms.iter().any(Term::is_anonymous) {
                violations.push(LvgnViolation::ViewProjection {
                    rule: rule.to_string(),
                });
            }
        }
    }
    violations
}

/// Full LVGN-Datalog membership check for a putback program over view
/// predicate `view`. Returns all violations; an empty list means the
/// program is in the fragment (and hence the paper's validation is both
/// sound and complete for it — Theorem 4.3).
pub fn check_lvgn(program: &Program, view: &str) -> Vec<LvgnViolation> {
    let mut violations = Vec::new();
    if let Err(errs) = check_safety(program) {
        violations.extend(errs.into_iter().map(|e| LvgnViolation::NotValidDatalog {
            detail: e.to_string(),
        }));
    }
    if let Err(e) = check_nonrecursive(program) {
        violations.push(LvgnViolation::NotValidDatalog {
            detail: e.to_string(),
        });
    }
    violations.extend(check_guarded_negation(program));
    violations.extend(check_linear_view(program, view));
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn example_3_2_is_guarded() {
        // h(X,Y,Z) :- r1(X,Y,Z), not Z = 1, not r2(X,Y,Z).
        let p = parse_program("h(X, Y, Z) :- r1(X, Y, Z), not Z = 1, not r2(X, Y, Z).").unwrap();
        assert!(check_guarded_negation(&p).is_empty());
    }

    #[test]
    fn unguarded_negation_detected() {
        // Negated atom joins variables from two different positive atoms:
        // no single positive atom contains both X and Y.
        let p = parse_program("h(X, Y) :- r(X), s(Y), not t(X, Y).").unwrap();
        let v = check_guarded_negation(&p);
        assert!(v
            .iter()
            .any(|x| matches!(x, LvgnViolation::NotGuarded { .. })));
    }

    #[test]
    fn unguarded_head_detected() {
        // Inner join: head contains X,Y,Z but no body atom has all three
        // (footnote 6 of the paper: inner join is not GN-Datalog).
        let p = parse_program("v(X, Y, Z) :- s1(X, Y), s2(Y, Z).").unwrap();
        let v = check_guarded_negation(&p);
        assert!(v
            .iter()
            .any(|x| matches!(x, LvgnViolation::NotGuarded { .. })));
    }

    #[test]
    fn primary_key_constraint_is_not_guarded() {
        // Footnote 7: ⊥ :- r(A,B1), r(A,B2), not B1 = B2 — the negated
        // equality B1 = B2 has no single-atom guard.
        let p = parse_program("false :- r(A, B1), r(A, B2), not B1 = B2.").unwrap();
        let v = check_guarded_negation(&p);
        assert!(v
            .iter()
            .any(|x| matches!(x, LvgnViolation::NotGuarded { .. })));
    }

    #[test]
    fn constant_equalities_help_guarding() {
        let p = parse_program("h(Z, X1) :- p(Z, W, X2), not r(W, X3), X1 = 1, X2 = 3, X3 = 4.")
            .unwrap();
        assert!(
            check_guarded_negation(&p).is_empty(),
            "{:?}",
            check_guarded_negation(&p)
        );
    }

    #[test]
    fn variable_variable_comparison_rejected() {
        let p = parse_program("h(X, Y) :- r(X, Y), X < Y.").unwrap();
        let v = check_guarded_negation(&p);
        assert!(v
            .iter()
            .any(|x| matches!(x, LvgnViolation::BadComparison { .. })));
    }

    #[test]
    fn example_3_3_linear_view() {
        // rule1 conforms; rule2 has projection; rule3 has self-join.
        let ok = parse_program("-r(X, Y, Z) :- r(X, Y, Z), not v(X, Y).").unwrap();
        assert!(check_linear_view(&ok, "v").is_empty());

        let proj = parse_program("-r(X, Y, Z) :- r(X, Y, Z), not v(X, _).").unwrap();
        assert!(check_linear_view(&proj, "v")
            .iter()
            .any(|x| matches!(x, LvgnViolation::ViewProjection { .. })));

        let sj = parse_program("+r(X, Y, Z) :- v(X, Y), v(Y, Z), not r(X, Y, Z).").unwrap();
        assert!(check_linear_view(&sj, "v")
            .iter()
            .any(|x| matches!(x, LvgnViolation::ViewSelfJoin { .. })));
    }

    #[test]
    fn view_allowed_in_constraints() {
        let p = parse_program("false :- v(X, Y, Z), Z > 2.").unwrap();
        assert!(check_linear_view(&p, "v").is_empty());
    }

    #[test]
    fn view_outside_delta_rules_detected() {
        let p = parse_program("m(X) :- v(X), r(X). -r(X) :- m(X).").unwrap();
        assert!(check_linear_view(&p, "v")
            .iter()
            .any(|x| matches!(x, LvgnViolation::ViewOutsideDeltaRules { .. })));
    }

    #[test]
    fn view_in_head_detected() {
        let p = parse_program("v(X) :- r(X).").unwrap();
        assert!(check_linear_view(&p, "v")
            .iter()
            .any(|x| matches!(x, LvgnViolation::ViewInHead { .. })));
    }

    #[test]
    fn union_strategy_is_lvgn() {
        let p = parse_program(
            "
            -r1(X) :- r1(X), not v(X).
            -r2(X) :- r2(X), not v(X).
            +r1(X) :- v(X), not r1(X), not r2(X).
            ",
        )
        .unwrap();
        assert!(check_lvgn(&p, "v").is_empty());
    }

    #[test]
    fn recursive_program_not_lvgn() {
        let p = parse_program("+r(X) :- v(X), not q(X). q(X) :- q(X).").unwrap();
        assert!(check_lvgn(&p, "v")
            .iter()
            .any(|x| matches!(x, LvgnViolation::NotValidDatalog { .. })));
    }
}
