//! Property-based tests for the Datalog front end: pretty-print → parse
//! round-trips, alpha-equivalence laws, and classification stability.

use birds_datalog::{
    check_lvgn, check_safety, parse_program, Atom, CmpOp, DeltaKind, Head, Literal, PredRef,
    Program, Rule, Term,
};
use proptest::prelude::*;

/// Generator for predicate names.
fn arb_pred_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,6}".prop_filter("reserved words", |s| {
        !matches!(s.as_str(), "not" | "false" | "true" | "and")
    })
}

/// Generator for variable names.
fn arb_var() -> impl Strategy<Value = String> {
    "[A-Z][A-Z0-9]{0,2}".prop_map(|s| s)
}

fn arb_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        arb_var().prop_map(Term::Var),
        (-50i64..50).prop_map(Term::constant),
        "[a-z0-9 -]{0,8}".prop_map(|s| Term::Const(s.into())),
    ]
}

fn arb_delta_kind() -> impl Strategy<Value = DeltaKind> {
    prop_oneof![
        Just(DeltaKind::None),
        Just(DeltaKind::Insert),
        Just(DeltaKind::Delete),
    ]
}

fn arb_atom() -> impl Strategy<Value = Atom> {
    (
        arb_pred_name(),
        arb_delta_kind(),
        proptest::collection::vec(arb_term(), 1..4),
    )
        .prop_map(|(name, kind, terms)| Atom::new(PredRef { name, kind }, terms))
}

fn arb_literal() -> impl Strategy<Value = Literal> {
    prop_oneof![
        (arb_atom(), any::<bool>()).prop_map(|(atom, negated)| Literal::Atom { atom, negated }),
        (
            prop_oneof![
                Just(CmpOp::Eq),
                Just(CmpOp::Lt),
                Just(CmpOp::Gt),
                Just(CmpOp::Le),
                Just(CmpOp::Ge)
            ],
            arb_var().prop_map(Term::Var),
            (-50i64..50).prop_map(Term::constant),
            any::<bool>(),
        )
            .prop_map(|(op, left, right, negated)| Literal::Builtin {
                op,
                left,
                right,
                negated,
            }),
    ]
}

/// Rules whose head may be ⊥ (constraint) or an atom; bodies are
/// arbitrary literal mixes. Safety is *not* guaranteed by construction —
/// round-tripping must work for unsafe programs too (the checker, not the
/// parser, rejects them).
fn arb_rule() -> impl Strategy<Value = Rule> {
    (
        prop_oneof![arb_atom().prop_map(Head::Atom), Just(Head::Bottom),],
        proptest::collection::vec(arb_literal(), 1..5),
    )
        .prop_map(|(head, body)| Rule { head, body })
}

fn arb_program() -> impl Strategy<Value = Program> {
    proptest::collection::vec(arb_rule(), 1..6).prop_map(Program::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// print → parse is the identity on ASTs.
    #[test]
    fn pretty_parse_roundtrip(program in arb_program()) {
        let text = program.to_string();
        let reparsed = parse_program(&text)
            .unwrap_or_else(|e| panic!("reparse failed on:\n{text}\n{e}"));
        prop_assert_eq!(program, reparsed);
    }

    /// Alpha-equivalence is reflexive and invariant under a global
    /// variable renaming.
    #[test]
    fn alpha_eq_respects_renaming(program in arb_program()) {
        prop_assert!(program.alpha_eq(&program));
        // Rename every variable V ↦ V_R.
        let renamed_text = {
            let mut p = program.clone();
            for rule in &mut p.rules {
                let rename = |t: &mut Term| {
                    if let Term::Var(v) = t {
                        if !v.starts_with('_') {
                            *v = format!("{v}R");
                        }
                    }
                };
                if let Head::Atom(a) = &mut rule.head {
                    a.terms.iter_mut().for_each(rename);
                }
                for lit in &mut rule.body {
                    match lit {
                        Literal::Atom { atom, .. } => {
                            atom.terms.iter_mut().for_each(rename)
                        }
                        Literal::Builtin { left, right, .. } => {
                            rename(left);
                            rename(right);
                        }
                    }
                }
            }
            p
        };
        prop_assert!(program.alpha_eq(&renamed_text),
            "alpha_eq must ignore a consistent renaming");
    }

    /// The safety check never panics and is deterministic.
    #[test]
    fn safety_check_is_deterministic(program in arb_program()) {
        let a = check_safety(&program).is_ok();
        let b = check_safety(&program).is_ok();
        prop_assert_eq!(a, b);
    }

    /// LVGN classification never panics and is stable under reprinting.
    #[test]
    fn lvgn_check_stable_under_roundtrip(program in arb_program()) {
        let before = check_lvgn(&program, "v").len();
        let text = program.to_string();
        let reparsed = parse_program(&text).unwrap();
        let after = check_lvgn(&reparsed, "v").len();
        prop_assert_eq!(before, after);
    }
}

/// Fixed-seed regressions for syntax corner cases the generator rarely
/// hits.
#[test]
fn corner_case_roundtrips() {
    for src in [
        "false :- v(X), X > 2.",
        "h(X) :- r(X, _), not s(_, X).",
        "+r(X) :- v(X), not r(X).",
        "-r(X, 'it''s') :- r(X, 'it''s'), not v(X).",
        "h('a b', -5) :- r('a b', -5).",
        "h(X) :- r(X), X = 'unknown'.",
    ] {
        let p = parse_program(src).unwrap_or_else(|e| panic!("{src}: {e}"));
        let text = p.to_string();
        let again = parse_program(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
        assert_eq!(p, again, "roundtrip drift on {src}");
    }
}
