//! Linear-view normal form (Claim 1 in Appendix A.5) and the construction
//! of the formulas `φ1`, `φ2`, `φ3` of Lemma 4.2.
//!
//! For an LVGN putback program, the *violation* formula of every
//! steady-state condition —
//!
//! * `ϕ₋ᵣ(~X) ∧ r(~X)` (a deletion would actually remove a tuple),
//! * `ϕ₊ᵣ(~X) ∧ ¬r(~X)` (an insertion would actually add a tuple),
//! * `Φσ(~X)` (a constraint is violated)
//!
//! — can be rewritten into the linear-view form
//! `(∨ₖ ∃E₁ₖ v(~Y₁ₖ) ∧ ψ₁ₖ) ∨ (∨ₖ ∃E₂ₖ ¬v(~Y₂ₖ) ∧ ψ₂ₖ) ∨ ψ₃` with the
//! view atom `v` occurring nowhere inside the `ψ`s. Collecting the pieces
//! over canonical view variables `Y0 … Ym−1` yields:
//!
//! * `φ1(~Y)`: a steady-state view must satisfy `∀~Y, v(~Y) → ¬φ1(~Y)`
//!   (upper bound on the view);
//! * `φ2(~Y)`: it must satisfy `∀~Y, φ2(~Y) → v(~Y)` (lower bound — this
//!   is the derived view definition `get`);
//! * `φ3`: a v-free sentence that must be unsatisfiable for any steady
//!   state to exist.

use crate::error::CoreError;
use crate::strategy::UpdateStrategy;
use birds_datalog::{DeltaKind, PredRef, Term};
use birds_fol::formula::FreshVars;
use birds_fol::{unfold_constraint, unfold_query, Formula};
use std::collections::BTreeMap;

/// Polarity of the view atom in a linear-view piece.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViewPolarity {
    /// Piece of the form `∃E, v(~Y) ∧ ψ` — contributes to `φ1`.
    Positive,
    /// Piece of the form `∃E, ¬v(~Y) ∧ ψ` — contributes to `φ2`.
    Negative,
    /// View-free piece — contributes to `φ3`.
    Free,
}

/// The assembled `φ1`, `φ2`, `φ3` of Lemma 4.2.
#[derive(Debug, Clone)]
pub struct LinearViewForm {
    /// Arity of the view.
    pub view_arity: usize,
    /// Canonical view variables `Y0 … Ym−1`.
    pub view_vars: Vec<String>,
    /// `φ1(~Y)` — the view's upper-bound violation formula.
    pub phi1: Formula,
    /// `φ2(~Y)` — the view's lower bound; the derived `get`.
    pub phi2: Formula,
    /// `φ3` — closed, view-free; must be unsatisfiable.
    pub phi3: Formula,
}

/// Build the linear-view form for an LVGN strategy.
pub fn linear_view_form(strategy: &UpdateStrategy) -> Result<LinearViewForm, CoreError> {
    let view = &strategy.view.name;
    let arity = strategy.view.arity();
    let view_vars: Vec<String> = (0..arity).map(|i| format!("Y{i}")).collect();
    let mut fresh = FreshVars::new();

    let mut pos: Vec<Formula> = Vec::new();
    let mut neg: Vec<Formula> = Vec::new();
    let mut free: Vec<Formula> = Vec::new();

    // Steady-state violation sentences per source relation (12).
    for schema in &strategy.source_schema.relations {
        let k = schema.arity();
        let xs: Vec<String> = (0..k).map(|i| format!("X{i}")).collect();
        let x_terms: Vec<Term> = xs.iter().map(|v| Term::var(v.clone())).collect();
        for kind in [DeltaKind::Delete, DeltaKind::Insert] {
            let pred = PredRef {
                name: schema.name.clone(),
                kind,
            };
            if strategy.putdelta.rules_for(&pred).next().is_none() {
                continue;
            }
            let (vars, phi) = unfold_query(&strategy.putdelta, &pred)?;
            debug_assert_eq!(vars, xs);
            let effect = Formula::Rel(PredRef::plain(&schema.name), x_terms.clone());
            let effect = if kind == DeltaKind::Delete {
                effect // ϕ₋ᵣ ∧ r
            } else {
                Formula::not(effect) // ϕ₊ᵣ ∧ ¬r
            };
            let sentence = Formula::exists(xs.clone(), Formula::and(vec![phi, effect]));
            classify(
                &sentence.alpha_rename(&mut fresh),
                view,
                arity,
                &view_vars,
                &mut fresh,
                &mut pos,
                &mut neg,
                &mut free,
            )?;
        }
    }

    // Constraint violation sentences (they join the same classification,
    // per the proof of Lemma 4.2).
    for rule in strategy.constraints() {
        let sentence = unfold_constraint(&strategy.putdelta, rule)?;
        classify(
            &sentence.alpha_rename(&mut fresh),
            view,
            arity,
            &view_vars,
            &mut fresh,
            &mut pos,
            &mut neg,
            &mut free,
        )?;
    }

    Ok(LinearViewForm {
        view_arity: arity,
        view_vars,
        phi1: Formula::or(pos),
        phi2: Formula::or(neg),
        phi3: Formula::or(free),
    })
}

/// Does the formula mention the view predicate anywhere?
fn mentions_view(f: &Formula, view: &str) -> bool {
    match f {
        Formula::Rel(p, _) => p.kind == DeltaKind::None && p.name == view,
        Formula::Cmp(..) | Formula::True | Formula::False => false,
        Formula::Not(inner) => mentions_view(inner, view),
        Formula::And(fs) | Formula::Or(fs) => fs.iter().any(|g| mentions_view(g, view)),
        Formula::Exists(_, inner) | Formula::Forall(_, inner) => mentions_view(inner, view),
    }
}

/// One disjunct in v-DNF: existential variables plus conjuncts.
type Piece = (Vec<String>, Vec<Formula>);

/// Split a (view-mentioning or not) formula into disjunct pieces,
/// distributing conjunction over disjunction only along view-mentioning
/// paths.
fn split(f: &Formula, view: &str) -> Result<Vec<Piece>, CoreError> {
    if !mentions_view(f, view) {
        return Ok(vec![(vec![], vec![f.clone()])]);
    }
    match f {
        Formula::Or(fs) => {
            let mut out = Vec::new();
            for g in fs {
                out.extend(split(g, view)?);
            }
            Ok(out)
        }
        Formula::And(fs) => {
            let mut acc: Vec<Piece> = vec![(vec![], vec![])];
            for g in fs {
                let parts = split(g, view)?;
                let mut next = Vec::with_capacity(acc.len() * parts.len());
                for (evars, conj) in &acc {
                    for (pe, pc) in &parts {
                        let mut e = evars.clone();
                        e.extend(pe.iter().cloned());
                        let mut c = conj.clone();
                        c.extend(pc.iter().cloned());
                        next.push((e, c));
                    }
                }
                acc = next;
            }
            Ok(acc)
        }
        Formula::Exists(vars, inner) => {
            let mut out = split(inner, view)?;
            for (evars, _) in &mut out {
                let mut v = vars.clone();
                v.append(evars);
                *evars = v;
            }
            Ok(out)
        }
        Formula::Rel(..) | Formula::Not(_) => Ok(vec![(vec![], vec![f.clone()])]),
        other => Err(CoreError::Logic(format!(
            "cannot put formula into linear-view form: unexpected node {other}"
        ))),
    }
}

/// Classify the disjuncts of a closed violation sentence into the
/// `φ1`/`φ2`/`φ3` buckets over the canonical view variables.
#[allow(clippy::too_many_arguments)]
fn classify(
    sentence: &Formula,
    view: &str,
    arity: usize,
    view_vars: &[String],
    fresh: &mut FreshVars,
    pos: &mut Vec<Formula>,
    neg: &mut Vec<Formula>,
    free: &mut Vec<Formula>,
) -> Result<(), CoreError> {
    for (evars, conjuncts) in split(sentence, view)? {
        // Locate the (single) view literal.
        let mut view_args: Option<(ViewPolarity, Vec<Term>)> = None;
        let mut psi: Vec<Formula> = Vec::new();
        for c in conjuncts {
            let as_view = match &c {
                Formula::Rel(p, terms) if p.kind == DeltaKind::None && p.name == view => {
                    Some((ViewPolarity::Positive, terms.clone()))
                }
                Formula::Not(inner) => match &**inner {
                    Formula::Rel(p, terms) if p.kind == DeltaKind::None && p.name == view => {
                        Some((ViewPolarity::Negative, terms.clone()))
                    }
                    other if mentions_view(other, view) => {
                        return Err(CoreError::Logic(format!(
                            "view occurs under complex negation: ¬({other})"
                        )))
                    }
                    _ => None,
                },
                other if mentions_view(other, view) => {
                    return Err(CoreError::Logic(format!(
                        "view occurs in a non-literal position: {other}"
                    )))
                }
                _ => None,
            };
            match as_view {
                Some(va) => {
                    if view_args.is_some() {
                        return Err(CoreError::Logic(
                            "multiple view atoms in one disjunct (self-join)".into(),
                        ));
                    }
                    if va.1.len() != arity {
                        return Err(CoreError::Logic(format!(
                            "view atom has arity {} but the view has arity {arity}",
                            va.1.len()
                        )));
                    }
                    view_args = Some(va);
                }
                None => psi.push(c),
            }
        }

        match view_args {
            None => {
                free.push(Formula::exists(evars, Formula::and(psi)));
            }
            Some((polarity, args)) => {
                let piece = canonicalize_piece(&args, evars, Formula::and(psi), view_vars, fresh);
                match polarity {
                    ViewPolarity::Positive => pos.push(piece),
                    ViewPolarity::Negative => neg.push(piece),
                    ViewPolarity::Free => unreachable!(),
                }
            }
        }
    }
    Ok(())
}

/// Rewrite a piece `∃E, v(args) ∧ ψ` over the canonical view variables:
/// the j-th view argument becomes `Yj` (repeated variables and constants
/// turn into equalities), remaining existentials stay quantified.
fn canonicalize_piece(
    args: &[Term],
    evars: Vec<String>,
    psi: Formula,
    view_vars: &[String],
    fresh: &mut FreshVars,
) -> Formula {
    let mut map: BTreeMap<String, Term> = BTreeMap::new();
    let mut eqs: Vec<Formula> = Vec::new();
    for (j, arg) in args.iter().enumerate() {
        let yj = Term::var(view_vars[j].clone());
        match arg {
            Term::Var(x) => {
                if let Some(first) = map.get(x) {
                    eqs.push(Formula::eq(yj, first.clone()));
                } else {
                    map.insert(x.clone(), yj);
                }
            }
            Term::Const(c) => eqs.push(Formula::eq(yj, Term::Const(*c))),
        }
    }
    let psi = psi.substitute(&map, fresh);
    let remaining: Vec<String> = evars.into_iter().filter(|v| !map.contains_key(v)).collect();
    Formula::exists(remaining, Formula::and([eqs, vec![psi]].concat()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use birds_store::{DatabaseSchema, Schema, SortKind};

    fn union_strategy() -> UpdateStrategy {
        UpdateStrategy::parse(
            DatabaseSchema::new()
                .with(Schema::new("r1", vec![("a", SortKind::Int)]))
                .with(Schema::new("r2", vec![("a", SortKind::Int)])),
            Schema::new("v", vec![("a", SortKind::Int)]),
            "
            -r1(X) :- r1(X), not v(X).
            -r2(X) :- r2(X), not v(X).
            +r1(X) :- v(X), not r1(X), not r2(X).
            ",
            None,
        )
        .unwrap()
    }

    #[test]
    fn union_example_4_1_shapes() {
        let lv = linear_view_form(&union_strategy()).unwrap();
        assert_eq!(lv.view_arity, 1);
        // φ3 must be empty (False): no view-free violations.
        assert_eq!(lv.phi3, Formula::False);
        // φ2 = r1(Y0) ∨ r2(Y0) up to structure: two disjuncts mentioning r1
        // and r2.
        let s2 = lv.phi2.to_string();
        assert!(s2.contains("r1(Y0)") && s2.contains("r2(Y0)"), "{s2}");
        // φ1 = ¬r1 ∧ ¬r2 piece (from +r1 with ¬r applied).
        let s1 = lv.phi1.to_string();
        assert!(s1.contains("¬(r1(Y0))") && s1.contains("¬(r2(Y0))"), "{s1}");
        // Free variables are exactly the canonical view variables.
        assert_eq!(
            lv.phi2.free_vars().into_iter().collect::<Vec<_>>(),
            vec!["Y0".to_string()]
        );
        assert!(lv.phi3.free_vars().is_empty());
    }

    #[test]
    fn constraints_classify_into_phi1() {
        // ⊥ :- v(X), X > 2 — a positive-view constraint lands in φ1.
        let s = UpdateStrategy::parse(
            DatabaseSchema::new().with(Schema::new("r", vec![("a", SortKind::Int)])),
            Schema::new("v", vec![("a", SortKind::Int)]),
            "
            false :- v(X), X > 2.
            -r(X) :- r(X), not v(X).
            +r(X) :- v(X), not r(X).
            ",
            None,
        )
        .unwrap();
        let lv = linear_view_form(&s).unwrap();
        let s1 = lv.phi1.to_string();
        assert!(s1.contains("> 2"), "constraint must appear in φ1: {s1}");
    }

    #[test]
    fn view_constants_become_equalities() {
        // -male(E,B) :- male(E,B), not residents(E,B,'M').  — the view
        // atom has the constant 'M' in position 2.
        let s = UpdateStrategy::parse(
            DatabaseSchema::new().with(Schema::new(
                "male",
                vec![("e", SortKind::Str), ("b", SortKind::Str)],
            )),
            Schema::new(
                "residents",
                vec![
                    ("e", SortKind::Str),
                    ("b", SortKind::Str),
                    ("g", SortKind::Str),
                ],
            ),
            "
            -male(E, B) :- male(E, B), not residents(E, B, 'M').
            +male(E, B) :- residents(E, B, 'M'), not male(E, B).
            ",
            None,
        )
        .unwrap();
        let lv = linear_view_form(&s).unwrap();
        let s2 = lv.phi2.to_string();
        assert!(s2.contains("Y2 = 'M'"), "{s2}");
    }

    #[test]
    fn selection_strategy_phi2_carries_the_condition() {
        // Example 5.2's source strategy.
        let s = UpdateStrategy::parse(
            DatabaseSchema::new().with(Schema::new(
                "r",
                vec![("x", SortKind::Int), ("y", SortKind::Int)],
            )),
            Schema::new("v", vec![("x", SortKind::Int), ("y", SortKind::Int)]),
            "
            +r(X, Y) :- v(X, Y), not r(X, Y).
            m(X, Y) :- r(X, Y), Y > 2.
            -r(X, Y) :- m(X, Y), not v(X, Y).
            ",
            None,
        )
        .unwrap();
        let lv = linear_view_form(&s).unwrap();
        let s2 = lv.phi2.to_string();
        // φ2 comes from the -r rule: m(X,Y) ∧ r(X,Y) with m unfolded.
        assert!(s2.contains("> 2"), "{s2}");
        assert!(!s2.contains("m("), "intermediate must be inlined: {s2}");
    }

    #[test]
    fn mentions_view_is_accurate() {
        let f = Formula::exists(
            vec!["X".into()],
            Formula::not(Formula::Rel(PredRef::plain("v"), vec![Term::var("X")])),
        );
        assert!(mentions_view(&f, "v"));
        assert!(!mentions_view(&f, "w"));
    }
}
