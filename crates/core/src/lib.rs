//! # birds-core
//!
//! The core of the BIRDS reproduction: everything §4 and §5 of the paper
//! describe.
//!
//! * [`strategy::UpdateStrategy`] — a user-written view update strategy: a
//!   source schema, a view, a Datalog putback program (`putdelta`, possibly
//!   with integrity constraints) and optionally the expected view
//!   definition.
//! * [`validate()`] — the three-pass validation of Algorithm 1:
//!   well-definedness (Definition 3.1 via the rules (2) of §4.2), existence
//!   of a view definition satisfying **GetPut** (the steady-state
//!   construction of Lemma 4.2, with automatic derivation of `get` from the
//!   formula `φ2`), and the **PutGet** property (§4.4). For LVGN-Datalog
//!   programs the procedure is sound and complete (Theorem 4.3) relative to
//!   the bounded solver's domain bound.
//! * [`incremental`] — the incrementalization of §5: the LVGN shortcut of
//!   Lemma 5.2 and the general binarize-then-rewrite pipeline of
//!   Appendix C (Figure 7).
//! * [`putget`] — construction of the `newsource` / `putget` programs used
//!   by the PutGet check (§4.4), shared with the engine's runtime.

pub mod error;
pub mod incremental;
pub mod linear_view;
pub mod putget;
pub mod strategy;
pub mod validate;

pub use error::CoreError;
pub use incremental::{incrementalize, incrementalize_general, incrementalize_lvgn};
pub use linear_view::{LinearViewForm, ViewPolarity};
pub use putget::{build_newsource_rules, build_putget_program};
pub use strategy::UpdateStrategy;
pub use validate::{validate, ValidationReport, Validator};
