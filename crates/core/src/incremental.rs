//! Incrementalization of putback programs (§5, Appendix C).
//!
//! Two paths:
//!
//! * [`incrementalize_lvgn`] — Lemma 5.2: for LVGN programs the
//!   incremental program is obtained by substituting `+v` for positive
//!   view atoms and `-v` for negated ones in the delta rules. We
//!   additionally inline intermediate IDB predicates into the delta rules
//!   — this plays the role of PostgreSQL's query planner in the paper's
//!   setup (which inlines trigger subqueries and drives the join from the
//!   tiny delta), and is what makes the Figure-6 incremental curves flat.
//! * [`incrementalize_general`] — the Appendix C pipeline: binarize every
//!   rule into join / selection / negation / projection / union stages
//!   (Lemma C.1), derive per-stage delta and ν ("new value") rules by the
//!   Figure 7 templates, and keep only the insertion sets of the output
//!   delta relations (Proposition 5.1, Step 4). The general program is
//!   correctness-oriented: stage relations are recomputed from the
//!   original source, so it does not have the LVGN path's constant-time
//!   profile (none of the paper's Figure-6 views need it — all four are
//!   LVGN).
//!
//! Inputs of an incremental program at evaluation time: the source
//! relations, the *old* view `v`, and the view deltas `+v` / `-v`
//! (disjoint). Output: the delta relations `±r` to apply to the source.

use crate::error::CoreError;
use crate::strategy::UpdateStrategy;
use birds_datalog::{Atom, CmpOp, DeltaKind, Head, Literal, PredRef, Program, Rule, Term};
use std::collections::{BTreeMap, BTreeSet};

/// Incrementalize with the best applicable method.
pub fn incrementalize(strategy: &UpdateStrategy) -> Result<Program, CoreError> {
    if strategy.is_lvgn() {
        incrementalize_lvgn(strategy)
    } else {
        incrementalize_general(strategy)
    }
}

// --------------------------------------------------------------------
// LVGN shortcut (Lemma 5.2)
// --------------------------------------------------------------------

/// Lemma 5.2 substitution plus planner-style inlining of intermediates.
pub fn incrementalize_lvgn(strategy: &UpdateStrategy) -> Result<Program, CoreError> {
    if !strategy.is_lvgn() {
        return Err(CoreError::BadStrategy(
            "the LVGN incrementalization shortcut requires an LVGN program".into(),
        ));
    }
    let view = &strategy.view.name;
    // Work on delta + intermediate rules only (constraints are enforced by
    // the runtime on the updated view, not by the delta computation).
    let mut program = Program::new(
        strategy
            .putdelta
            .proper_rules()
            .cloned()
            .collect::<Vec<_>>(),
    );
    inline_intermediates(&mut program)?;
    inline_negated_intermediates(&mut program);

    // Substitute the view atoms in delta rules.
    for rule in &mut program.rules {
        let Some(h) = rule.head.atom() else { continue };
        if !h.pred.is_delta() {
            continue;
        }
        for lit in &mut rule.body {
            if let Literal::Atom { atom, negated } = lit {
                if atom.pred.kind == DeltaKind::None && atom.pred.name == *view {
                    let kind = if *negated {
                        DeltaKind::Delete
                    } else {
                        DeltaKind::Insert
                    };
                    atom.pred = PredRef {
                        name: view.clone(),
                        kind,
                    };
                    *negated = false;
                }
            }
        }
    }
    drop_unused_intermediates(&mut program);
    Ok(program)
}

/// Inline positive occurrences of intermediate IDB predicates into delta
/// rules (multi-rule definitions multiply the host rule). Negated
/// intermediates are left in place (their defining rules are kept).
fn inline_intermediates(program: &mut Program) -> Result<(), CoreError> {
    let mut counter = 0usize;
    for _round in 0..16 {
        let idb = program.idb_predicates();
        let intermediates: BTreeSet<PredRef> = idb
            .into_iter()
            .filter(|p| p.kind == DeltaKind::None)
            .collect();
        let mut changed = false;
        let mut new_rules: Vec<Rule> = Vec::new();
        for rule in &program.rules {
            let target = rule.body.iter().position(|l| {
                matches!(l, Literal::Atom { atom, negated: false }
                    if intermediates.contains(&atom.pred))
            });
            let (Some(pos), Some(h)) = (target, rule.head.atom()) else {
                new_rules.push(rule.clone());
                continue;
            };
            // Only inline into delta rules or rules already hosting deltas;
            // intermediates defined from other intermediates also qualify.
            let _ = h;
            let Literal::Atom { atom, .. } = &rule.body[pos] else {
                unreachable!()
            };
            let defs: Vec<Rule> = program.rules_for(&atom.pred).cloned().collect();
            let mut ok = true;
            let mut expansions = Vec::new();
            for def in &defs {
                let Some(dh) = def.head.atom() else {
                    ok = false;
                    break;
                };
                let head_vars: Vec<&str> = dh.terms.iter().filter_map(Term::as_var).collect();
                if head_vars.len() != dh.terms.len()
                    || head_vars.iter().collect::<BTreeSet<_>>().len() != head_vars.len()
                {
                    ok = false; // constants / repeated vars in def head
                    break;
                }
                let mut map: BTreeMap<String, Term> = head_vars
                    .iter()
                    .zip(atom.terms.iter())
                    .map(|(v, t)| ((*v).to_string(), t.clone()))
                    .collect();
                let outer: BTreeSet<&str> = rule.variables().into_iter().collect();
                for v in def.variables() {
                    if !map.contains_key(v) {
                        counter += 1;
                        let mut name = format!("IN{counter}_{v}");
                        name.retain(|c| c.is_alphanumeric() || c == '_');
                        while outer.contains(name.as_str()) {
                            counter += 1;
                            name = format!("IN{counter}_{v}");
                        }
                        // Preserve anonymity of anonymous variables so the
                        // inlined literal keeps inner-existential reading.
                        let fresh = if v.starts_with("_#") {
                            format!("_#in{counter}")
                        } else {
                            name
                        };
                        map.insert(v.to_owned(), Term::Var(fresh));
                    }
                }
                let subst = |t: &Term| match t {
                    Term::Var(v) => map.get(v).cloned().unwrap_or_else(|| t.clone()),
                    Term::Const(_) => t.clone(),
                };
                let mut body = Vec::new();
                for (i, l) in rule.body.iter().enumerate() {
                    if i == pos {
                        for dl in &def.body {
                            body.push(match dl {
                                Literal::Atom { atom, negated } => Literal::Atom {
                                    atom: Atom::new(
                                        atom.pred.clone(),
                                        atom.terms.iter().map(subst).collect(),
                                    ),
                                    negated: *negated,
                                },
                                Literal::Builtin {
                                    op,
                                    left,
                                    right,
                                    negated,
                                } => Literal::Builtin {
                                    op: *op,
                                    left: subst(left),
                                    right: subst(right),
                                    negated: *negated,
                                },
                            });
                        }
                    } else {
                        body.push(l.clone());
                    }
                }
                expansions.push(Rule {
                    head: rule.head.clone(),
                    body,
                });
            }
            if ok && !defs.is_empty() {
                changed = true;
                new_rules.extend(expansions);
            } else {
                new_rules.push(rule.clone());
            }
        }
        program.rules = new_rules;
        if !changed {
            break;
        }
    }
    Ok(())
}

/// Inline *negated* occurrences of simple intermediate predicates.
///
/// `¬p(~t)` where `p` is defined by exactly one rule whose body is a
/// single positive atom `q(~u)` (no builtins, no negation) rewrites to
/// `¬q(~u[σ])`, with defining-body variables that are existential in the
/// definition becoming anonymous variables — preserving the
/// `¬∃` reading. This is what lets the runtime plan `∂put` rules without
/// materializing the intermediate (an `O(|S|)` scan per update
/// otherwise).
fn inline_negated_intermediates(program: &mut Program) {
    loop {
        let idb = program.idb_predicates();
        let intermediates: BTreeSet<PredRef> = idb
            .into_iter()
            .filter(|p| p.kind == DeltaKind::None)
            .collect();
        let mut changed = false;
        let rules_snapshot = program.rules.clone();
        for rule in &mut program.rules {
            for lit in &mut rule.body {
                let Literal::Atom {
                    atom,
                    negated: true,
                } = lit
                else {
                    continue;
                };
                if !intermediates.contains(&atom.pred) {
                    continue;
                }
                let defs: Vec<&Rule> = rules_snapshot
                    .iter()
                    .filter(|r| r.head.atom().is_some_and(|h| h.pred == atom.pred))
                    .collect();
                let [def] = defs.as_slice() else { continue };
                let Some(dh) = def.head.atom() else { continue };
                // Single positive-atom body only.
                let [Literal::Atom {
                    atom: def_atom,
                    negated: false,
                }] = def.body.as_slice()
                else {
                    continue;
                };
                // Distinct-variable head.
                let head_vars: Vec<&str> = dh.terms.iter().filter_map(Term::as_var).collect();
                if head_vars.len() != dh.terms.len()
                    || head_vars.iter().collect::<BTreeSet<_>>().len() != head_vars.len()
                {
                    continue;
                }
                let map: BTreeMap<&str, &Term> =
                    head_vars.iter().copied().zip(atom.terms.iter()).collect();
                let mut anon = 0usize;
                let new_terms: Vec<Term> = def_atom
                    .terms
                    .iter()
                    .map(|t| match t {
                        Term::Var(v) => {
                            map.get(v.as_str()).map(|&t| t.clone()).unwrap_or_else(|| {
                                // Existential in the definition: anonymous
                                // in the negated literal.
                                anon += 1;
                                Term::Var(format!("_#neg{anon}"))
                            })
                        }
                        Term::Const(_) => t.clone(),
                    })
                    .collect();
                *atom = Atom::new(def_atom.pred.clone(), new_terms);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
}

/// Remove intermediate rules no delta rule (transitively) references.
fn drop_unused_intermediates(program: &mut Program) {
    let mut needed: BTreeSet<PredRef> = BTreeSet::new();
    let mut stack: Vec<PredRef> = program
        .rules
        .iter()
        .filter_map(|r| r.head.atom())
        .filter(|a| a.pred.is_delta())
        .map(|a| a.pred.clone())
        .collect();
    while let Some(p) = stack.pop() {
        if !needed.insert(p.clone()) {
            continue;
        }
        for rule in program.rules_for(&p) {
            for lit in &rule.body {
                if let Some(a) = lit.atom() {
                    stack.push(a.pred.clone());
                }
            }
        }
    }
    program.rules.retain(|r| match r.head.atom() {
        Some(a) => needed.contains(&a.pred),
        None => false,
    });
}

// --------------------------------------------------------------------
// General path (Appendix C)
// --------------------------------------------------------------------

/// The shape of a binarized stage (Lemma C.1 normal form).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StageKind {
    /// `h(~X∪~Y) :- p(~X), q(~Y).` — head carries *all* body variables.
    Join,
    /// `h(~X') :- p(~X), builtins.` — may add equality-bound variables.
    Selection,
    /// `h(~X) :- p(~X), not n(~Y).` with `vars(n) ⊆ vars(p)`.
    Negation,
    /// `h(~T) :- p(~X).` where some variable of `p` is dropped.
    Projection,
    /// `h(~T) :- p(~X).` one-to-one (rename / duplicate / constants).
    Copy,
}

#[derive(Debug, Clone)]
struct Stage {
    kind: StageKind,
    rule: Rule,
}

/// General incrementalization: binarize, rewrite with the Figure 7
/// templates, keep insertion sets of the outputs (Proposition 5.1).
pub fn incrementalize_general(strategy: &UpdateStrategy) -> Result<Program, CoreError> {
    let view = &strategy.view.name;
    let base: Vec<Rule> = strategy.putdelta.proper_rules().cloned().collect();
    let stages = binarize(&base)?;

    // Which stage predicates (transitively) depend on the view?
    let changed = changed_predicates(&stages, view);

    let view_pred = PredRef::plain(view);
    let mut out: Vec<Rule> = Vec::new();

    // ν-rules for the view itself: v__new = (v \ -v) ∪ +v.
    {
        let vars: Vec<Term> = (0..strategy.view.arity())
            .map(|i| Term::var(format!("X{i}")))
            .collect();
        let head = Atom::new(PredRef::new_rel(view), vars.clone());
        out.push(Rule::new(
            head.clone(),
            vec![
                Literal::pos(Atom::new(view_pred.clone(), vars.clone())),
                Literal::neg(Atom::new(PredRef::del(view), vars.clone())),
            ],
        ));
        out.push(Rule::new(
            head,
            vec![Literal::pos(Atom::new(PredRef::ins(view), vars))],
        ));
    }

    // Old-value rules for every non-sink stage predicate (sinks ±r are
    // outputs only; nothing reads their old value).
    for s in &stages {
        let h = s.rule.head.atom().expect("stages have atom heads");
        if h.pred.is_delta() {
            continue;
        }
        out.push(s.rule.clone());
    }

    // Per-stage delta / ν rules.
    let ctx = TemplateCtx {
        view: view.clone(),
        changed: &changed,
    };
    for s in &stages {
        let h = s.rule.head.atom().unwrap();
        let is_sink = h.pred.is_delta();
        if !changed.contains(&h.pred) {
            continue; // unchanged: no deltas, ν resolves to the old value
        }
        let union_siblings: Vec<&Stage> = stages
            .iter()
            .filter(|t| t.rule.head.atom().unwrap().pred == h.pred)
            .collect();
        emit_stage_templates(s, &union_siblings, &ctx, is_sink, &mut out)?;
    }

    // Outputs: rename +(±r) to ±r (Step 4 / Proposition 5.1).
    for rule in &mut out {
        if let Head::Atom(a) = &mut rule.head {
            if a.pred.kind == DeltaKind::Insert {
                if let Some(inner) = parse_delta_name(&a.pred.name) {
                    a.pred = inner;
                }
            }
        }
    }
    // Drop any remaining nested-delta rules (deletion sets of outputs).
    out.retain(|r| match r.head.atom() {
        Some(a) => parse_delta_name(&a.pred.name).is_none(),
        None => true,
    });

    Ok(Program::new(out))
}

/// If `name` is a flat delta name ("+r" / "-r"), the corresponding
/// predicate.
fn parse_delta_name(name: &str) -> Option<PredRef> {
    if let Some(rest) = name.strip_prefix('+') {
        Some(PredRef::ins(rest))
    } else {
        name.strip_prefix('-').map(PredRef::del)
    }
}

/// Delta predicate of a (possibly already-delta) predicate: `Δ⁺p` / `Δ⁻p`
/// via name flattening (`+(+r)` becomes `++r`).
fn delta_pred(p: &PredRef, kind: DeltaKind) -> PredRef {
    PredRef {
        name: p.flat_name(),
        kind,
    }
}

/// ν (post-update) predicate of `p`: identity for unchanged predicates.
fn nu_pred(p: &PredRef, changed: &BTreeSet<PredRef>, view: &str) -> PredRef {
    if p.kind == DeltaKind::None && p.name == view {
        return PredRef::new_rel(view);
    }
    if changed.contains(p) {
        PredRef::new_rel(p.flat_name())
    } else {
        p.clone()
    }
}

/// Does `p` have (possibly empty) delta relations? Only the view and
/// changed predicates do; unchanged predicates have empty deltas, so any
/// template rule positively referencing them is dropped.
fn has_delta(p: &PredRef, changed: &BTreeSet<PredRef>, view: &str) -> bool {
    (p.kind == DeltaKind::None && p.name == view) || changed.contains(p)
}

struct TemplateCtx<'a> {
    view: String,
    changed: &'a BTreeSet<PredRef>,
}

impl TemplateCtx<'_> {
    fn delta_atom(&self, a: &Atom, kind: DeltaKind) -> Option<Literal> {
        if !has_delta(&a.pred, self.changed, &self.view) {
            return None;
        }
        Some(Literal::pos(Atom::new(
            delta_pred(&a.pred, kind),
            a.terms.clone(),
        )))
    }

    fn nu_atom(&self, a: &Atom, negated: bool) -> Literal {
        Literal::Atom {
            atom: Atom::new(nu_pred(&a.pred, self.changed, &self.view), a.terms.clone()),
            negated,
        }
    }
}

/// Emit Figure 7 template rules for one stage. For sink (±r output)
/// stages only the insertion side is generated, and the `¬h` guard of the
/// projection template is dropped: over-inserting a steady-state no-op
/// tuple is harmless by GetPut (Proposition 5.1).
fn emit_stage_templates(
    stage: &Stage,
    union_siblings: &[&Stage],
    ctx: &TemplateCtx<'_>,
    is_sink: bool,
    out: &mut Vec<Rule>,
) -> Result<(), CoreError> {
    let rule = &stage.rule;
    let h = rule.head.atom().unwrap().clone();
    let h_ins = Head::Atom(Atom::new(
        delta_pred(&h.pred, DeltaKind::Insert),
        h.terms.clone(),
    ));
    let h_del = Head::Atom(Atom::new(
        delta_pred(&h.pred, DeltaKind::Delete),
        h.terms.clone(),
    ));
    let h_nu = Head::Atom(Atom::new(
        PredRef::new_rel(h.pred.flat_name()),
        h.terms.clone(),
    ));

    let builtins: Vec<Literal> = rule
        .body
        .iter()
        .filter(|l| matches!(l, Literal::Builtin { .. }))
        .cloned()
        .collect();
    let atoms: Vec<(&Atom, bool)> = rule
        .body
        .iter()
        .filter_map(|l| match l {
            Literal::Atom { atom, negated } => Some((atom, *negated)),
            _ => None,
        })
        .collect();

    let mut push = |head: &Head, mut body: Vec<Option<Literal>>| {
        let mut lits = Vec::new();
        for b in body.drain(..) {
            match b {
                Some(l) => lits.push(l),
                None => return, // references an empty delta: drop the rule
            }
        }
        lits.extend(builtins.iter().cloned());
        out.push(Rule {
            head: head.clone(),
            body: lits,
        });
    };

    match stage.kind {
        StageKind::Join => {
            let (p, _) = atoms[0];
            let (q, _) = atoms[1];
            // +h :- +p, qν ;  +h :- pν, +q
            push(
                &h_ins,
                vec![
                    ctx.delta_atom(p, DeltaKind::Insert),
                    Some(ctx.nu_atom(q, false)),
                ],
            );
            push(
                &h_ins,
                vec![
                    Some(ctx.nu_atom(p, false)),
                    ctx.delta_atom(q, DeltaKind::Insert),
                ],
            );
            if !is_sink {
                // -h :- -p, q ;  -h :- p, -q
                push(
                    &h_del,
                    vec![
                        ctx.delta_atom(p, DeltaKind::Delete),
                        Some(Literal::pos(q.clone())),
                    ],
                );
                push(
                    &h_del,
                    vec![
                        Some(Literal::pos(p.clone())),
                        ctx.delta_atom(q, DeltaKind::Delete),
                    ],
                );
                // hν :- pν, qν
                push(
                    &h_nu,
                    vec![Some(ctx.nu_atom(p, false)), Some(ctx.nu_atom(q, false))],
                );
            }
        }
        StageKind::Selection => {
            let (p, _) = atoms[0];
            push(&h_ins, vec![ctx.delta_atom(p, DeltaKind::Insert)]);
            if !is_sink {
                push(&h_del, vec![ctx.delta_atom(p, DeltaKind::Delete)]);
                push(&h_nu, vec![Some(ctx.nu_atom(p, false))]);
            }
        }
        StageKind::Negation => {
            let (p, pn) = atoms[0];
            let (n, nn) = atoms[1];
            debug_assert!(!pn && nn);
            // +h :- +p, ¬nν ;  +h :- pν, -n
            push(
                &h_ins,
                vec![
                    ctx.delta_atom(p, DeltaKind::Insert),
                    Some(ctx.nu_atom(n, true)),
                ],
            );
            push(
                &h_ins,
                vec![
                    Some(ctx.nu_atom(p, false)),
                    ctx.delta_atom(n, DeltaKind::Delete),
                ],
            );
            if !is_sink {
                // -h :- -p, ¬n ;  -h :- p, +n
                push(
                    &h_del,
                    vec![
                        ctx.delta_atom(p, DeltaKind::Delete),
                        Some(Literal::neg(n.clone())),
                    ],
                );
                push(
                    &h_del,
                    vec![
                        Some(Literal::pos(p.clone())),
                        ctx.delta_atom(n, DeltaKind::Insert),
                    ],
                );
                // hν :- pν, ¬nν
                push(
                    &h_nu,
                    vec![Some(ctx.nu_atom(p, false)), Some(ctx.nu_atom(n, true))],
                );
            }
        }
        StageKind::Copy | StageKind::Projection => {
            let (p, _) = atoms[0];
            let union = union_siblings.len() > 1;
            // +h :- +p [, ¬h when projecting and not a sink]
            let mut ins_body = vec![ctx.delta_atom(p, DeltaKind::Insert)];
            if stage.kind == StageKind::Projection && !is_sink {
                ins_body.push(Some(Literal::neg(h.clone())));
            }
            push(&h_ins, ins_body);
            if !is_sink {
                // -h :- -p [, ¬pν(anon-projected) when projecting]
                //          [, ¬siblingν … when a union]
                let mut del_body = vec![ctx.delta_atom(p, DeltaKind::Delete)];
                if stage.kind == StageKind::Projection {
                    let head_vars: BTreeSet<&str> =
                        h.terms.iter().filter_map(Term::as_var).collect();
                    let mut anon_counter = 0usize;
                    let terms: Vec<Term> = p
                        .terms
                        .iter()
                        .map(|t| match t {
                            Term::Var(v) if !head_vars.contains(v.as_str()) => {
                                anon_counter += 1;
                                Term::Var(format!("_#pj{anon_counter}"))
                            }
                            other => other.clone(),
                        })
                        .collect();
                    del_body.push(Some(Literal::neg(Atom::new(
                        nu_pred(&p.pred, ctx.changed, &ctx.view),
                        terms,
                    ))));
                }
                if union {
                    for sib in union_siblings {
                        let sh = sib.rule.head.atom().unwrap();
                        if std::ptr::eq(*sib, stage) {
                            continue;
                        }
                        let (sp, _) = match &sib.rule.body[0] {
                            Literal::Atom { atom, negated } => (atom, negated),
                            _ => {
                                return Err(CoreError::BadStrategy(
                                    "union branch is not an atom rule".into(),
                                ))
                            }
                        };
                        let _ = sh;
                        del_body.push(Some(ctx.nu_atom(sp, true)));
                    }
                }
                push(&h_del, del_body);
                // hν :- pν
                push(&h_nu, vec![Some(ctx.nu_atom(p, false))]);
            }
        }
    }
    Ok(())
}

/// Stage predicates that transitively depend on the view.
fn changed_predicates(stages: &[Stage], view: &str) -> BTreeSet<PredRef> {
    let mut changed: BTreeSet<PredRef> = BTreeSet::new();
    loop {
        let mut grew = false;
        for s in stages {
            let h = s.rule.head.atom().unwrap();
            if changed.contains(&h.pred) {
                continue;
            }
            let depends = s.rule.body.iter().any(|l| {
                l.atom().is_some_and(|a| {
                    (a.pred.kind == DeltaKind::None && a.pred.name == view)
                        || changed.contains(&a.pred)
                })
            });
            if depends {
                changed.insert(h.pred.clone());
                grew = true;
            }
        }
        if !grew {
            return changed;
        }
    }
}

/// Lemma C.1 binarization. Every input rule becomes a chain:
/// joins (two atoms at a time) → one selection stage carrying all
/// builtins → one negation stage per negated atom → a final
/// projection/copy stage onto the original head. Multi-rule predicates
/// keep one final stage per rule (union handled by the templates).
fn binarize(rules: &[Rule]) -> Result<Vec<Stage>, CoreError> {
    let mut stages = Vec::new();
    let mut counter = 0usize;
    for rule in rules {
        let head = rule
            .head
            .atom()
            .ok_or_else(|| CoreError::BadStrategy("constraints cannot be incrementalized".into()))?
            .clone();
        let pos: Vec<&Atom> = rule.positive_atoms().collect();
        let neg: Vec<&Atom> = rule.negated_atoms().collect();
        let builtins: Vec<&Literal> = rule
            .body
            .iter()
            .filter(|l| matches!(l, Literal::Builtin { .. }))
            .collect();
        if pos.is_empty() {
            return Err(CoreError::BadStrategy(format!(
                "cannot incrementalize a rule without positive atoms: {rule}"
            )));
        }

        let mut fresh = |prefix: &str| {
            counter += 1;
            PredRef::plain(format!("{prefix}{counter}__i"))
        };
        let distinct_vars = |atoms: &[&Atom]| -> Vec<Term> {
            let mut seen = BTreeSet::new();
            let mut vars = Vec::new();
            for a in atoms {
                for t in &a.terms {
                    if let Term::Var(v) = t {
                        if !t.is_anonymous() && seen.insert(v.clone()) {
                            vars.push(t.clone());
                        }
                    }
                }
            }
            vars
        };

        // Join chain.
        let mut cur: Atom = pos[0].clone();
        let mut joined: Vec<&Atom> = vec![pos[0]];
        for p in &pos[1..] {
            joined.push(p);
            let head_terms = distinct_vars(&joined);
            let j = Atom::new(fresh("jn"), head_terms);
            stages.push(Stage {
                kind: StageKind::Join,
                rule: Rule::new(
                    j.clone(),
                    vec![Literal::pos(cur.clone()), Literal::pos((*p).clone())],
                ),
            });
            cur = j;
        }

        // Selection stage (all builtins at once; equality binders may add
        // head variables).
        if !builtins.is_empty() {
            let mut vars: Vec<Term> = cur.terms.clone();
            let mut have: BTreeSet<String> = vars
                .iter()
                .filter_map(|t| t.as_var().map(str::to_owned))
                .collect();
            // Add equality-bound variables (closure).
            loop {
                let mut grew = false;
                for b in &builtins {
                    if let Literal::Builtin {
                        op: CmpOp::Eq,
                        left,
                        right,
                        negated: false,
                    } = b
                    {
                        for (x, other) in [(left, right), (right, left)] {
                            if let Term::Var(v) = x {
                                let other_ok = match other {
                                    Term::Const(_) => true,
                                    Term::Var(o) => have.contains(o),
                                };
                                if other_ok && !have.contains(v) {
                                    have.insert(v.clone());
                                    vars.push(Term::Var(v.clone()));
                                    grew = true;
                                }
                            }
                        }
                    }
                }
                if !grew {
                    break;
                }
            }
            let s = Atom::new(fresh("sel"), vars);
            let mut body = vec![Literal::pos(cur.clone())];
            body.extend(builtins.iter().map(|l| (*l).clone()));
            stages.push(Stage {
                kind: StageKind::Selection,
                rule: Rule::new(s.clone(), body),
            });
            cur = s;
        }

        // Negation stages.
        for n in &neg {
            let u = Atom::new(fresh("ng"), cur.terms.clone());
            stages.push(Stage {
                kind: StageKind::Negation,
                rule: Rule::new(
                    u.clone(),
                    vec![Literal::pos(cur.clone()), Literal::neg((*n).clone())],
                ),
            });
            cur = u;
        }

        // Final projection / copy onto the original head.
        let cur_vars: BTreeSet<&str> = cur.terms.iter().filter_map(Term::as_var).collect();
        let head_vars: BTreeSet<&str> = head.terms.iter().filter_map(Term::as_var).collect();
        let projecting = cur_vars.iter().any(|v| !head_vars.contains(v));
        stages.push(Stage {
            kind: if projecting {
                StageKind::Projection
            } else {
                StageKind::Copy
            },
            rule: Rule::new(head, vec![Literal::pos(cur)]),
        });
    }
    Ok(stages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use birds_datalog::parse_program;
    use birds_store::{DatabaseSchema, Schema, SortKind};

    fn selection_strategy() -> UpdateStrategy {
        // Example 5.2 from the paper.
        UpdateStrategy::parse(
            DatabaseSchema::new().with(Schema::new(
                "r",
                vec![("x", SortKind::Int), ("y", SortKind::Int)],
            )),
            Schema::new("v", vec![("x", SortKind::Int), ("y", SortKind::Int)]),
            "
            false :- v(X, Y), not Y > 2.
            +r(X, Y) :- v(X, Y), not r(X, Y).
            m(X, Y) :- r(X, Y), Y > 2.
            -r(X, Y) :- m(X, Y), not v(X, Y).
            ",
            None,
        )
        .unwrap()
    }

    #[test]
    fn lvgn_shortcut_matches_example_5_2() {
        let s = selection_strategy();
        let inc = incrementalize_lvgn(&s).unwrap();
        // Expected ∂put (with m inlined by the planner step):
        //   +r(X,Y) :- +v(X,Y), ¬r(X,Y).
        //   -r(X,Y) :- r(X,Y), Y > 2, -v(X,Y).
        let text = inc.to_string();
        assert!(
            text.contains("+r(X, Y) :- +v(X, Y), not r(X, Y)."),
            "{text}"
        );
        assert!(text.contains("-v(X, Y)"), "{text}");
        assert!(
            !text.contains("m("),
            "intermediate m must be inlined: {text}"
        );
        // No constraints in the incremental program.
        assert!(inc.constraints().next().is_none());
    }

    #[test]
    fn lvgn_shortcut_union() {
        let s = UpdateStrategy::parse(
            DatabaseSchema::new()
                .with(Schema::new("r1", vec![("a", SortKind::Int)]))
                .with(Schema::new("r2", vec![("a", SortKind::Int)])),
            Schema::new("v", vec![("a", SortKind::Int)]),
            "
            -r1(X) :- r1(X), not v(X).
            -r2(X) :- r2(X), not v(X).
            +r1(X) :- v(X), not r1(X), not r2(X).
            ",
            None,
        )
        .unwrap();
        let inc = incrementalize_lvgn(&s).unwrap();
        let expected = parse_program(
            "
            -r1(X) :- r1(X), -v(X).
            -r2(X) :- r2(X), -v(X).
            +r1(X) :- +v(X), not r1(X), not r2(X).
            ",
        )
        .unwrap();
        assert_eq!(inc, expected, "got {inc}");
    }

    #[test]
    fn general_binarization_shapes() {
        let rules = parse_program("+r(X, Z) :- a(X, Y), b(Y, Z), Z > 1, not c(X), not v(X, Y, Z).")
            .unwrap()
            .rules;
        let stages = binarize(&rules).unwrap();
        let kinds: Vec<StageKind> = stages.iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![
                StageKind::Join,
                StageKind::Selection,
                StageKind::Negation,
                StageKind::Negation,
                StageKind::Projection,
            ]
        );
        // The join stage head carries all variables.
        let join_head = stages[0].rule.head.atom().unwrap();
        assert_eq!(join_head.arity(), 3);
    }

    #[test]
    fn general_path_rejects_positive_atom_free_rules() {
        let s = UpdateStrategy::parse(
            DatabaseSchema::new().with(Schema::new("r", vec![("a", SortKind::Int)])),
            Schema::new("v", vec![("a", SortKind::Int)]),
            "+r(X) :- X = 1, not v(X).",
            None,
        )
        .unwrap();
        assert!(incrementalize_general(&s).is_err());
    }

    #[test]
    fn general_path_produces_output_delta_rules() {
        let s = selection_strategy();
        let inc = incrementalize_general(&s).unwrap();
        let has_plus_r = inc
            .rules
            .iter()
            .any(|r| r.head.atom().is_some_and(|a| a.pred == PredRef::ins("r")));
        let has_minus_r = inc
            .rules
            .iter()
            .any(|r| r.head.atom().is_some_and(|a| a.pred == PredRef::del("r")));
        assert!(has_plus_r && has_minus_r, "{inc}");
        // No nested-delta heads remain.
        for r in &inc.rules {
            if let Some(a) = r.head.atom() {
                assert!(
                    parse_delta_name(&a.pred.name).is_none(),
                    "nested delta survived: {r}"
                );
            }
        }
    }
}
