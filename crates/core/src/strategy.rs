//! User-facing representation of a view update strategy.

use crate::error::CoreError;
use birds_datalog::{
    check_lvgn, check_nonrecursive, check_safety, parse_program, DeltaKind, Head, LvgnViolation,
    PredRef, Program, Rule,
};
use birds_store::{DatabaseSchema, Schema};

/// A programmable view update strategy (paper §3): a putback program
/// `putdelta` over the pair `(S, V)` of source database and updated view,
/// producing delta relations on the source.
#[derive(Debug, Clone)]
pub struct UpdateStrategy {
    /// Schemas of the source relations `⟨r1, …, rn⟩`.
    pub source_schema: DatabaseSchema,
    /// Schema of the view relation `v`.
    pub view: Schema,
    /// The putback program: delta rules, intermediate rules, and `⊥`
    /// integrity constraints (§3.2.3).
    pub putdelta: Program,
    /// Optional expected view definition (rules with head `v`), checked by
    /// validation pass 2 before any derivation is attempted.
    pub expected_get: Option<Program>,
}

impl UpdateStrategy {
    /// Build and shape-check a strategy.
    ///
    /// Checks: safety and non-recursion of `putdelta`; every delta-rule
    /// head targets a source relation with the schema's arity; the view is
    /// not also a source; plain (non-delta) heads define intermediate
    /// predicates only (never the view or a source relation); the expected
    /// get (if given) is safe, non-recursive and defines the view with the
    /// right arity.
    pub fn new(
        source_schema: DatabaseSchema,
        view: Schema,
        putdelta: Program,
        expected_get: Option<Program>,
    ) -> Result<Self, CoreError> {
        if source_schema.get(&view.name).is_some() {
            return Err(CoreError::BadStrategy(format!(
                "view '{}' clashes with a source relation",
                view.name
            )));
        }
        check_safety(&putdelta).map_err(|e| {
            CoreError::Analysis(
                e.into_iter()
                    .map(|x| x.to_string())
                    .collect::<Vec<_>>()
                    .join("; "),
            )
        })?;
        check_nonrecursive(&putdelta).map_err(|e| CoreError::Analysis(e.to_string()))?;
        for rule in &putdelta.rules {
            match &rule.head {
                Head::Bottom => {}
                Head::Atom(a) => match a.pred.kind {
                    DeltaKind::Insert | DeltaKind::Delete => {
                        let Some(schema) = source_schema.get(&a.pred.name) else {
                            return Err(CoreError::BadStrategy(format!(
                                "delta rule head '{}' does not target a source relation",
                                a.pred
                            )));
                        };
                        if schema.arity() != a.arity() {
                            return Err(CoreError::BadStrategy(format!(
                                "delta rule head '{}' has arity {} but relation '{}' has arity {}",
                                a.pred,
                                a.arity(),
                                a.pred.name,
                                schema.arity()
                            )));
                        }
                    }
                    DeltaKind::None => {
                        if a.pred.name == view.name {
                            return Err(CoreError::BadStrategy(
                                "the putback program must not define the view".into(),
                            ));
                        }
                        if source_schema.get(&a.pred.name).is_some() {
                            return Err(CoreError::BadStrategy(format!(
                                "rule head '{}' redefines a source relation",
                                a.pred
                            )));
                        }
                    }
                    DeltaKind::New => {
                        return Err(CoreError::BadStrategy(
                            "reserved 'new' predicates cannot appear in user programs".into(),
                        ));
                    }
                },
            }
        }
        if let Some(get) = &expected_get {
            check_safety(get).map_err(|e| {
                CoreError::Analysis(
                    e.into_iter()
                        .map(|x| x.to_string())
                        .collect::<Vec<_>>()
                        .join("; "),
                )
            })?;
            check_nonrecursive(get).map_err(|e| CoreError::Analysis(e.to_string()))?;
            let vpred = PredRef::plain(&view.name);
            let defines_view = get.rules_for(&vpred).next().is_some();
            if !defines_view {
                return Err(CoreError::BadStrategy(format!(
                    "expected get does not define the view '{}'",
                    view.name
                )));
            }
            if get.arity_of(&vpred) != Some(view.arity()) {
                return Err(CoreError::BadStrategy(format!(
                    "expected get defines '{}' with the wrong arity",
                    view.name
                )));
            }
        }
        Ok(UpdateStrategy {
            source_schema,
            view,
            putdelta,
            expected_get,
        })
    }

    /// Convenience constructor from program source text.
    pub fn parse(
        source_schema: DatabaseSchema,
        view: Schema,
        putdelta_src: &str,
        expected_get_src: Option<&str>,
    ) -> Result<Self, CoreError> {
        let putdelta =
            parse_program(putdelta_src).map_err(|e| CoreError::BadStrategy(e.to_string()))?;
        let expected_get = expected_get_src
            .map(parse_program)
            .transpose()
            .map_err(|e| CoreError::BadStrategy(e.to_string()))?;
        Self::new(source_schema, view, putdelta, expected_get)
    }

    /// The view predicate.
    pub fn view_pred(&self) -> PredRef {
        PredRef::plain(&self.view.name)
    }

    /// Integrity constraint rules of the putback program.
    pub fn constraints(&self) -> Vec<&Rule> {
        self.putdelta.constraints().collect()
    }

    /// Delta rules (heads `+r` / `-r`).
    pub fn delta_rules(&self) -> Vec<&Rule> {
        self.putdelta
            .rules
            .iter()
            .filter(|r| r.head.atom().is_some_and(|a| a.pred.is_delta()))
            .collect()
    }

    /// Intermediate (plain-head) rules.
    pub fn intermediate_rules(&self) -> Vec<&Rule> {
        self.putdelta
            .rules
            .iter()
            .filter(|r| {
                r.head
                    .atom()
                    .is_some_and(|a| a.pred.kind == DeltaKind::None)
            })
            .collect()
    }

    /// Source relations that have at least one delta rule of the given
    /// kind.
    pub fn delta_targets(&self, kind: DeltaKind) -> Vec<String> {
        let mut names: Vec<String> = self
            .delta_rules()
            .into_iter()
            .filter_map(|r| r.head.atom())
            .filter(|a| a.pred.kind == kind)
            .map(|a| a.pred.name.clone())
            .collect();
        names.sort();
        names.dedup();
        names
    }

    /// Source relations the putback program (or the expected get) *reads*:
    /// every source-schema relation that occurs in a rule body, either
    /// plainly or as a delta predicate. This is the read half of the
    /// strategy's dependency footprint — the relations a concurrency
    /// layer must hold (at least) shared while an update evaluates.
    pub fn read_relations(&self) -> std::collections::BTreeSet<String> {
        let mut reads = std::collections::BTreeSet::new();
        let mut visit = |program: &Program| {
            for pred in program.all_body_predicates() {
                if self.source_schema.get(&pred.name).is_some() {
                    reads.insert(pred.name.clone());
                }
            }
        };
        visit(&self.putdelta);
        if let Some(get) = &self.expected_get {
            visit(get);
        }
        reads
    }

    /// Source relations the putback program *writes*: the targets of its
    /// delta rules (`+r` / `-r` heads). The write half of the strategy's
    /// dependency footprint — the relations a commit mutates (and, when a
    /// target is itself a view, where a cascade starts).
    pub fn write_relations(&self) -> std::collections::BTreeSet<String> {
        self.delta_rules()
            .into_iter()
            .filter_map(|r| r.head.atom())
            .map(|a| a.pred.name.clone())
            .collect()
    }

    /// LVGN-Datalog membership violations (empty = in the fragment;
    /// paper §3.2).
    pub fn lvgn_violations(&self) -> Vec<LvgnViolation> {
        check_lvgn(&self.putdelta, &self.view.name)
    }

    /// Is the putback program in LVGN-Datalog?
    pub fn is_lvgn(&self) -> bool {
        self.lvgn_violations().is_empty()
    }

    /// The paper's "program size (LOC)" metric: number of rules, counting
    /// constraints.
    pub fn program_size(&self) -> usize {
        self.putdelta.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use birds_store::SortKind;

    fn union_schema() -> (DatabaseSchema, Schema) {
        (
            DatabaseSchema::new()
                .with(Schema::new("r1", vec![("a", SortKind::Int)]))
                .with(Schema::new("r2", vec![("a", SortKind::Int)])),
            Schema::new("v", vec![("a", SortKind::Int)]),
        )
    }

    const UNION_PUT: &str = "
        -r1(X) :- r1(X), not v(X).
        -r2(X) :- r2(X), not v(X).
        +r1(X) :- v(X), not r1(X), not r2(X).
    ";

    #[test]
    fn build_union_strategy() {
        let (src, view) = union_schema();
        let s = UpdateStrategy::parse(src, view, UNION_PUT, Some("v(X) :- r1(X). v(X) :- r2(X)."))
            .unwrap();
        assert!(s.is_lvgn());
        assert_eq!(s.program_size(), 3);
        assert_eq!(s.delta_rules().len(), 3);
        assert_eq!(s.delta_targets(DeltaKind::Delete), vec!["r1", "r2"]);
        assert_eq!(s.delta_targets(DeltaKind::Insert), vec!["r1"]);
    }

    #[test]
    fn delta_head_must_target_source() {
        let (src, view) = union_schema();
        let bad = "-r9(X) :- r1(X), not v(X).";
        assert!(matches!(
            UpdateStrategy::parse(src, view, bad, None),
            Err(CoreError::BadStrategy(_))
        ));
    }

    #[test]
    fn arity_must_match_schema() {
        let (src, view) = union_schema();
        // The delta head uses arity 2 while the schema says r1 is unary.
        let bad = "-r1(X, Y) :- r2(X), v(Y).";
        assert!(matches!(
            UpdateStrategy::parse(src, view, bad, None),
            Err(CoreError::BadStrategy(_))
        ));
        // Inconsistent arities *within* the program are caught earlier by
        // program analysis.
        let (src, view) = union_schema();
        let mixed = "-r1(X, Y) :- r1(X), v(Y), not v(X).";
        assert!(matches!(
            UpdateStrategy::parse(src, view, mixed, None),
            Err(CoreError::Analysis(_))
        ));
    }

    #[test]
    fn view_cannot_be_defined_by_putdelta() {
        let (src, view) = union_schema();
        let bad = "v(X) :- r1(X). -r1(X) :- r1(X), not v(X).";
        assert!(matches!(
            UpdateStrategy::parse(src, view, bad, None),
            Err(CoreError::BadStrategy(_))
        ));
    }

    #[test]
    fn unsafe_program_rejected() {
        let (src, view) = union_schema();
        let bad = "+r1(X) :- not r1(X).";
        assert!(matches!(
            UpdateStrategy::parse(src, view, bad, None),
            Err(CoreError::Analysis(_))
        ));
    }

    #[test]
    fn expected_get_must_define_view() {
        let (src, view) = union_schema();
        let err = UpdateStrategy::parse(src, view, UNION_PUT, Some("w(X) :- r1(X)."));
        assert!(matches!(err, Err(CoreError::BadStrategy(_))));
    }

    #[test]
    fn constraints_are_collected() {
        let (src, view) = union_schema();
        let put = "
            false :- v(X), X > 100.
            -r1(X) :- r1(X), not v(X).
        ";
        let s = UpdateStrategy::parse(src, view, put, None).unwrap();
        assert_eq!(s.constraints().len(), 1);
        assert_eq!(s.delta_rules().len(), 1);
    }

    #[test]
    fn read_and_write_sets_cover_the_strategy_footprint() {
        let (src, view) = union_schema();
        let s = UpdateStrategy::parse(src, view, UNION_PUT, Some("v(X) :- r1(X). v(X) :- r2(X)."))
            .unwrap();
        let reads: Vec<String> = s.read_relations().into_iter().collect();
        assert_eq!(reads, vec!["r1".to_owned(), "r2".to_owned()]);
        let writes: Vec<String> = s.write_relations().into_iter().collect();
        assert_eq!(writes, vec!["r1".to_owned(), "r2".to_owned()]);

        // A one-directional strategy writes less than it reads.
        let (src, view) = union_schema();
        let s =
            UpdateStrategy::parse(src, view, "-r1(X) :- r1(X), r2(X), not v(X).", None).unwrap();
        assert_eq!(s.read_relations().len(), 2);
        assert_eq!(
            s.write_relations().into_iter().collect::<Vec<_>>(),
            vec!["r1".to_owned()]
        );
    }

    #[test]
    fn non_lvgn_is_detected() {
        let (src, view) = union_schema();
        // self-join on the view
        let put = "+r1(X) :- v(X), v(X), not r1(X).";
        // (identical atoms — still two view atoms syntactically)
        let s = UpdateStrategy::parse(src, view, put, None).unwrap();
        assert!(!s.is_lvgn());
    }
}
