//! Construction of the `newsource` and `putget` programs (§4.4).
//!
//! `newsource` adds, for every source relation `r`, the rules
//!
//! ```text
//! r__new(~X) :- r(~X), not -r(~X).
//! r__new(~X) :- +r(~X).
//! ```
//!
//! (omitting delta atoms the putback program never defines). `putget`
//! composes: the putback program, `newsource`, and the view definition
//! `get` with every source atom substituted by its `__new` version — its
//! `v__new` relation is exactly `get(put(S, V))`.

use crate::strategy::UpdateStrategy;
use birds_datalog::{Atom, DeltaKind, Head, Literal, PredRef, Program, Rule, Term};

/// Build the `newsource` rules for a strategy.
pub fn build_newsource_rules(strategy: &UpdateStrategy) -> Vec<Rule> {
    let mut rules = Vec::new();
    for schema in &strategy.source_schema.relations {
        let name = &schema.name;
        let vars: Vec<Term> = (0..schema.arity())
            .map(|i| Term::var(format!("X{i}")))
            .collect();
        let new_head = Atom::new(PredRef::new_rel(name), vars.clone());
        let has_del = strategy
            .putdelta
            .rules_for(&PredRef::del(name))
            .next()
            .is_some();
        let has_ins = strategy
            .putdelta
            .rules_for(&PredRef::ins(name))
            .next()
            .is_some();
        let mut body = vec![Literal::pos(Atom::new(PredRef::plain(name), vars.clone()))];
        if has_del {
            body.push(Literal::neg(Atom::new(PredRef::del(name), vars.clone())));
        }
        rules.push(Rule::new(new_head.clone(), body));
        if has_ins {
            rules.push(Rule::new(
                new_head,
                vec![Literal::pos(Atom::new(PredRef::ins(name), vars))],
            ));
        }
    }
    rules
}

/// Rewrite a `get` program for composition: the view head becomes
/// `v__new`; source atoms become `r__new` when `to_new_sources`; all other
/// (intermediate) predicates get the given suffix to avoid collisions with
/// putback-program predicates.
pub fn transform_get_program(
    get: &Program,
    strategy: &UpdateStrategy,
    to_new_sources: bool,
    suffix: &str,
) -> Program {
    let view = &strategy.view.name;
    let is_source = |n: &str| strategy.source_schema.get(n).is_some();
    let map_pred = |p: &PredRef| -> PredRef {
        if p.kind != DeltaKind::None {
            return p.clone(); // deltas should not occur in get programs
        }
        if p.name == *view {
            PredRef::new_rel(view)
        } else if is_source(&p.name) {
            if to_new_sources {
                PredRef::new_rel(&p.name)
            } else {
                p.clone()
            }
        } else {
            PredRef::plain(format!("{}{suffix}", p.name))
        }
    };
    let map_atom = |a: &Atom| Atom::new(map_pred(&a.pred), a.terms.clone());
    Program::new(
        get.rules
            .iter()
            .map(|r| Rule {
                head: match &r.head {
                    Head::Atom(a) => Head::Atom(map_atom(a)),
                    Head::Bottom => Head::Bottom,
                },
                body: r
                    .body
                    .iter()
                    .map(|l| match l {
                        Literal::Atom { atom, negated } => Literal::Atom {
                            atom: map_atom(atom),
                            negated: *negated,
                        },
                        other => other.clone(),
                    })
                    .collect(),
            })
            .collect(),
    )
}

/// Build the full `putget` program. Returns the program and the predicate
/// (`v__new`) whose relation equals `get(put(S, V))`.
pub fn build_putget_program(strategy: &UpdateStrategy, get: &Program) -> (Program, PredRef) {
    let mut program = Program::new(
        strategy
            .putdelta
            .proper_rules()
            .cloned()
            .collect::<Vec<_>>(),
    );
    program.rules.extend(build_newsource_rules(strategy));
    program.extend(transform_get_program(get, strategy, true, "__g"));
    (program, PredRef::new_rel(&strategy.view.name))
}

/// Build the program whose IDB `v` is defined by `get` over the *original*
/// sources, merged with the putback rules — used for the GetPut check with
/// an explicit expected get (§4.3). Intermediate get predicates are
/// suffixed to avoid collisions; the view keeps its own name so the
/// putback rules' `v` atoms resolve to the definition.
pub fn build_getput_program(strategy: &UpdateStrategy, get: &Program) -> Program {
    let view = &strategy.view.name;
    let is_source = |n: &str| strategy.source_schema.get(n).is_some();
    let map_pred = |p: &PredRef| -> PredRef {
        if p.kind != DeltaKind::None || p.name == *view || is_source(&p.name) {
            p.clone()
        } else {
            PredRef::plain(format!("{}__g", p.name))
        }
    };
    let map_atom = |a: &Atom| Atom::new(map_pred(&a.pred), a.terms.clone());
    let mut program = Program::new(
        strategy
            .putdelta
            .proper_rules()
            .cloned()
            .collect::<Vec<_>>(),
    );
    for r in &get.rules {
        program.rules.push(Rule {
            head: match &r.head {
                Head::Atom(a) => Head::Atom(map_atom(a)),
                Head::Bottom => Head::Bottom,
            },
            body: r
                .body
                .iter()
                .map(|l| match l {
                    Literal::Atom { atom, negated } => Literal::Atom {
                        atom: map_atom(atom),
                        negated: *negated,
                    },
                    other => other.clone(),
                })
                .collect(),
        });
    }
    program
}

#[cfg(test)]
mod tests {
    use super::*;
    use birds_datalog::parse_program;
    use birds_store::{DatabaseSchema, Schema, SortKind};

    fn union_strategy() -> UpdateStrategy {
        UpdateStrategy::parse(
            DatabaseSchema::new()
                .with(Schema::new("r1", vec![("a", SortKind::Int)]))
                .with(Schema::new("r2", vec![("a", SortKind::Int)])),
            Schema::new("v", vec![("a", SortKind::Int)]),
            "
            -r1(X) :- r1(X), not v(X).
            -r2(X) :- r2(X), not v(X).
            +r1(X) :- v(X), not r1(X), not r2(X).
            ",
            None,
        )
        .unwrap()
    }

    #[test]
    fn newsource_rules_match_the_paper_listing() {
        // The §4.4 example: r1 has -r1 and +r1; r2 has only -r2.
        let rules = build_newsource_rules(&union_strategy());
        let program = Program::new(rules);
        // `__new` heads are DeltaKind::New predicates, which render as
        // `r__new`; compare against the paper's listing textually.
        let expected = "r1__new(X0) :- r1(X0), not -r1(X0).\n\
                        r1__new(X0) :- +r1(X0).\n\
                        r2__new(X0) :- r2(X0), not -r2(X0).";
        assert_eq!(program.to_string().trim(), expected);
    }

    #[test]
    fn putget_program_composes_get_over_new_sources() {
        let strategy = union_strategy();
        let get = parse_program("v(X) :- r1(X). v(X) :- r2(X).").unwrap();
        let (putget, vnew) = build_putget_program(&strategy, &get);
        assert_eq!(vnew, PredRef::new_rel("v"));
        let text = putget.to_string();
        assert!(text.contains("v__new(X) :- r1__new(X)."), "{text}");
        assert!(text.contains("v__new(X) :- r2__new(X)."), "{text}");
        // The putback rules are included verbatim.
        assert!(text.contains("+r1(X) :- v(X), not r1(X), not r2(X)."));
    }

    #[test]
    fn get_intermediates_are_renamed() {
        let strategy = union_strategy();
        let get = parse_program("m(X) :- r1(X). v(X) :- m(X). v(X) :- r2(X).").unwrap();
        let (putget, _) = build_putget_program(&strategy, &get);
        let text = putget.to_string();
        assert!(text.contains("m__g(X) :- r1__new(X)."), "{text}");
        assert!(text.contains("v__new(X) :- m__g(X)."), "{text}");
    }

    #[test]
    fn getput_program_defines_view_from_sources() {
        let strategy = union_strategy();
        let get = parse_program("v(X) :- r1(X). v(X) :- r2(X).").unwrap();
        let p = build_getput_program(&strategy, &get);
        let text = p.to_string();
        assert!(text.contains("v(X) :- r1(X)."), "{text}");
        // putback rules still reference v, now an IDB:
        assert!(text.contains("-r1(X) :- r1(X), not v(X)."));
    }
}
