//! The validation algorithm (Algorithm 1, §4).
//!
//! Three passes: well-definedness → existence of a view definition
//! satisfying GetPut (using `expected_get` when provided, deriving `get`
//! from `φ2` otherwise) → the PutGet property. Each satisfiability check
//! goes to the bounded solver ([`birds_solver::BoundedSolver`], our Z3
//! substitute); a `Sat` answer comes with a counterexample database that is
//! embedded in the report.

use crate::error::CoreError;
use crate::linear_view::linear_view_form;
use crate::putget::{build_getput_program, build_putget_program};
use crate::strategy::UpdateStrategy;
use birds_datalog::{DeltaKind, PredRef, Program, Term};
use birds_fol::{formula_to_datalog, unfold_constraint, unfold_query, Formula, ToDatalogError};
use birds_solver::{BoundedSolver, Model, SatOutcome};
use std::time::{Duration, Instant};

/// Which pass of Algorithm 1 rejected the strategy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailedPass {
    /// Pass 1: the program can produce a contradictory ΔS.
    WellDefinedness,
    /// Pass 2: no view definition satisfying GetPut exists (or the
    /// expected one fails and none can be derived).
    GetPut,
    /// Pass 3: the derived/expected get does not satisfy PutGet.
    PutGet,
}

/// Per-pass wall-clock timings (used by the ablation bench).
#[derive(Debug, Clone, Default)]
pub struct PassTimings {
    /// Pass 1 duration.
    pub well_definedness: Duration,
    /// Pass 2 duration.
    pub getput: Duration,
    /// Pass 3 duration.
    pub putget: Duration,
}

impl PassTimings {
    /// Total validation time.
    pub fn total(&self) -> Duration {
        self.well_definedness + self.getput + self.putget
    }
}

/// Result of validating a strategy.
#[derive(Debug, Clone)]
pub struct ValidationReport {
    /// Overall verdict.
    pub valid: bool,
    /// Failing pass, when invalid.
    pub failed_pass: Option<FailedPass>,
    /// Human-readable explanation, when invalid.
    pub reason: Option<String>,
    /// A counterexample database from the solver, when available.
    pub counterexample: Option<Model>,
    /// The view definition satisfying GetPut/PutGet, when validation got
    /// that far (always present for a valid strategy).
    pub derived_get: Option<Program>,
    /// `true` when `derived_get` is the user's `expected_get`.
    pub used_expected_get: bool,
    /// LVGN-Datalog membership of the putback program.
    pub lvgn: bool,
    /// Per-pass timings.
    pub timings: PassTimings,
}

impl ValidationReport {
    fn invalid(
        pass: FailedPass,
        reason: String,
        counterexample: Option<Model>,
        lvgn: bool,
        timings: PassTimings,
    ) -> Self {
        ValidationReport {
            valid: false,
            failed_pass: Some(pass),
            reason: Some(reason),
            counterexample,
            derived_get: None,
            used_expected_get: false,
            lvgn,
            timings,
        }
    }
}

/// The validator: Algorithm 1 parameterized by a bounded solver.
#[derive(Debug, Clone, Default)]
pub struct Validator {
    /// Satisfiability backend.
    pub solver: BoundedSolver,
}

/// Validate with the default solver configuration.
pub fn validate(strategy: &UpdateStrategy) -> Result<ValidationReport, CoreError> {
    Validator::default().validate(strategy)
}

impl Validator {
    /// Run Algorithm 1 on a strategy.
    pub fn validate(&self, strategy: &UpdateStrategy) -> Result<ValidationReport, CoreError> {
        let lvgn = strategy.is_lvgn();
        let mut timings = PassTimings::default();

        // Constraint violation sentences Σ over (S, V) with v free.
        let sigma: Vec<Formula> = strategy
            .constraints()
            .iter()
            .map(|r| unfold_constraint(&strategy.putdelta, r))
            .collect::<Result<_, _>>()?;

        // ---- Pass 1: well-definedness (§4.2) -------------------------
        let t0 = Instant::now();
        for schema in &strategy.source_schema.relations {
            let name = &schema.name;
            let has_ins = strategy
                .putdelta
                .rules_for(&PredRef::ins(name))
                .next()
                .is_some();
            let has_del = strategy
                .putdelta
                .rules_for(&PredRef::del(name))
                .next()
                .is_some();
            if !(has_ins && has_del) {
                continue;
            }
            let (_, plus) = unfold_query(&strategy.putdelta, &PredRef::ins(name))?;
            let (_, minus) = unfold_query(&strategy.putdelta, &PredRef::del(name))?;
            // Both formulas share canonical variables X0..Xk-1: their
            // conjunction is exactly the rule (2) join.
            let d_i = Formula::and(vec![plus, minus]);
            if let SatOutcome::Sat(model) = self.solver.check_under(&d_i, &sigma)? {
                timings.well_definedness = t0.elapsed();
                return Ok(ValidationReport::invalid(
                    FailedPass::WellDefinedness,
                    format!("the program can both insert and delete the same tuple of '{name}'"),
                    Some(model),
                    lvgn,
                    timings,
                ));
            }
        }
        timings.well_definedness = t0.elapsed();

        // ---- Pass 2: a view definition satisfying GetPut (§4.3) ------
        let t1 = Instant::now();
        let mut get: Option<Program> = None;
        let mut used_expected = false;

        if let Some(expected) = &strategy.expected_get {
            match self.check_getput_with(strategy, expected)? {
                None => {
                    get = Some(expected.clone());
                    used_expected = true;
                }
                Some((rel, model)) => {
                    if !lvgn {
                        timings.getput = t1.elapsed();
                        return Ok(ValidationReport::invalid(
                            FailedPass::GetPut,
                            format!(
                                "expected get does not satisfy GetPut (delta on '{rel}' \
                                 is not a no-op) and the program is outside LVGN-Datalog, \
                                 so no view definition can be derived"
                            ),
                            Some(model),
                            lvgn,
                            timings,
                        ));
                    }
                }
            }
        }

        if get.is_none() {
            if !lvgn {
                return Err(CoreError::CannotDeriveGet(
                    "the program is outside LVGN-Datalog; provide an expected get".into(),
                ));
            }
            // Lemma 4.2: build φ1, φ2, φ3 and run the two existence checks.
            let lv = linear_view_form(strategy)?;
            if let SatOutcome::Sat(model) = self.solver.check(&lv.phi3)? {
                timings.getput = t1.elapsed();
                return Ok(ValidationReport::invalid(
                    FailedPass::GetPut,
                    "no steady-state view exists: the view-free violation \
                     formula φ3 is satisfiable"
                        .into(),
                    Some(model),
                    lvgn,
                    timings,
                ));
            }
            let both = Formula::and(vec![lv.phi1.clone(), lv.phi2.clone()]);
            if let SatOutcome::Sat(model) = self.solver.check(&both)? {
                timings.getput = t1.elapsed();
                return Ok(ValidationReport::invalid(
                    FailedPass::GetPut,
                    "no steady-state view exists: the bounds cross (∃Y φ1 ∧ φ2 \
                     is satisfiable)"
                        .into(),
                    Some(model),
                    lvgn,
                    timings,
                ));
            }
            // Derive get from φ2 (the lower bound).
            let derived = match formula_to_datalog(&lv.phi2, &lv.view_vars, &strategy.view.name) {
                Ok(p) => p,
                Err(ToDatalogError::Trivial) if lv.phi2 == Formula::False => {
                    // The steady-state lower bound is empty: the derived
                    // view definition is the empty view.
                    Program::new(vec![])
                }
                Err(e) => return Err(e.into()),
            };
            get = Some(derived);
        }
        timings.getput = t1.elapsed();
        let get = get.expect("set above");

        // ---- Pass 3: PutGet (§4.4) ------------------------------------
        let t2 = Instant::now();
        let phi_putget = if get.is_empty() {
            Formula::False
        } else {
            let (putget, vnew) = build_putget_program(strategy, &get);
            let (_, phi) = unfold_query(&putget, &vnew)?;
            phi
        };
        let view_vars: Vec<String> = (0..strategy.view.arity())
            .map(|i| format!("X{i}"))
            .collect();
        let v_atom = Formula::Rel(
            strategy.view_pred(),
            view_vars.iter().map(|v| Term::var(v.clone())).collect(),
        );
        // Φ1 = ∃Y φputget(Y) ∧ ¬v(Y): put produces view tuples v lacks.
        let phi_1 = Formula::exists(
            view_vars.clone(),
            Formula::and(vec![phi_putget.clone(), Formula::not(v_atom.clone())]),
        );
        // Φ2 = ∃Y v(Y) ∧ ¬φputget(Y): view tuples put fails to reproduce.
        let phi_2 = Formula::exists(
            view_vars,
            Formula::and(vec![v_atom, Formula::not(phi_putget)]),
        );
        for (phi, what) in [(phi_1, "loses"), (phi_2, "invents")] {
            if let SatOutcome::Sat(model) = self.solver.check_under(&phi, &sigma)? {
                timings.putget = t2.elapsed();
                let direction = if what == "loses" {
                    "get(put(S,V)) contains a tuple outside V"
                } else {
                    "V contains a tuple get(put(S,V)) misses"
                };
                return Ok(ValidationReport::invalid(
                    FailedPass::PutGet,
                    format!("PutGet fails: {direction}"),
                    Some(model),
                    lvgn,
                    timings,
                ));
            }
        }
        timings.putget = t2.elapsed();

        Ok(ValidationReport {
            valid: true,
            failed_pass: None,
            reason: None,
            counterexample: None,
            derived_get: Some(get),
            used_expected_get: used_expected,
            lvgn,
            timings,
        })
    }

    /// GetPut check against an explicit view definition: with `v` defined
    /// by `get`, every delta of the putback program must be a no-op on its
    /// relation. Returns `None` when GetPut holds, or the offending
    /// relation name and a counterexample.
    fn check_getput_with(
        &self,
        strategy: &UpdateStrategy,
        get: &Program,
    ) -> Result<Option<(String, Model)>, CoreError> {
        let combined = build_getput_program(strategy, get);
        // Σ with the view unfolded through its definition.
        let sigma: Vec<Formula> = strategy
            .constraints()
            .iter()
            .map(|r| unfold_constraint(&combined, r))
            .collect::<Result<_, _>>()?;
        for schema in &strategy.source_schema.relations {
            let name = &schema.name;
            let xs: Vec<Term> = (0..schema.arity())
                .map(|i| Term::var(format!("X{i}")))
                .collect();
            for kind in [DeltaKind::Delete, DeltaKind::Insert] {
                let pred = PredRef {
                    name: name.clone(),
                    kind,
                };
                if combined.rules_for(&pred).next().is_none() {
                    continue;
                }
                let (_, phi) = unfold_query(&combined, &pred)?;
                let effect = Formula::Rel(PredRef::plain(name), xs.clone());
                let violation = if kind == DeltaKind::Delete {
                    Formula::and(vec![phi, effect])
                } else {
                    Formula::and(vec![phi, Formula::not(effect)])
                };
                if let SatOutcome::Sat(model) = self.solver.check_under(&violation, &sigma)? {
                    return Ok(Some((name.clone(), model)));
                }
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use birds_datalog::parse_program;
    use birds_store::{DatabaseSchema, Schema, SortKind};

    fn union_schemas() -> (DatabaseSchema, Schema) {
        (
            DatabaseSchema::new()
                .with(Schema::new("r1", vec![("a", SortKind::Int)]))
                .with(Schema::new("r2", vec![("a", SortKind::Int)])),
            Schema::new("v", vec![("a", SortKind::Int)]),
        )
    }

    const UNION_PUT: &str = "
        -r1(X) :- r1(X), not v(X).
        -r2(X) :- r2(X), not v(X).
        +r1(X) :- v(X), not r1(X), not r2(X).
    ";

    #[test]
    fn union_strategy_is_valid_and_derives_union_get() {
        let (src, view) = union_schemas();
        let s = UpdateStrategy::parse(src, view, UNION_PUT, None).unwrap();
        let report = validate(&s).unwrap();
        assert!(report.valid, "{:?}", report.reason);
        assert!(report.lvgn);
        let get = report.derived_get.unwrap();
        let expected = parse_program("v(X) :- r1(X). v(X) :- r2(X).").unwrap();
        assert!(get.alpha_eq(&expected), "derived: {get}");
    }

    #[test]
    fn union_strategy_accepts_matching_expected_get() {
        let (src, view) = union_schemas();
        let s = UpdateStrategy::parse(src, view, UNION_PUT, Some("v(X) :- r1(X). v(X) :- r2(X)."))
            .unwrap();
        let report = validate(&s).unwrap();
        assert!(report.valid);
        assert!(report.used_expected_get);
    }

    #[test]
    fn wrong_expected_get_falls_back_to_derivation() {
        let (src, view) = union_schemas();
        // expected get = intersection: GetPut fails, derivation succeeds.
        let s = UpdateStrategy::parse(src, view, UNION_PUT, Some("v(X) :- r1(X), r2(X).")).unwrap();
        let report = validate(&s).unwrap();
        assert!(report.valid);
        assert!(!report.used_expected_get);
        let get = report.derived_get.unwrap();
        assert_eq!(get.len(), 2, "union derived: {get}");
    }

    #[test]
    fn ill_defined_strategy_rejected() {
        // Inserts and deletes the same tuple when v and r1 overlap... make
        // a direct contradiction: +r1 and -r1 can both fire on v(X)∧r1(X).
        let (src, view) = union_schemas();
        let put = "
            +r1(X) :- v(X).
            -r1(X) :- v(X), r1(X).
        ";
        let s = UpdateStrategy::parse(src, view, put, None).unwrap();
        let report = validate(&s).unwrap();
        assert!(!report.valid);
        assert_eq!(report.failed_pass, Some(FailedPass::WellDefinedness));
        assert!(report.counterexample.is_some());
    }

    #[test]
    fn no_steady_state_rejected() {
        // -r1 fires on every r1 tuple regardless of the view: GetPut can
        // never hold unless r1 is empty... on nonempty r1 the delta is not
        // a no-op, and there is no view to fix it: φ3 = ∃X r1(X) ∧ r1(X).
        let (src, view) = union_schemas();
        let put = "-r1(X) :- r1(X).";
        let s = UpdateStrategy::parse(src, view, put, None).unwrap();
        let report = validate(&s).unwrap();
        assert!(!report.valid);
        assert_eq!(report.failed_pass, Some(FailedPass::GetPut));
    }

    #[test]
    fn crossing_bounds_rejected() {
        // +r1 demands v ⊇ r2-part while -r1... construct: view must
        // contain all r2 tuples (else they get inserted into r1?) — build
        // a direct crossing: deletion rule with positive v and insert rule
        // with negative v on the same data forces φ1 ∧ φ2 overlap.
        let (src, view) = union_schemas();
        let put = "
            -r1(X) :- r1(X), v(X).
            +r1(X) :- r2(X), not v(X), not r1(X).
        ";
        // Steady state needs v ∩ r1 = ∅ (from -r1) and r2 \ r1 ⊆ v (from
        // +r1); φ1 = r1(Y), φ2 = r2(Y) ∧ ¬r1(Y): φ1 ∧ φ2 = ⊥, so a
        // GetPut-compatible get (= r2 \ r1) exists. But PutGet fails: for
        // V = {a} with r2 empty, put inserts nothing and get(put(S,V)) = ∅
        // ≠ V. Lemma 4.1 in action — GetPut-existence alone is not
        // validity.
        let s = UpdateStrategy::parse(src, view, put, None).unwrap();
        let report = validate(&s).unwrap();
        assert!(!report.valid);
        assert_eq!(report.failed_pass, Some(FailedPass::PutGet));
        assert!(report.counterexample.is_some());

        // Now a genuine crossing: the view must include r1 (¬v deletes
        // from r1 ⇒ steady needs r1 ⊆ v) but also exclude r1 (v ∧ r1
        // inserts into r2? make it delete) —
        let (src2, view2) = union_schemas();
        let put2 = "
            -r1(X) :- r1(X), not v(X).
            -r2(X) :- r2(X), v(X), r1(X).
        ";
        // steady: r1 ⊆ v and ¬∃x v∧r1∧r2 ⇒ crossing when r1∩r2 ≠ ∅:
        // φ2 = r1(Y) (lower bound), φ1 = r1(Y)∧r2(Y) (upper-bound
        // violation): φ1∧φ2 satisfiable ⇒ invalid.
        let s2 = UpdateStrategy::parse(src2, view2, put2, None).unwrap();
        let report2 = validate(&s2).unwrap();
        assert!(!report2.valid);
        assert_eq!(report2.failed_pass, Some(FailedPass::GetPut));
        assert!(report2.counterexample.is_some());
    }

    #[test]
    fn selection_strategy_with_constraint_validates() {
        // Example 5.2's strategy with its constraint.
        let src = DatabaseSchema::new().with(Schema::new(
            "r",
            vec![("x", SortKind::Int), ("y", SortKind::Int)],
        ));
        let view = Schema::new("v", vec![("x", SortKind::Int), ("y", SortKind::Int)]);
        let put = "
            false :- v(X, Y), not Y > 2.
            +r(X, Y) :- v(X, Y), not r(X, Y).
            m(X, Y) :- r(X, Y), Y > 2.
            -r(X, Y) :- m(X, Y), not v(X, Y).
        ";
        let s = UpdateStrategy::parse(src, view, put, Some("v(X, Y) :- r(X, Y), Y > 2.")).unwrap();
        let report = validate(&s).unwrap();
        assert!(report.valid, "{:?}", report.reason);
        assert!(report.used_expected_get);
    }

    #[test]
    fn selection_without_constraint_fails_putget() {
        // Without the domain constraint, inserting a view tuple with
        // Y ≤ 2 is accepted by put (goes into r) but then get filters it
        // out: PutGet fails. The derived get-with-GetPut exists (lower
        // bound), so the failure surfaces in pass 3.
        let src = DatabaseSchema::new().with(Schema::new(
            "r",
            vec![("x", SortKind::Int), ("y", SortKind::Int)],
        ));
        let view = Schema::new("v", vec![("x", SortKind::Int), ("y", SortKind::Int)]);
        let put = "
            +r(X, Y) :- v(X, Y), not r(X, Y).
            m(X, Y) :- r(X, Y), Y > 2.
            -r(X, Y) :- m(X, Y), not v(X, Y).
        ";
        let s = UpdateStrategy::parse(src, view, put, Some("v(X, Y) :- r(X, Y), Y > 2.")).unwrap();
        let report = validate(&s).unwrap();
        assert!(!report.valid);
        assert_eq!(report.failed_pass, Some(FailedPass::PutGet));
    }

    #[test]
    fn ced_difference_strategy_validates() {
        // The case-study view ced = ed \ eed with its update strategy.
        let src = DatabaseSchema::new()
            .with(Schema::new(
                "ed",
                vec![("e", SortKind::Str), ("d", SortKind::Str)],
            ))
            .with(Schema::new(
                "eed",
                vec![("e", SortKind::Str), ("d", SortKind::Str)],
            ));
        let view = Schema::new("ced", vec![("e", SortKind::Str), ("d", SortKind::Str)]);
        let put = "
            +ed(E, D) :- ced(E, D), not ed(E, D).
            -eed(E, D) :- ced(E, D), eed(E, D).
            +eed(E, D) :- ed(E, D), not ced(E, D), not eed(E, D).
        ";
        let s = UpdateStrategy::parse(
            src,
            view,
            put,
            Some("ced(E, D) :- ed(E, D), not eed(E, D)."),
        )
        .unwrap();
        let report = validate(&s).unwrap();
        assert!(report.valid, "{:?}", report.reason);
        assert!(report.used_expected_get);
        assert!(report.lvgn);
    }

    #[test]
    fn derived_get_without_expected_for_difference() {
        let src = DatabaseSchema::new()
            .with(Schema::new(
                "ed",
                vec![("e", SortKind::Str), ("d", SortKind::Str)],
            ))
            .with(Schema::new(
                "eed",
                vec![("e", SortKind::Str), ("d", SortKind::Str)],
            ));
        let view = Schema::new("ced", vec![("e", SortKind::Str), ("d", SortKind::Str)]);
        let put = "
            +ed(E, D) :- ced(E, D), not ed(E, D).
            -eed(E, D) :- ced(E, D), eed(E, D).
            +eed(E, D) :- ed(E, D), not ced(E, D), not eed(E, D).
        ";
        let s = UpdateStrategy::parse(src, view, put, None).unwrap();
        let report = validate(&s).unwrap();
        assert!(report.valid, "{:?}", report.reason);
        let get = report.derived_get.unwrap();
        let text = get.to_string();
        assert!(
            text.contains("ed(") && text.contains("not eed("),
            "derived get should be the difference: {text}"
        );
    }

    #[test]
    fn timings_are_recorded() {
        let (src, view) = union_schemas();
        let s = UpdateStrategy::parse(src, view, UNION_PUT, None).unwrap();
        let report = validate(&s).unwrap();
        assert!(report.timings.total() > Duration::ZERO);
    }
}
