//! Core errors.

use std::fmt;

/// Errors raised while building or validating update strategies.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The putback program has a structural problem (bad head, arity
    /// mismatch with the schema, …).
    BadStrategy(String),
    /// A Datalog analysis failed (safety / recursion).
    Analysis(String),
    /// First-order machinery failed (unfold / RANF / translation).
    Logic(String),
    /// The bounded solver gave up (budget / domain bound).
    Solver(String),
    /// The view definition cannot be derived (program outside LVGN and no
    /// expected get provided).
    CannotDeriveGet(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::BadStrategy(m) => write!(f, "bad strategy: {m}"),
            CoreError::Analysis(m) => write!(f, "analysis error: {m}"),
            CoreError::Logic(m) => write!(f, "logic error: {m}"),
            CoreError::Solver(m) => write!(f, "solver error: {m}"),
            CoreError::CannotDeriveGet(m) => {
                write!(f, "cannot derive view definition: {m}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

impl From<birds_fol::UnfoldError> for CoreError {
    fn from(e: birds_fol::UnfoldError) -> Self {
        CoreError::Logic(e.to_string())
    }
}

impl From<birds_fol::ToDatalogError> for CoreError {
    fn from(e: birds_fol::ToDatalogError) -> Self {
        CoreError::Logic(e.to_string())
    }
}

impl From<birds_solver::SolverError> for CoreError {
    fn from(e: birds_solver::SolverError) -> Self {
        CoreError::Solver(e.to_string())
    }
}
