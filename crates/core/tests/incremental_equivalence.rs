//! Equivalence tests for the two incrementalization paths (§5):
//! on random databases and random view deltas, the source delta computed
//! by (a) the original putback program over `(S, V′)`, (b) the LVGN
//! shortcut `∂put` (Lemma 5.2), and (c) the general binarize-then-rewrite
//! pipeline (Appendix C / Figure 7) must agree about the new source.

use birds_core::{incrementalize_general, incrementalize_lvgn, UpdateStrategy};
use birds_datalog::{PredRef, Program};
use birds_eval::{evaluate_program, EvalContext};
use birds_store::{tuple, Database, Relation, Tuple};
use proptest::prelude::*;
use std::collections::HashSet;

/// Compute the new source when the view changes from `v_old` to `v_new`,
/// using the original putback program over `(S, V′)`.
fn new_source_via_original(strategy: &UpdateStrategy, db: &Database, v_new: &[Tuple]) -> Database {
    let mut scratch = db.clone();
    scratch
        .add_relation(
            Relation::with_tuples(
                strategy.view.name.clone(),
                strategy.view.arity(),
                v_new.iter().cloned(),
            )
            .unwrap(),
        )
        .unwrap();
    let out = {
        let mut ctx = EvalContext::new(&mut scratch);
        evaluate_program(&strategy.putdelta, &mut ctx).unwrap()
    };
    apply_deltas(strategy, db, &out.relations)
}

/// Compute the new source via an incremental program reading `(S, +v, -v)`.
fn new_source_via_incremental(
    strategy: &UpdateStrategy,
    program: &Program,
    db: &Database,
    v_old: &HashSet<Tuple>,
    v_new: &HashSet<Tuple>,
) -> Database {
    let mut scratch = db.clone();
    // The incremental program reads the OLD view plus the view deltas.
    scratch
        .add_relation(
            Relation::with_tuples(
                strategy.view.name.clone(),
                strategy.view.arity(),
                v_old.iter().cloned(),
            )
            .unwrap(),
        )
        .unwrap();
    let out = {
        let mut ctx = EvalContext::new(&mut scratch);
        ctx.insert_overlay(
            Relation::with_tuples(
                PredRef::ins(&strategy.view.name).flat_name(),
                strategy.view.arity(),
                v_new.difference(v_old).cloned(),
            )
            .unwrap(),
        );
        ctx.insert_overlay(
            Relation::with_tuples(
                PredRef::del(&strategy.view.name).flat_name(),
                strategy.view.arity(),
                v_old.difference(v_new).cloned(),
            )
            .unwrap(),
        );
        evaluate_program(program, &mut ctx).unwrap()
    };
    apply_deltas(strategy, db, &out.relations)
}

/// Apply the `±r` outputs of an evaluation to a copy of the source.
fn apply_deltas(
    strategy: &UpdateStrategy,
    db: &Database,
    outputs: &std::collections::BTreeMap<PredRef, Relation>,
) -> Database {
    let mut next = db.clone();
    for schema in &strategy.source_schema.relations {
        let rel = next.relation_mut(&schema.name).unwrap();
        if let Some(dels) = outputs.get(&PredRef::del(&schema.name)) {
            for t in dels.iter() {
                rel.remove(t);
            }
        }
        if let Some(inss) = outputs.get(&PredRef::ins(&schema.name)) {
            for t in inss.iter() {
                rel.insert(t.clone()).unwrap();
            }
        }
    }
    next
}

/// `get` for the union view, computed by hand.
fn union_view(db: &Database) -> HashSet<Tuple> {
    let mut v: HashSet<Tuple> = db.relation("r1").unwrap().iter().cloned().collect();
    v.extend(db.relation("r2").unwrap().iter().cloned());
    v
}

fn union_strategy() -> UpdateStrategy {
    use birds_store::{DatabaseSchema, Schema, SortKind};
    UpdateStrategy::parse(
        DatabaseSchema::new()
            .with(Schema::new("r1", vec![("a", SortKind::Int)]))
            .with(Schema::new("r2", vec![("a", SortKind::Int)])),
        Schema::new("v", vec![("a", SortKind::Int)]),
        "
        -r1(X) :- r1(X), not v(X).
        -r2(X) :- r2(X), not v(X).
        +r1(X) :- v(X), not r1(X), not r2(X).
        ",
        None,
    )
    .unwrap()
}

fn selection_strategy() -> UpdateStrategy {
    use birds_store::{DatabaseSchema, Schema, SortKind};
    UpdateStrategy::parse(
        DatabaseSchema::new().with(Schema::new(
            "r",
            vec![("x", SortKind::Int), ("y", SortKind::Int)],
        )),
        Schema::new("v", vec![("x", SortKind::Int), ("y", SortKind::Int)]),
        "
        false :- v(X, Y), not Y > 2.
        +r(X, Y) :- v(X, Y), not r(X, Y).
        m(X, Y) :- r(X, Y), Y > 2.
        -r(X, Y) :- m(X, Y), not v(X, Y).
        ",
        None,
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Union view: original ≡ ∂put(LVGN) ≡ ∂put(general) for arbitrary
    /// single-tuple view deltas starting from a consistent state.
    #[test]
    fn union_paths_agree(
        r1 in proptest::collection::vec(0i64..8, 0..6),
        r2 in proptest::collection::vec(0i64..8, 0..6),
        ins in 0i64..10,
        del in 0i64..10,
    ) {
        let strategy = union_strategy();
        let mut db = Database::new();
        db.add_relation(Relation::with_tuples("r1", 1, r1.iter().map(|&x| tuple![x])).unwrap()).unwrap();
        db.add_relation(Relation::with_tuples("r2", 1, r2.iter().map(|&x| tuple![x])).unwrap()).unwrap();

        let v_old = union_view(&db);
        let mut v_new = v_old.clone();
        v_new.insert(tuple![ins]);
        v_new.remove(&tuple![del]);

        let via_orig = new_source_via_original(
            &strategy, &db, &v_new.iter().cloned().collect::<Vec<_>>());

        let dput_lvgn = incrementalize_lvgn(&strategy).unwrap();
        let via_lvgn =
            new_source_via_incremental(&strategy, &dput_lvgn, &db, &v_old, &v_new);

        let dput_gen = incrementalize_general(&strategy).unwrap();
        let via_gen =
            new_source_via_incremental(&strategy, &dput_gen, &db, &v_old, &v_new);

        prop_assert!(via_orig.same_contents(&via_lvgn),
            "LVGN ∂put diverged:\n{dput_lvgn}");
        prop_assert!(via_orig.same_contents(&via_gen),
            "general ∂put diverged:\n{dput_gen}");
    }

    /// Selection view with an intermediate predicate: the three paths
    /// agree (deltas respect the Y > 2 constraint, as the runtime
    /// enforces).
    #[test]
    fn selection_paths_agree(
        rows in proptest::collection::vec((0i64..6, 0i64..6), 0..8),
        ix in 0i64..6,
        iy in 3i64..9,
        del in 0i64..6,
    ) {
        let strategy = selection_strategy();
        let mut db = Database::new();
        db.add_relation(
            Relation::with_tuples("r", 2, rows.iter().map(|&(x, y)| tuple![x, y])).unwrap(),
        ).unwrap();

        // v_old = σ_{y>2}(r)
        let v_old: HashSet<Tuple> = db
            .relation("r").unwrap().iter()
            .filter(|t| t[1] > birds_store::Value::int(2))
            .cloned()
            .collect();
        let mut v_new = v_old.clone();
        v_new.insert(tuple![ix, iy]);
        v_new.retain(|t| t[0] != birds_store::Value::int(del));

        let via_orig = new_source_via_original(
            &strategy, &db, &v_new.iter().cloned().collect::<Vec<_>>());

        let dput_lvgn = incrementalize_lvgn(&strategy).unwrap();
        let via_lvgn =
            new_source_via_incremental(&strategy, &dput_lvgn, &db, &v_old, &v_new);

        let dput_gen = incrementalize_general(&strategy).unwrap();
        let via_gen =
            new_source_via_incremental(&strategy, &dput_gen, &db, &v_old, &v_new);

        prop_assert!(via_orig.same_contents(&via_lvgn),
            "LVGN ∂put diverged:\n{dput_lvgn}");
        prop_assert!(via_orig.same_contents(&via_gen),
            "general ∂put diverged:\n{dput_gen}");
    }
}

/// Example 5.1 from the paper: a no-op delta stays a no-op through ∂put.
#[test]
fn example_5_1_interchangeability() {
    let strategy = union_strategy();
    let mut db = Database::new();
    db.add_relation(Relation::with_tuples("r1", 1, vec![tuple![1]]).unwrap())
        .unwrap();
    db.add_relation(Relation::with_tuples("r2", 1, vec![tuple![2], tuple![4]]).unwrap())
        .unwrap();
    let v_old = union_view(&db);
    // ΔV = {+3, -2} — the paper's running update.
    let mut v_new = v_old.clone();
    v_new.insert(tuple![3]);
    v_new.remove(&tuple![2]);

    let dput = incrementalize_lvgn(&strategy).unwrap();
    let next = new_source_via_incremental(&strategy, &dput, &db, &v_old, &v_new);
    // S' = {r1(1), r1(3), r2(4)}
    assert!(next.relation("r1").unwrap().contains(&tuple![1]));
    assert!(next.relation("r1").unwrap().contains(&tuple![3]));
    assert!(!next.relation("r2").unwrap().contains(&tuple![2]));
    assert!(next.relation("r2").unwrap().contains(&tuple![4]));
}
