//! The paper's §3.3 case study: a personnel database with a *tower* of
//! updatable views.
//!
//! ```text
//! base:   male(e,b)  female(e,b)  others(e,b,g)  ed(e,d)  eed(e,d)
//! views:  ced        = ed \ eed                  (current departments)
//!         residents  = male ∪ female ∪ others    (everyone, with gender)
//!         residents1962 = σ_{b in 1962}(residents)
//!         employees  = residents ⋉ ced           (semi-join)
//!         retired    = residents \ π_e(ced)
//! ```
//!
//! `residents1962`, `employees` and `retired` are defined *over other
//! updatable views* — updating them cascades through `residents`/`ced`
//! down to the base tables, exactly as §3.3 describes.
//!
//! Run with: `cargo run --example hr_database` (add `--release` for the
//! fastest validation).

use birds::prelude::*;

fn base_database() -> Database {
    let mut db = Database::new();
    db.add_relation(
        Relation::with_tuples(
            "male",
            2,
            vec![tuple!["bob", "1962-03-04"], tuple!["dan", "1955-11-30"]],
        )
        .unwrap(),
    )
    .unwrap();
    db.add_relation(
        Relation::with_tuples(
            "female",
            2,
            vec![tuple!["ann", "1962-07-21"], tuple!["eve", "1970-01-15"]],
        )
        .unwrap(),
    )
    .unwrap();
    db.add_relation(
        Relation::with_tuples("others", 3, vec![tuple!["kim", "1980-05-05", "X"]]).unwrap(),
    )
    .unwrap();
    db.add_relation(
        Relation::with_tuples(
            "ed",
            2,
            vec![
                tuple!["ann", "sales"],
                tuple!["bob", "rnd"],
                tuple!["dan", "sales"],
                tuple!["eve", "rnd"],
                tuple!["kim", "hr"],
            ],
        )
        .unwrap(),
    )
    .unwrap();
    db.add_relation(Relation::with_tuples("eed", 2, vec![tuple!["dan", "sales"]]).unwrap())
        .unwrap();
    db
}

fn show(engine: &Engine, names: &[&str]) {
    for n in names {
        println!("  {}", engine.relation(n).expect(n));
    }
}

fn main() {
    let mut engine = Engine::new(base_database());

    // ---- ced = ed \ eed (difference view over base tables) -----------
    let ced = UpdateStrategy::parse(
        DatabaseSchema::new()
            .with(Schema::new(
                "ed",
                vec![("e", SortKind::Str), ("d", SortKind::Str)],
            ))
            .with(Schema::new(
                "eed",
                vec![("e", SortKind::Str), ("d", SortKind::Str)],
            )),
        Schema::new("ced", vec![("e", SortKind::Str), ("d", SortKind::Str)]),
        "
        +ed(E, D)  :- ced(E, D), not ed(E, D).
        -eed(E, D) :- ced(E, D), eed(E, D).
        +eed(E, D) :- ed(E, D), not ced(E, D), not eed(E, D).
        ",
        Some("ced(E, D) :- ed(E, D), not eed(E, D)."),
    )
    .expect("ced strategy parses");
    let report = validate(&ced).expect("ced validation runs");
    assert!(report.valid, "ced: {:?}", report.reason);
    println!(
        "ced validated (expected get confirmed: {})",
        report.used_expected_get
    );
    engine
        .register_view(ced, StrategyMode::Incremental)
        .unwrap();

    // ---- residents = male ∪ female ∪ others (gender-directed put) ----
    let residents = UpdateStrategy::parse(
        DatabaseSchema::new()
            .with(Schema::new(
                "male",
                vec![("e", SortKind::Str), ("b", SortKind::Str)],
            ))
            .with(Schema::new(
                "female",
                vec![("e", SortKind::Str), ("b", SortKind::Str)],
            ))
            .with(Schema::new(
                "others",
                vec![
                    ("e", SortKind::Str),
                    ("b", SortKind::Str),
                    ("g", SortKind::Str),
                ],
            )),
        Schema::new(
            "residents",
            vec![
                ("e", SortKind::Str),
                ("b", SortKind::Str),
                ("g", SortKind::Str),
            ],
        ),
        "
        +male(E, B)   :- residents(E, B, 'M'), not male(E, B), not others(E, B, 'M').
        -male(E, B)   :- male(E, B), not residents(E, B, 'M').
        +female(E, B) :- residents(E, B, G), G = 'F', not female(E, B), not others(E, B, G).
        -female(E, B) :- female(E, B), not residents(E, B, 'F').
        +others(E, B, G) :- residents(E, B, G), not G = 'M', not G = 'F', not others(E, B, G).
        -others(E, B, G) :- others(E, B, G), not residents(E, B, G).
        ",
        Some(
            "
            residents(E, B, G)   :- others(E, B, G).
            residents(E, B, 'F') :- female(E, B).
            residents(E, B, 'M') :- male(E, B).
            ",
        ),
    )
    .expect("residents strategy parses");
    engine
        .register_view(residents, StrategyMode::Incremental)
        .expect("residents validates and registers");
    println!("residents validated");

    // ---- residents1962: selection over the *view* residents ----------
    let residents1962 = UpdateStrategy::parse(
        DatabaseSchema::new().with(Schema::new(
            "residents",
            vec![
                ("e", SortKind::Str),
                ("b", SortKind::Str),
                ("g", SortKind::Str),
            ],
        )),
        Schema::new(
            "residents1962",
            vec![
                ("e", SortKind::Str),
                ("b", SortKind::Str),
                ("g", SortKind::Str),
            ],
        ),
        "
        false :- residents1962(E, B, G), B > '1962-12-31'.
        false :- residents1962(E, B, G), B < '1962-01-01'.
        +residents(E, B, G) :- residents1962(E, B, G), not residents(E, B, G).
        -residents(E, B, G) :- residents(E, B, G), not B < '1962-01-01',
                               not B > '1962-12-31', not residents1962(E, B, G).
        ",
        Some(
            "residents1962(E, B, G) :- residents(E, B, G),
                 not B < '1962-01-01', not B > '1962-12-31'.",
        ),
    )
    .expect("residents1962 strategy parses");
    engine
        .register_view(residents1962, StrategyMode::Incremental)
        .expect("residents1962 validates and registers");
    println!("residents1962 validated");

    // ---- retired: residents without a current department -------------
    let retired = UpdateStrategy::parse(
        DatabaseSchema::new()
            .with(Schema::new(
                "residents",
                vec![
                    ("e", SortKind::Str),
                    ("b", SortKind::Str),
                    ("g", SortKind::Str),
                ],
            ))
            .with(Schema::new(
                "ced",
                vec![("e", SortKind::Str), ("d", SortKind::Str)],
            )),
        Schema::new("retired", vec![("e", SortKind::Str)]),
        "
        -ced(E, D) :- ced(E, D), retired(E).
        +ced(E, D) :- residents(E, _, _), not retired(E), not ced(E, _), D = 'unknown'.
        +residents(E, B, G) :- retired(E), G = 'unknown', not residents(E, _, _),
                               B = '00-00-00'.
        ",
        Some("retired(E) :- residents(E, B, G), not ced(E, _)."),
    )
    .expect("retired strategy parses");
    engine
        .register_view(retired, StrategyMode::Original)
        .expect("retired validates and registers");
    println!("retired validated");

    println!("\ninitial state:");
    show(
        &engine,
        &[
            "male",
            "female",
            "others",
            "ed",
            "eed",
            "ced",
            "residents",
            "residents1962",
            "retired",
        ],
    );

    // ---- Updates cascade down the view tower --------------------------
    // 1. kim moves from hr to rnd: update the *ced* view.
    engine
        .execute(
            "BEGIN; DELETE FROM ced WHERE e = 'kim'; INSERT INTO ced VALUES ('kim', 'rnd'); END;",
        )
        .unwrap();
    println!("\nafter moving kim to rnd via the ced view:");
    show(&engine, &["ed", "eed", "ced"]);

    // 2. A new 1962-born resident arrives through residents1962; the
    //    insertion cascades residents1962 → residents → male.
    engine
        .execute("INSERT INTO residents1962 VALUES ('sam', '1962-09-09', 'M');")
        .unwrap();
    println!("\nafter inserting sam through residents1962:");
    show(&engine, &["male", "residents", "residents1962"]);
    assert!(engine
        .relation("male")
        .unwrap()
        .contains(&tuple!["sam", "1962-09-09"]));

    // 3. Dates outside 1962 are rejected by the view constraints.
    let err = engine
        .execute("INSERT INTO residents1962 VALUES ('zoe', '1963-01-01', 'F');")
        .unwrap_err();
    println!("\nconstraint rejection works: {err}");

    // 4. ann retires: inserting into `retired` removes her current
    //    department (cascading into eed bookkeeping via ced's strategy).
    engine.refresh_view("retired").unwrap();
    engine
        .execute("INSERT INTO retired VALUES ('ann');")
        .unwrap();
    println!("\nafter ann retires:");
    show(&engine, &["ed", "eed", "ced", "retired"]);
    assert!(!engine
        .relation("ced")
        .unwrap()
        .contains(&tuple!["ann", "sales"]));

    println!("\ncase study complete: all four update strategies validated and executed.");
}
