//! Quickstart: Example 3.1 of the paper, end to end.
//!
//! A view `v = r1 ∪ r2` is inherently ambiguous to update (an inserted
//! tuple could go to `r1`, `r2`, or both). We *program* the strategy:
//! deletions remove from whichever table held the tuple, insertions go
//! to `r1`. BIRDS validates the strategy, derives the view definition,
//! and runs updates through it.
//!
//! Run with: `cargo run --example quickstart`

use birds::prelude::*;

fn main() {
    // 1. Declare the source schema and the view schema.
    let source = DatabaseSchema::new()
        .with(Schema::new("r1", vec![("a", SortKind::Int)]))
        .with(Schema::new("r2", vec![("a", SortKind::Int)]));
    let view = Schema::new("v", vec![("a", SortKind::Int)]);

    // 2. Program the update strategy as Datalog delta rules.
    let strategy = UpdateStrategy::parse(
        source,
        view,
        "
        -r1(X) :- r1(X), not v(X).
        -r2(X) :- r2(X), not v(X).
        +r1(X) :- v(X), not r1(X), not r2(X).
        ",
        None,
    )
    .expect("well-formed strategy");

    println!("putback program:\n{}", strategy.putdelta);
    println!("in LVGN-Datalog: {}", strategy.is_lvgn());

    // 3. Validate (Algorithm 1). The view definition `get` is *derived*
    //    from the strategy — we never wrote it.
    let report = validate(&strategy).expect("validation ran");
    assert!(report.valid, "strategy must be valid: {:?}", report.reason);
    let get = report.derived_get.clone().expect("valid ⇒ get");
    println!("\nderived view definition (get):\n{get}");

    // 4. Load data and register the updatable view.
    let mut db = Database::new();
    db.add_relation(Relation::with_tuples("r1", 1, vec![tuple![1]]).unwrap())
        .unwrap();
    db.add_relation(Relation::with_tuples("r2", 1, vec![tuple![2], tuple![4]]).unwrap())
        .unwrap();
    let mut engine = Engine::new(db);
    engine
        .register_view(strategy, StrategyMode::Incremental)
        .expect("registration validates and materializes the view");

    println!("\ninitial v  = {}", engine.relation("v").unwrap());

    // 5. Update the view with plain DML; the strategy translates it.
    //    This is the paper's running example: V = {1, 3, 4}.
    engine
        .execute("BEGIN; INSERT INTO v VALUES (3); DELETE FROM v WHERE a = 2; END;")
        .expect("update translates cleanly");

    println!("after update:");
    println!("  r1 = {}", engine.relation("r1").unwrap());
    println!("  r2 = {}", engine.relation("r2").unwrap());
    println!("  v  = {}", engine.relation("v").unwrap());

    // The paper's expected outcome: S' = {r1(1), r1(3), r2(4)}.
    assert!(engine.relation("r1").unwrap().contains(&tuple![3]));
    assert!(!engine.relation("r2").unwrap().contains(&tuple![2]));
    println!("\nPutGet holds: the updated view is exactly get(updated source).");
}
