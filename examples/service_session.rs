//! The service layer: concurrent sessions and batched updates.
//!
//! Example 3.1's union view, served. Three things the raw engine cannot
//! do on its own:
//!
//! 1. several clients share one database (thread-safe sessions);
//! 2. a batch coalesces many statements into one *net* view delta and
//!    pays one incremental evaluation for the whole batch;
//! 3. the same session can be driven remotely over the line-delimited
//!    JSON protocol (here via the in-process client — `birds-serve`
//!    speaks the identical protocol over TCP).
//!
//! Run with: `cargo run --example service_session`

use birds::prelude::*;
use birds::service::LocalClient;

fn main() {
    // Source tables and the programmed union strategy (Example 3.1).
    let mut db = Database::new();
    db.add_relation(Relation::with_tuples("r1", 1, vec![tuple![1]]).unwrap())
        .unwrap();
    db.add_relation(Relation::with_tuples("r2", 1, vec![tuple![2], tuple![4]]).unwrap())
        .unwrap();
    let strategy = UpdateStrategy::parse(
        DatabaseSchema::new()
            .with(Schema::new("r1", vec![("a", SortKind::Int)]))
            .with(Schema::new("r2", vec![("a", SortKind::Int)])),
        Schema::new("v", vec![("a", SortKind::Int)]),
        "
        -r1(X) :- r1(X), not v(X).
        -r2(X) :- r2(X), not v(X).
        +r1(X) :- v(X), not r1(X), not r2(X).
        ",
        None,
    )
    .unwrap();
    let mut engine = Engine::new(db);
    engine
        .register_view(strategy, StrategyMode::Incremental)
        .unwrap();

    // Wrap the engine in a service: cheap-to-clone, thread-safe.
    let service = Service::new(engine);

    // --- 1. Concurrent writers -------------------------------------
    let writers: Vec<_> = (0..4)
        .map(|t| {
            let service = service.clone();
            std::thread::spawn(move || {
                let mut session = service.session();
                for i in 0..5 {
                    session
                        .execute(&format!("INSERT INTO v VALUES ({});", 100 * (t + 1) + i))
                        .expect("autocommit insert");
                }
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    println!(
        "after 4 concurrent writers: |v| = {}, commits = {}",
        service.query("v").unwrap().len(),
        service.commits()
    );

    // --- 2. A batch: many statements, ONE incremental pass ---------
    let mut session = service.session();
    session.begin().unwrap();
    for i in 0..100 {
        session
            .execute(&format!("INSERT INTO v VALUES ({});", 1000 + i))
            .unwrap();
    }
    // Half of them change their mind — the deletes cancel pending
    // inserts, so they never even reach the engine.
    for i in 0..50 {
        session
            .execute(&format!("DELETE FROM v WHERE a = {};", 1000 + 2 * i))
            .unwrap();
    }
    let commit = session.commit().unwrap();
    println!(
        "batch: {} statements coalesced to a {}-tuple net delta, applied as commit #{}",
        commit.statements, commit.stats.view_delta_size, commit.commit_seq
    );

    // --- 3. The wire protocol, in process ---------------------------
    let mut client = LocalClient::connect(&service);
    for line in [
        r#"{"op":"ping"}"#,
        r#"{"op":"execute","sql":"INSERT INTO v VALUES (7777);"}"#,
        r#"{"op":"query","relation":"r1"}"#,
        r#"{"op":"stats"}"#,
    ] {
        println!("-> {line}");
        let response = client.request_line(line);
        let shown: String = response.chars().take(120).collect();
        println!(
            "<- {shown}{}",
            if shown.len() < response.len() {
                "…"
            } else {
                ""
            }
        );
    }

    // The view invariant held throughout: v = r1 ∪ r2.
    let (r1, r2, v) = (
        service.query("r1").unwrap(),
        service.query("r2").unwrap(),
        service.query("v").unwrap(),
    );
    assert_eq!(r1.len() + r2.len(), v.len(), "v = r1 ∪ r2 (disjoint here)");
    println!(
        "final: |r1| = {}, |r2| = {}, |v| = {}",
        r1.len(),
        r2.len(),
        v.len()
    );
}
