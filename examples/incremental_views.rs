//! Incrementalization (§5) in action — a small-scale Figure 6.
//!
//! The same update strategy is executed two ways over growing base
//! tables:
//!
//! * **Original**: every view update re-evaluates the whole putback
//!   program over `(S, V′)` — cost grows with `|S|`.
//! * **Incremental**: the derived `∂put` program reads only the view
//!   deltas `+v` / `-v` — cost stays (near-)constant.
//!
//! Run with: `cargo run --release --example incremental_views`

use birds::prelude::*;
use std::time::Instant;

/// The Figure 6(a) view: luxuryitems = σ_{price > 1000}(items).
fn luxury_strategy() -> UpdateStrategy {
    UpdateStrategy::parse(
        DatabaseSchema::new().with(Schema::new(
            "items",
            vec![("id", SortKind::Int), ("price", SortKind::Int)],
        )),
        Schema::new(
            "luxuryitems",
            vec![("id", SortKind::Int), ("price", SortKind::Int)],
        ),
        "
        false :- luxuryitems(I, P), not P > 1000.
        +items(I, P) :- luxuryitems(I, P), not items(I, P).
        expensive(I, P) :- items(I, P), P > 1000.
        -items(I, P) :- expensive(I, P), not luxuryitems(I, P).
        ",
        Some("luxuryitems(I, P) :- items(I, P), P > 1000."),
    )
    .expect("strategy parses")
}

/// Populate `items` with `n` rows; ids are dense, prices alternate cheap
/// and expensive so the view stays at ~half the base size.
fn items_database(n: usize) -> Database {
    let tuples = (0..n as i64).map(|i| tuple![i, 500 + (i % 2) * 1000]);
    let mut db = Database::new();
    db.add_relation(Relation::with_tuples("items", 2, tuples).unwrap())
        .unwrap();
    db
}

fn time_one_update(n: usize, mode: StrategyMode, get: &Program) -> f64 {
    let mut engine = Engine::new(items_database(n));
    engine
        .register_view_unchecked(luxury_strategy(), get.clone(), mode)
        .unwrap();
    let id = n as i64 + 7;
    let sql = format!(
        "BEGIN; INSERT INTO luxuryitems VALUES ({id}, 5000); \
         DELETE FROM luxuryitems WHERE id = 1; END;"
    );
    let t = Instant::now();
    engine.execute(&sql).expect("update succeeds");
    t.elapsed().as_secs_f64() * 1e3
}

fn main() {
    let strategy = luxury_strategy();

    // Validate once; both execution modes reuse the confirmed get.
    let report = validate(&strategy).expect("validation runs");
    assert!(report.valid, "{:?}", report.reason);
    let get = report.derived_get.clone().unwrap();
    println!("strategy valid; get = {get}");

    // ∂put is derived by the LVGN shortcut (Lemma 5.2): v ↦ +v, ¬v ↦ -v.
    let dput = incrementalize(&strategy).expect("incrementalizable");
    println!("incrementalized program (∂put):\n{dput}");

    println!(
        "{:>10} {:>14} {:>14}",
        "base size", "original (ms)", "incremental (ms)"
    );
    for n in [1_000, 10_000, 100_000, 300_000] {
        let orig = time_one_update(n, StrategyMode::Original, &get);
        let inc = time_one_update(n, StrategyMode::Incremental, &get);
        println!("{n:>10} {orig:>14.2} {inc:>14.2}");
    }
    println!("\nThe original column grows ~linearly; the incremental column is flat —");
    println!("the shape of every panel of the paper's Figure 6.");
}
