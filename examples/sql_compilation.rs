//! Compiling a validated strategy to PostgreSQL SQL (§6.1).
//!
//! BIRDS's deployment path is: validate the Datalog strategy, derive the
//! view definition, then emit `CREATE VIEW` plus an `INSTEAD OF` trigger
//! program implementing the strategy (derive ΔV → check constraints →
//! compute and apply source deltas). This example prints the emitted SQL
//! for both the original and the incrementalized strategy.
//!
//! Run with: `cargo run --example sql_compilation`

use birds::prelude::*;

fn main() {
    // The Table-1 row #3 view: luxuryitems (selection with a domain
    // constraint).
    let strategy = UpdateStrategy::parse(
        DatabaseSchema::new().with(Schema::new(
            "items",
            vec![("id", SortKind::Int), ("price", SortKind::Int)],
        )),
        Schema::new(
            "luxuryitems",
            vec![("id", SortKind::Int), ("price", SortKind::Int)],
        ),
        "
        false :- luxuryitems(I, P), not P > 1000.
        +items(I, P) :- luxuryitems(I, P), not items(I, P).
        expensive(I, P) :- items(I, P), P > 1000.
        -items(I, P) :- expensive(I, P), not luxuryitems(I, P).
        ",
        None,
    )
    .expect("strategy parses");

    let report = validate(&strategy).expect("validation runs");
    assert!(report.valid, "{:?}", report.reason);
    let get = report.derived_get.clone().unwrap();

    let compiled = compile_strategy(&strategy, &get);

    println!("-- ======== view definition ========");
    println!("{}", compiled.create_view);
    println!();
    println!("-- ======== update strategy (original putdelta) ========");
    println!("{}", compiled.trigger_program);

    if let Some(inc) = &compiled.incremental_trigger_program {
        println!("-- ======== update strategy (incrementalized ∂put) ========");
        println!("{inc}");
    }

    // The Table-1 "Compiled SQL (Byte)" column for this view:
    println!("-- compiled SQL size: {} bytes", compiled.byte_size());
}
