//! Offline stub of `serde_derive`.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the minimal surface it needs. The repo only *derives*
//! `Serialize`/`Deserialize` (nothing serializes at runtime yet), so the
//! derive macros expand to nothing. Swap the `serde` entry in the root
//! `[workspace.dependencies]` to the registry crate to restore real
//! serialization.

use proc_macro::TokenStream;

/// Derive macro for `serde::Serialize`; expands to nothing.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Derive macro for `serde::Deserialize`; expands to nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
