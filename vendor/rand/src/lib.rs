//! Offline stub of `rand`.
//!
//! The build environment cannot reach crates.io, so this workspace vendors
//! the subset of the `rand` 0.8 API it actually uses: `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen_bool` and `Rng::gen_range` over
//! integer ranges. The generator is SplitMix64 — deterministic for a given
//! seed, statistically fine for synthetic benchmark data, **not**
//! cryptographic. Swap the `rand` entry in the root
//! `[workspace.dependencies]` to the registry crate for the real thing
//! (seeds will then produce different streams).

use std::ops::{Range, RangeInclusive};

/// Construction of a generator from a seed (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// The random-value surface this workspace uses (subset of `rand::Rng`).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} not in [0, 1]");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }

    /// A uniform value from a (half-open or inclusive) integer range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

/// Ranges that can be sampled uniformly (subset of `rand::distributions`).
pub trait SampleRange<T> {
    /// Draw one uniform value from `self`.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (self.start as i128, self.end as i128);
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi - lo) as u128;
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u128 + 1;
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

pub mod rngs {
    //! Concrete generators (subset of `rand::rngs`).

    use super::{Rng, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng` (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
            let y = rng.gen_range(1..=28);
            assert!((1..=28).contains(&y));
            let z: usize = rng.gen_range(0usize..3);
            assert!(z < 3);
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(42);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&heads), "heads={heads}");
    }
}
