//! String generation from the regex subset the test suites use.
//!
//! Supported syntax: literal characters, `\` escapes, character classes
//! `[a-z0-9_]` (ranges and literals; `-` first or last is literal), and
//! the quantifiers `{m}`, `{m,n}`, `?`, `*`, `+` (unbounded repetition is
//! capped at 8). Anything fancier panics loudly rather than silently
//! generating the wrong language.

use crate::test_runner::TestRng;

/// One pattern element: a set of candidate chars plus a repetition range.
struct Atom {
    choices: Vec<char>,
    min: usize,
    max: usize,
}

/// Generate a string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let atoms = parse(pattern);
    let mut out = String::new();
    for atom in &atoms {
        let n = atom.min + rng.below(atom.max - atom.min + 1);
        for _ in 0..n {
            out.push(atom.choices[rng.below(atom.choices.len())]);
        }
    }
    out
}

fn parse(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed '[' in pattern {pattern:?}"));
                let class = &chars[i + 1..i + close];
                i += close + 1;
                parse_class(class, pattern)
            }
            '\\' => {
                i += 2;
                vec![*chars
                    .get(i - 1)
                    .unwrap_or_else(|| panic!("trailing '\\' in pattern {pattern:?}"))]
            }
            '(' | ')' | '|' | '.' | '^' | '$' => {
                panic!(
                    "unsupported regex syntax {:?} in pattern {pattern:?}",
                    chars[i]
                )
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (min, max) = parse_quantifier(&chars, &mut i, pattern);
        atoms.push(Atom { choices, min, max });
    }
    atoms
}

fn parse_class(class: &[char], pattern: &str) -> Vec<char> {
    assert!(
        !class.is_empty(),
        "empty character class in pattern {pattern:?}"
    );
    assert!(
        class[0] != '^',
        "negated character class in pattern {pattern:?} is unsupported"
    );
    let mut choices = Vec::new();
    let mut i = 0;
    while i < class.len() {
        // `a-z` range — the `-` must be flanked (not first or last).
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i], class[i + 2]);
            assert!(lo <= hi, "inverted range {lo}-{hi} in pattern {pattern:?}");
            for c in lo..=hi {
                choices.push(c);
            }
            i += 3;
        } else {
            choices.push(class[i]);
            i += 1;
        }
    }
    choices
}

fn parse_quantifier(chars: &[char], i: &mut usize, pattern: &str) -> (usize, usize) {
    const UNBOUNDED_CAP: usize = 8;
    match chars.get(*i) {
        Some('?') => {
            *i += 1;
            (0, 1)
        }
        Some('*') => {
            *i += 1;
            (0, UNBOUNDED_CAP)
        }
        Some('+') => {
            *i += 1;
            (1, UNBOUNDED_CAP)
        }
        Some('{') => {
            let close = chars[*i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed '{{' in pattern {pattern:?}"));
            let body: String = chars[*i + 1..*i + close].iter().collect();
            *i += close + 1;
            let (min, max) = match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad quantifier lower bound"),
                    hi.trim().parse().expect("bad quantifier upper bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad quantifier count");
                    (n, n)
                }
            };
            assert!(min <= max, "inverted quantifier in pattern {pattern:?}");
            (min, max)
        }
        _ => (1, 1),
    }
}

#[cfg(test)]
mod tests {
    use super::generate;
    use crate::test_runner::TestRng;

    #[test]
    fn identifier_pattern_generates_identifiers() {
        let mut rng = TestRng::deterministic("ident");
        for _ in 0..200 {
            let s = generate("[a-z][a-z0-9_]{0,6}", &mut rng);
            assert!((1..=7).contains(&s.len()), "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase(), "{s:?}");
            assert!(
                s.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "{s:?}"
            );
        }
    }

    #[test]
    fn trailing_dash_is_literal() {
        let mut rng = TestRng::deterministic("dash");
        for _ in 0..100 {
            let s = generate("[a-z0-9 -]{0,8}", &mut rng);
            assert!(s.len() <= 8, "{s:?}");
            assert!(
                s.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == ' ' || c == '-'),
                "{s:?}"
            );
        }
    }
}
