//! Config, RNG and error types backing the `proptest!` runner.

use std::fmt;

/// How many cases each property checks (subset of the real config).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property case (what `prop_assert!` early-returns).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Build a failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic SplitMix64 generator; seeded from the test name so every
/// run (local or CI) generates the same cases and failures reproduce.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator whose stream is a pure function of `name`.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test name, so distinct tests get distinct streams.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform index in `0..bound` (`bound` must be non-zero).
    pub fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0, "below(0)");
        (self.next_u64() % bound as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::TestRng;

    #[test]
    fn streams_are_deterministic_and_distinct() {
        let mut a = TestRng::deterministic("alpha");
        let mut b = TestRng::deterministic("alpha");
        let mut c = TestRng::deterministic("beta");
        let (xa, xb, xc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }
}
