//! Collection strategies (`proptest::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A size bound for generated collections.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty collection size range");
        SizeRange {
            min: range.start,
            max: range.end,
        }
    }
}

/// A strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Result of [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        let span = self.size.max - self.size.min;
        let len = self.size.min + rng.below(span.max(1));
        (0..len).map(|_| self.element.gen_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_lengths_respect_bounds() {
        let mut rng = TestRng::deterministic("vec_len");
        let strat = vec(0i64..5, 2..7);
        for _ in 0..200 {
            let v = strat.gen_value(&mut rng);
            assert!((2..7).contains(&v.len()), "len={}", v.len());
            assert!(v.iter().all(|&x| (0..5).contains(&x)));
        }
    }
}
