//! The `Strategy` trait and the combinators the test suites use.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A generator of values of type `Self::Value`.
///
/// Unlike the real crate there is no value tree: generation is direct and
/// shrinking is absent, so a strategy is just a deterministic function of
/// the RNG state.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred` (regenerating otherwise).
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }

    /// Build recursive structures: `self` generates leaves, and `recurse`
    /// wraps an inner strategy into one more nesting level, applied up to
    /// `depth` times. The size-tuning parameters of the real crate are
    /// accepted but ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let branch = recurse(strat).boxed();
            let leaf = leaf.clone();
            // Mix leaves back in so generated values span all depths
            // rather than always nesting `depth` levels.
            strat = BoxedStrategy::from_fn(move |rng| {
                if rng.below(4) == 0 {
                    leaf.gen_value(rng)
                } else {
                    branch.gen_value(rng)
                }
            });
        }
        strat
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy::from_fn(move |rng| self.gen_value(rng))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    generate: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> BoxedStrategy<T> {
    /// Wrap a plain generation function.
    pub fn from_fn(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        BoxedStrategy {
            generate: Rc::new(f),
        }
    }
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            generate: Rc::clone(&self.generate),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        (self.generate)(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn gen_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// Result of [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn gen_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let value = self.inner.gen_value(rng);
            if (self.pred)(&value) {
                return value;
            }
        }
        panic!(
            "prop_filter rejected 10000 consecutive values: {}",
            self.reason
        );
    }
}

/// Uniform choice between strategies; what `prop_oneof!` builds.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        let arm = rng.below(self.arms.len());
        self.arms[arm].gen_value(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (self.start as i128, self.end as i128);
                assert!(lo < hi, "strategy range is empty");
                let span = (hi - lo) as u128;
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "strategy range is empty");
                let span = (hi - lo) as u128 + 1;
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($field:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($field: Strategy),+> Strategy for ($($field,)+) {
            type Value = ($($field::Value,)+);

            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($field,)+) = self;
                ($($field.gen_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// String strategies from a regex-like pattern (see [`crate::string`]).
impl Strategy for &'static str {
    type Value = String;

    fn gen_value(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_tuples_and_maps_compose() {
        let mut rng = TestRng::deterministic("compose");
        let strat = (0i64..6, 1usize..=3).prop_map(|(a, b)| a as usize + b);
        for _ in 0..200 {
            let v = strat.gen_value(&mut rng);
            assert!((1..=8).contains(&v), "v={v}");
        }
    }

    #[test]
    fn union_covers_all_arms() {
        let mut rng = TestRng::deterministic("union");
        let strat = Union::new(vec![Just(1).boxed(), Just(2).boxed(), Just(3).boxed()]);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[strat.gen_value(&mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    #[test]
    fn filter_respects_predicate() {
        let mut rng = TestRng::deterministic("filter");
        let strat = (0i64..100).prop_filter("even only", |v| v % 2 == 0);
        for _ in 0..100 {
            assert_eq!(strat.gen_value(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn recursive_strategies_terminate_and_vary_depth() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(#[allow(dead_code)] i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0i64..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(4, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = TestRng::deterministic("recursive");
        let mut max_depth = 0;
        for _ in 0..200 {
            let t = strat.gen_value(&mut rng);
            let d = depth(&t);
            assert!(d <= 4, "depth={d}");
            max_depth = max_depth.max(d);
        }
        assert!(max_depth >= 2, "never recursed (max_depth={max_depth})");
    }
}
