//! Offline stub of `proptest`.
//!
//! The build environment cannot reach crates.io, so this workspace vendors
//! a small, dependency-free property-testing engine that covers exactly
//! the strategy surface the test suites use:
//!
//! * `proptest!` with `#![proptest_config(ProptestConfig::with_cases(n))]`
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`
//! * integer range strategies (`0i64..6`), tuples of strategies,
//!   `Just`, `any::<T>()`, `prop_oneof!`, `proptest::collection::vec`
//! * string strategies from a regex-like character-class pattern
//!   (`"[a-z][a-z0-9_]{0,6}"`)
//! * `Strategy::{prop_map, prop_filter, prop_recursive, boxed}`
//!
//! Semantics versus the real crate: generation is **deterministic** (the
//! RNG is seeded from the test-function name, so failures reproduce), and
//! there is **no shrinking** — a failing case panics with the full input
//! values instead of a minimized one. Swap the `proptest` entry in the
//! root `[workspace.dependencies]` to the registry crate for real
//! shrinking; the test sources need no changes.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Everything the test suites import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that checks the body across generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng =
                $crate::test_runner::TestRng::deterministic(::core::stringify!($name));
            for case in 0..config.cases {
                $(let $arg =
                    $crate::strategy::Strategy::gen_value(&($strat), &mut rng);)*
                let inputs = {
                    let mut s = ::std::string::String::new();
                    $(s.push_str(&::std::format!(
                        "\n  {} = {:?}", ::core::stringify!($arg), &$arg));)*
                    s
                };
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(err) = outcome {
                    ::std::panic!(
                        "proptest case {}/{} of `{}` failed: {}\ninputs:{}",
                        case + 1, config.cases, ::core::stringify!($name), err, inputs,
                    );
                }
            }
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}

/// Fail the enclosing property (early-returns a `TestCaseError`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", ::core::stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// `prop_assert!` specialized to equality, printing both operands.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
            left, right,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "{}\n  left: {:?}\n right: {:?}",
            ::std::format!($($fmt)+), left, right,
        );
    }};
}

/// `prop_assert!` specialized to inequality, printing both operands.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `left != right`\n  both: {:?}",
            left,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "{}\n  both: {:?}",
            ::std::format!($($fmt)+), left,
        );
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
