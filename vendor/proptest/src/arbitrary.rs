//! `any::<T>()` for the primitive types the test suites draw from.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Generate one arbitrary value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

/// The canonical strategy for `T`'s full domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_bool_hits_both_values() {
        let mut rng = TestRng::deterministic("any_bool");
        let strat = any::<bool>();
        let trues = (0..100).filter(|_| strat.gen_value(&mut rng)).count();
        assert!(trues > 20 && trues < 80, "trues={trues}");
    }
}
