//! Offline stub of `serde`.
//!
//! The build environment cannot reach crates.io, so this workspace vendors
//! the minimal surface it uses: the two trait names and their derive
//! macros (which expand to nothing — see `vendor/serde_derive`). Replace
//! the `serde` entry in the root `[workspace.dependencies]` with the
//! registry crate to restore real serialization.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
