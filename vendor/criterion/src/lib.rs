//! Offline stub of `criterion`.
//!
//! The build environment cannot reach crates.io, so this workspace vendors
//! the subset of the criterion 0.5 API its benches use: `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `Bencher::
//! {iter, iter_batched}`, `BenchmarkId`, `BatchSize`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Statistics are deliberately simple: each benchmark runs one warm-up
//! iteration plus `min(sample_size, 10)` timed iterations and reports the
//! mean and minimum wall-clock time per iteration to stdout. There are no
//! outlier analyses, plots, or saved baselines. Swap the `criterion` entry
//! in the root `[workspace.dependencies]` to the registry crate for real
//! measurements; the bench sources need no changes.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost; accepted and ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id rendered as the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { id: name.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { id: name }
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        run_benchmark(&id.into().id, 10, f);
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (capped at 10 in this stub).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Accepted and ignored (the stub always warms up with one iteration).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted and ignored (the stub times a fixed number of samples).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into());
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (reporting is per-benchmark, so this is a no-op).
    pub fn finish(self) {}
}

/// Passed to benchmark closures to time the routine under test.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `routine` as one sample.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        black_box(routine());
        self.samples.push(start.elapsed());
    }

    /// Time `routine` on a fresh `setup()` input, excluding setup cost.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.samples.push(start.elapsed());
    }
}

fn run_benchmark(label: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let samples = sample_size.clamp(1, 10);
    // One unrecorded warm-up pass.
    f(&mut Bencher::default());
    let mut bencher = Bencher::default();
    for _ in 0..samples {
        f(&mut bencher);
    }
    if bencher.samples.is_empty() {
        println!("{label}: no samples recorded");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    println!(
        "{label}: {} samples, mean {mean:?}/iter, min {min:?}/iter",
        bencher.samples.len()
    );
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags (e.g. `--bench`); the
            // stub has no CLI, so arguments are ignored.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_bencher_record_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        group.sample_size(3).warm_up_time(Duration::from_millis(1));
        let mut runs = 0;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::new("param", 7), &7, |b, &n| {
            b.iter_batched(|| n, |x| x + 1, BatchSize::LargeInput)
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }
}
