//! Property-based round-tripping tests: the strongest link between the
//! symbolic validator and the runtime engine.
//!
//! For strategies that Algorithm 1 accepted, every executed view update
//! must empirically satisfy the lens laws on *random* databases:
//!
//! * **PutGet**: after an update, re-materializing the view from the
//!   updated source (via the derived get) reproduces the updated view.
//! * **GetPut**: pushing the unchanged view back is a no-op on the source.
//! * **Determinism**: the original and incrementalized programs produce
//!   identical databases.

use birds::prelude::*;
use proptest::prelude::*;

/// The union view of Example 3.1 over random unary sources.
fn union_engine(r1: &[i64], r2: &[i64], mode: StrategyMode) -> Engine {
    let mut db = Database::new();
    db.add_relation(Relation::with_tuples("r1", 1, r1.iter().map(|&x| tuple![x])).unwrap())
        .unwrap();
    db.add_relation(Relation::with_tuples("r2", 1, r2.iter().map(|&x| tuple![x])).unwrap())
        .unwrap();
    let strategy = UpdateStrategy::parse(
        DatabaseSchema::new()
            .with(Schema::new("r1", vec![("a", SortKind::Int)]))
            .with(Schema::new("r2", vec![("a", SortKind::Int)])),
        Schema::new("v", vec![("a", SortKind::Int)]),
        "
        -r1(X) :- r1(X), not v(X).
        -r2(X) :- r2(X), not v(X).
        +r1(X) :- v(X), not r1(X), not r2(X).
        ",
        None,
    )
    .unwrap();
    let get = parse_program("v(X) :- r1(X). v(X) :- r2(X).").unwrap();
    let mut engine = Engine::new(db);
    engine.register_view_unchecked(strategy, get, mode).unwrap();
    engine
}

/// The selection view of Example 5.2 over a random binary source.
fn selection_engine(rows: &[(i64, i64)], mode: StrategyMode) -> Engine {
    let mut db = Database::new();
    db.add_relation(
        Relation::with_tuples("r", 2, rows.iter().map(|&(x, y)| tuple![x, y])).unwrap(),
    )
    .unwrap();
    let strategy = UpdateStrategy::parse(
        DatabaseSchema::new().with(Schema::new(
            "r",
            vec![("x", SortKind::Int), ("y", SortKind::Int)],
        )),
        Schema::new("v", vec![("x", SortKind::Int), ("y", SortKind::Int)]),
        "
        false :- v(X, Y), not Y > 2.
        +r(X, Y) :- v(X, Y), not r(X, Y).
        m(X, Y) :- r(X, Y), Y > 2.
        -r(X, Y) :- m(X, Y), not v(X, Y).
        ",
        None,
    )
    .unwrap();
    let get = parse_program("v(X, Y) :- r(X, Y), Y > 2.").unwrap();
    let mut engine = Engine::new(db);
    engine.register_view_unchecked(strategy, get, mode).unwrap();
    engine
}

/// Snapshot a relation as a sorted tuple list.
fn snapshot(engine: &Engine, name: &str) -> Vec<Tuple> {
    let mut v: Vec<Tuple> = engine.relation(name).unwrap().iter().cloned().collect();
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// PutGet on the union view: whatever single-tuple update we apply,
    /// re-running get over the updated source reproduces the view.
    #[test]
    fn union_putget_holds(
        r1 in proptest::collection::vec(0i64..8, 0..6),
        r2 in proptest::collection::vec(0i64..8, 0..6),
        ins in 0i64..8,
        del in 0i64..8,
    ) {
        let mut engine = union_engine(&r1, &r2, StrategyMode::Original);
        engine.execute(&format!(
            "BEGIN; INSERT INTO v VALUES ({ins}); DELETE FROM v WHERE a = {del}; END;"
        )).unwrap();
        let before = snapshot(&engine, "v");
        engine.refresh_view("v").unwrap();
        prop_assert_eq!(before, snapshot(&engine, "v"));
    }

    /// GetPut on the union view: an update that re-asserts the current
    /// view contents must not touch the sources.
    #[test]
    fn union_getput_holds(
        r1 in proptest::collection::vec(0i64..8, 0..6),
        r2 in proptest::collection::vec(0i64..8, 0..6),
        probe in 0i64..8,
    ) {
        let mut engine = union_engine(&r1, &r2, StrategyMode::Original);
        let src1 = snapshot(&engine, "r1");
        let src2 = snapshot(&engine, "r2");
        // Re-insert a tuple that is already in the view (or insert+delete
        // a fresh one): the effective delta is empty.
        let in_view = engine.relation("v").unwrap().contains(&tuple![probe]);
        if in_view {
            engine.execute(&format!("INSERT INTO v VALUES ({probe});")).unwrap();
        } else {
            engine.execute(&format!(
                "BEGIN; INSERT INTO v VALUES ({probe}); DELETE FROM v WHERE a = {probe}; END;"
            )).unwrap();
        }
        prop_assert_eq!(src1, snapshot(&engine, "r1"));
        prop_assert_eq!(src2, snapshot(&engine, "r2"));
    }

    /// The original and incremental execution modes agree on the final
    /// database for arbitrary two-statement transactions.
    #[test]
    fn union_original_incremental_agree(
        r1 in proptest::collection::vec(0i64..8, 0..6),
        r2 in proptest::collection::vec(0i64..8, 0..6),
        ins in 0i64..10,
        del in 0i64..10,
    ) {
        let script = format!(
            "BEGIN; INSERT INTO v VALUES ({ins}); DELETE FROM v WHERE a = {del}; END;"
        );
        let mut orig = union_engine(&r1, &r2, StrategyMode::Original);
        let mut inc = union_engine(&r1, &r2, StrategyMode::Incremental);
        orig.execute(&script).unwrap();
        inc.execute(&script).unwrap();
        prop_assert!(orig.database().same_contents(inc.database()),
            "original and incremental diverged on {}", script);
    }

    /// Selection view: PutGet + mode agreement with the domain constraint
    /// filtering updates.
    #[test]
    fn selection_putget_and_agreement(
        rows in proptest::collection::vec((0i64..6, 0i64..6), 0..8),
        ix in 0i64..6,
        iy in 3i64..9, // respects the Y > 2 constraint
        del in 0i64..6,
    ) {
        let script = format!(
            "BEGIN; INSERT INTO v VALUES ({ix}, {iy}); DELETE FROM v WHERE x = {del}; END;"
        );
        let mut orig = selection_engine(&rows, StrategyMode::Original);
        let mut inc = selection_engine(&rows, StrategyMode::Incremental);
        orig.execute(&script).unwrap();
        inc.execute(&script).unwrap();
        prop_assert!(orig.database().same_contents(inc.database()));

        let before = snapshot(&orig, "v");
        orig.refresh_view("v").unwrap();
        prop_assert_eq!(before, snapshot(&orig, "v"));
    }

    /// Constraint-violating updates are rejected atomically: database
    /// unchanged (selection constraint Y > 2 violated by iy <= 2).
    #[test]
    fn selection_rejects_violations_atomically(
        rows in proptest::collection::vec((0i64..6, 0i64..6), 0..8),
        ix in 0i64..6,
        iy in -3i64..=2,
    ) {
        for mode in [StrategyMode::Original, StrategyMode::Incremental] {
            let mut engine = selection_engine(&rows, mode);
            let r_before = snapshot(&engine, "r");
            let v_before = snapshot(&engine, "v");
            let err = engine.execute(
                &format!("INSERT INTO v VALUES ({ix}, {iy});")
            );
            // Either the tuple was already (impossibly) in the view, or
            // the constraint fired.
            prop_assert!(err.is_err());
            prop_assert_eq!(r_before, snapshot(&engine, "r"));
            prop_assert_eq!(v_before, snapshot(&engine, "v"));
        }
    }
}

/// Deterministic (non-proptest) regression: the incrementalized program
/// for the union view matches Lemma 5.2's substitution exactly.
#[test]
fn union_incremental_program_shape() {
    let strategy = UpdateStrategy::parse(
        DatabaseSchema::new()
            .with(Schema::new("r1", vec![("a", SortKind::Int)]))
            .with(Schema::new("r2", vec![("a", SortKind::Int)])),
        Schema::new("v", vec![("a", SortKind::Int)]),
        "
        -r1(X) :- r1(X), not v(X).
        -r2(X) :- r2(X), not v(X).
        +r1(X) :- v(X), not r1(X), not r2(X).
        ",
        None,
    )
    .unwrap();
    let dput = incrementalize(&strategy).unwrap();
    let want = parse_program(
        "
        -r1(X) :- r1(X), -v(X).
        -r2(X) :- r2(X), -v(X).
        +r1(X) :- +v(X), not r1(X), not r2(X).
        ",
    )
    .unwrap();
    assert!(dput.alpha_eq(&want), "∂put: {dput}");
}
