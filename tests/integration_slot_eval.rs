//! Equivalence suite for the slot-based evaluation pipeline.
//!
//! The evaluator compiles rules to register-slot plans (interned values,
//! cheap-clone tuples, cached plans). This suite pins its *semantics* to an
//! independent reference implementation of stratified Datalog-with-negation
//! evaluation — a deliberately naive, string-keyed, scan-only interpreter
//! in the style of the original evaluator — and asserts both produce
//! identical `EvalOutput` relations across every expressible corpus
//! strategy's putback program, over randomized databases, plus a set of
//! handwritten edge-case programs.

use birds::benchmarks::corpus;
use birds::datalog::{stratify, CmpOp, Head, Literal, Program, Rule, Term};
use birds::eval::{evaluate_program, violated_constraints, EvalContext, PlanCache};
use birds::store::{Database, Relation, Schema, Tuple, Value, ValueSort};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

// ---------------------------------------------------------------------
// Reference evaluator: stratified, nested-loop, string-keyed bindings.
// ---------------------------------------------------------------------

struct RefCtx<'a> {
    db: &'a Database,
    computed: BTreeMap<String, Relation>,
}

impl RefCtx<'_> {
    fn rel(&self, flat: &str) -> &Relation {
        self.computed
            .get(flat)
            .or_else(|| self.db.relation(flat))
            .unwrap_or_else(|| panic!("reference evaluator: unknown relation {flat}"))
    }
}

fn term_value(t: &Term, bindings: &HashMap<String, Value>) -> Option<Value> {
    match t {
        Term::Const(v) => Some(*v),
        Term::Var(v) => bindings.get(v).copied(),
    }
}

/// Does `tuple` match `terms` under `bindings`? Returns the extended
/// bindings on success. Anonymous variables match anything and bind
/// nothing; repeated variables must agree.
fn unify(
    terms: &[Term],
    tuple: &Tuple,
    bindings: &HashMap<String, Value>,
) -> Option<HashMap<String, Value>> {
    let mut out = bindings.clone();
    for (i, term) in terms.iter().enumerate() {
        match term {
            Term::Const(c) => {
                if &tuple[i] != c {
                    return None;
                }
            }
            Term::Var(v) => {
                if term.is_anonymous() {
                    continue;
                }
                match out.get(v) {
                    Some(bound) => {
                        if bound != &tuple[i] {
                            return None;
                        }
                    }
                    None => {
                        out.insert(v.clone(), tuple[i]);
                    }
                }
            }
        }
    }
    Some(out)
}

/// All tuples of `rel` matching `terms` under `bindings` — full scan, no
/// indexes.
fn scan_matches<'a>(
    rel: &'a Relation,
    terms: &'a [Term],
    bindings: &'a HashMap<String, Value>,
) -> impl Iterator<Item = HashMap<String, Value>> + 'a {
    rel.iter().filter_map(move |t| unify(terms, t, bindings))
}

/// Enumerate all satisfying assignments of `body` (taken in any safe
/// order) and call `emit` on each.
fn search(
    body: &[Literal],
    remaining: &mut Vec<usize>,
    bindings: &HashMap<String, Value>,
    ctx: &RefCtx,
    emit: &mut dyn FnMut(&HashMap<String, Value>),
) {
    if remaining.is_empty() {
        emit(bindings);
        return;
    }
    // Pick the first literal that is "ready": a resolvable builtin, a
    // grounding equality, or an atom whose named variables are all bound
    // (either polarity). Otherwise fall back to the first positive atom.
    let pick = |bindings: &HashMap<String, Value>, remaining: &[usize]| -> usize {
        for (pos, &li) in remaining.iter().enumerate() {
            match &body[li] {
                Literal::Builtin { left, right, .. } => {
                    if term_value(left, bindings).is_some() && term_value(right, bindings).is_some()
                    {
                        return pos;
                    }
                }
                Literal::Atom { atom, .. } => {
                    let all_bound = atom.terms.iter().all(|t| match t {
                        Term::Const(_) => true,
                        Term::Var(v) => t.is_anonymous() || bindings.contains_key(v),
                    });
                    if all_bound {
                        return pos;
                    }
                }
            }
        }
        for (pos, &li) in remaining.iter().enumerate() {
            if let Literal::Builtin {
                op: CmpOp::Eq,
                left,
                right,
                negated: false,
            } = &body[li]
            {
                let l = term_value(left, bindings).is_some();
                let r = term_value(right, bindings).is_some();
                if (l || r) && matches!(if l { right } else { left }, Term::Var(_)) {
                    return pos;
                }
            }
        }
        remaining
            .iter()
            .position(|&li| matches!(&body[li], Literal::Atom { negated: false, .. }))
            .expect("reference evaluator: unsafe rule")
    };
    let pos = pick(bindings, remaining);
    let li = remaining.remove(pos);
    match &body[li] {
        Literal::Builtin {
            op,
            left,
            right,
            negated,
        } => {
            match (term_value(left, bindings), term_value(right, bindings)) {
                (Some(lv), Some(rv)) => {
                    let res = op
                        .eval(&lv, &rv)
                        .unwrap_or_else(|| panic!("cross-sort comparison {lv} {rv}"));
                    if res != *negated {
                        search(body, remaining, bindings, ctx, emit);
                    }
                }
                (l, r) => {
                    // Grounding equality: bind the unbound variable side.
                    assert_eq!(*op, CmpOp::Eq);
                    let (value, var_side) = if let Some(lv) = l {
                        (lv, right)
                    } else {
                        (r.expect("picked literal is ready"), left)
                    };
                    let Term::Var(v) = var_side else {
                        unreachable!()
                    };
                    let mut b = bindings.clone();
                    b.insert(v.clone(), value);
                    search(body, remaining, &b, ctx, emit);
                }
            }
        }
        Literal::Atom { atom, negated } => {
            let rel = ctx.rel(&atom.pred.flat_name());
            if *negated {
                if scan_matches(rel, &atom.terms, bindings).next().is_none() {
                    search(body, remaining, bindings, ctx, emit);
                }
            } else {
                let candidates: Vec<HashMap<String, Value>> =
                    scan_matches(rel, &atom.terms, bindings).collect();
                for b in candidates {
                    search(body, remaining, &b, ctx, emit);
                }
            }
        }
    }
    remaining.insert(pos, li);
}

fn ref_eval_rule(rule: &Rule, ctx: &RefCtx) -> HashSet<Tuple> {
    let mut out = HashSet::new();
    if rule.body.is_empty() {
        match &rule.head {
            Head::Atom(a) => {
                let vals: Vec<Value> = a
                    .terms
                    .iter()
                    .map(|t| *t.as_const().expect("ground fact"))
                    .collect();
                out.insert(Tuple::new(vals));
            }
            Head::Bottom => {
                out.insert(Tuple::new(vec![]));
            }
        }
        return out;
    }
    let mut remaining: Vec<usize> = (0..rule.body.len()).collect();
    let bindings = HashMap::new();
    search(
        &rule.body,
        &mut remaining,
        &bindings,
        ctx,
        &mut |bindings| {
            let tuple = match &rule.head {
                Head::Bottom => Tuple::new(vec![]),
                Head::Atom(a) => a
                    .terms
                    .iter()
                    .map(|t| term_value(t, bindings).expect("safe rule binds head"))
                    .collect(),
            };
            out.insert(tuple);
        },
    );
    out
}

/// Materialize every IDB relation in stratification order.
fn ref_materialize<'a>(program: &Program, db: &'a Database) -> RefCtx<'a> {
    let order = stratify(program).expect("stratifiable");
    let mut ctx = RefCtx {
        db,
        computed: BTreeMap::new(),
    };
    for pred in &order {
        let arity = program.arity_of(pred).expect("arity known");
        let mut tuples: HashSet<Tuple> = HashSet::new();
        for rule in program.rules_for(pred) {
            tuples.extend(ref_eval_rule(rule, &ctx));
        }
        ctx.computed.insert(
            pred.flat_name(),
            Relation::with_tuples(pred.flat_name(), arity, tuples).unwrap(),
        );
    }
    ctx
}

/// Reference program evaluation: relations keyed by flat predicate name.
fn ref_eval_program(program: &Program, db: &Database) -> BTreeMap<String, BTreeSet<Tuple>> {
    ref_materialize(program, db)
        .computed
        .into_iter()
        .map(|(name, rel)| (name, rel.iter().cloned().collect()))
        .collect()
}

/// Reference constraint check: constraints violated after materializing
/// all IDB relations.
fn ref_violated(program: &Program, db: &Database) -> Vec<String> {
    let ctx = ref_materialize(program, db);
    program
        .constraints()
        .filter(|r| !ref_eval_rule(r, &ctx).is_empty())
        .map(|r| r.to_string())
        .collect()
}

// ---------------------------------------------------------------------
// Random database generation over a schema.
// ---------------------------------------------------------------------

fn random_value(sort: ValueSort, rng: &mut StdRng) -> Value {
    match sort {
        // Small domains so joins, negation and comparisons all fire.
        ValueSort::Int => Value::Int(rng.gen_range(0..8)),
        ValueSort::Float => Value::float(rng.gen_range(0..8) as f64 * 0.5),
        ValueSort::Str => {
            let pool = ["a", "b", "c", "d", "1962-01-01", "1962-12-31", ""];
            Value::str(pool[rng.gen_range(0..pool.len() as i64) as usize])
        }
        ValueSort::Bool => Value::Bool(rng.gen_range(0..2) == 1),
    }
}

fn random_relation(schema: &Schema, n: usize, rng: &mut StdRng) -> Relation {
    let sorts: Vec<ValueSort> = schema.attributes.iter().map(|a| a.sort).collect();
    let tuples = (0..n).map(|_| {
        sorts
            .iter()
            .map(|&s| random_value(s, rng))
            .collect::<Tuple>()
    });
    Relation::with_tuples(&schema.name, sorts.len(), tuples).unwrap()
}

// ---------------------------------------------------------------------
// The equivalence harness.
// ---------------------------------------------------------------------

fn slot_eval(
    program: &Program,
    db: &mut Database,
    range_pushdown: bool,
) -> BTreeMap<String, BTreeSet<Tuple>> {
    let mut cache = PlanCache::new();
    cache.set_range_pushdown(range_pushdown);
    let mut ctx = EvalContext::with_plan_cache(db, &mut cache);
    let out = evaluate_program(program, &mut ctx).expect("slot evaluation succeeds");
    out.relations
        .into_iter()
        .map(|(pred, rel)| (pred.flat_name(), rel.iter().cloned().collect()))
        .collect()
}

/// Three-way differential: the reference interpreter, the slot
/// evaluator with range pushdown (the default), and the slot evaluator
/// forced onto the hash-only scan+filter plans must all agree
/// bit-identically — so every `RangeScan` plan is checked against both
/// independent scan+filter implementations.
fn assert_equivalent(label: &str, program: &Program, db: &mut Database) {
    let expected = ref_eval_program(program, db);
    let pushed = slot_eval(program, db, true);
    assert_eq!(
        pushed, expected,
        "{label}: range-pushdown evaluation diverges from reference semantics"
    );
    let filtered = slot_eval(program, db, false);
    assert_eq!(
        filtered, expected,
        "{label}: scan+filter evaluation diverges from reference semantics"
    );
}

#[test]
fn corpus_putdelta_programs_match_reference_semantics() {
    let mut checked = 0;
    for entry in corpus::entries() {
        let Some(strategy) = entry.strategy() else {
            continue;
        };
        // Randomized database over (sources, view), three seeds each.
        for seed in 0..3u64 {
            let mut rng = StdRng::seed_from_u64(0xB1AD5 ^ (entry.id as u64) << 8 ^ seed);
            let mut db = Database::new();
            for spec in entry.sources {
                let schema = Schema::new(spec.name, spec.cols.to_vec());
                db.add_relation(random_relation(&schema, 24, &mut rng))
                    .unwrap();
            }
            let view_schema = entry.view_schema();
            db.add_relation(random_relation(&view_schema, 24, &mut rng))
                .unwrap();
            assert_equivalent(
                &format!("corpus #{} {} (seed {seed})", entry.id, entry.name),
                &strategy.putdelta,
                &mut db,
            );
        }
        checked += 1;
    }
    assert!(checked >= 30, "expected to check ≥30 corpus strategies");
}

#[test]
fn corpus_constraints_match_reference_semantics() {
    for entry in corpus::entries() {
        let Some(strategy) = entry.strategy() else {
            continue;
        };
        if strategy.putdelta.constraints().next().is_none() {
            continue;
        }
        let mut rng = StdRng::seed_from_u64(0xC0457 + entry.id as u64);
        let mut db = Database::new();
        for spec in entry.sources {
            let schema = Schema::new(spec.name, spec.cols.to_vec());
            db.add_relation(random_relation(&schema, 24, &mut rng))
                .unwrap();
        }
        db.add_relation(random_relation(&entry.view_schema(), 24, &mut rng))
            .unwrap();
        let expected = ref_violated(&strategy.putdelta, &db);
        let mut ctx = EvalContext::new(&mut db);
        let got: Vec<String> = violated_constraints(&strategy.putdelta, &mut ctx)
            .expect("constraint evaluation succeeds")
            .iter()
            .map(|r| r.to_string())
            .collect();
        assert_eq!(
            got, expected,
            "corpus #{} {}: constraint verdicts diverge",
            entry.id, entry.name
        );
    }
}

#[test]
fn edge_case_programs_match_reference_semantics() {
    use birds::datalog::parse_program;
    let programs = [
        // negation + union + intersection over one stratum
        "h(X) :- r(X, _), not s(X). h(X) :- s(X), r(X, X).",
        // grounding equalities, both directions, plus filters
        "h(X, Y) :- r(X, Y), Y = 3. h(X, Y) :- r(X, Y), X = Y.",
        // multi-stratum with negation over an IDB predicate
        "m(X) :- r(X, _), X > 2. h(X) :- s(X), not m(X).",
        // constants in heads and bodies, repeated variables
        "h(X, 7, 'tag') :- r(X, X), not s(X).",
        // anonymous variables on both polarities
        "h(X) :- r(X, _), not t(_, X).",
        // comparison chains over dense domains
        "h(X, Y) :- r(X, Y), X < Y, not Y < 2.",
        // facts unioned with derived tuples
        "h(1, 1). h(X, Y) :- r(X, Y), s(X).",
    ];
    for (i, text) in programs.iter().enumerate() {
        let program = parse_program(text).unwrap();
        for seed in 0..4u64 {
            let mut rng = StdRng::seed_from_u64((i as u64) << 16 | seed);
            let mut db = Database::new();
            db.add_relation(random_relation(
                &Schema::new("r", vec![("a", ValueSort::Int), ("b", ValueSort::Int)]),
                20,
                &mut rng,
            ))
            .unwrap();
            db.add_relation(random_relation(
                &Schema::new("s", vec![("a", ValueSort::Int)]),
                10,
                &mut rng,
            ))
            .unwrap();
            db.add_relation(random_relation(
                &Schema::new("t", vec![("a", ValueSort::Int), ("b", ValueSort::Int)]),
                10,
                &mut rng,
            ))
            .unwrap();
            assert_equivalent(
                &format!("edge program #{i} (seed {seed})"),
                &program,
                &mut db,
            );
        }
    }
}

#[test]
fn range_pushdown_programs_match_reference_semantics() {
    // Programs whose comparison guards all compile to `RangeScan` steps
    // under pushdown: negated comparisons, boundary ties at the bound
    // value, multi-guard intervals, guards against earlier-bound
    // variables, and empty/contradictory intervals. Int columns draw
    // from 0..8 (see `random_value`), so constants 0/3/5/7 exercise
    // ties and both empty and full ranges.
    use birds::datalog::parse_program;
    let programs = [
        // boundary ties: >= and <= at values that occur in the data
        "h(X, Y) :- r(X, Y), Y >= 3, Y <= 5.",
        "h(X, Y) :- r(X, Y), X >= 0, Y <= 7.",
        // negated comparisons (complement intervals)
        "h(X) :- r(X, Y), not Y >= 4.",
        "h(X) :- s(X), not X < 3, not X > 5.",
        // guard against an earlier-bound variable, not a constant
        "h(X, Y) :- s(X), r(X, Y), Y > X.",
        "h(X, Y) :- s(X), r(Y, _), not Y <= X.",
        // contradictory and always-true intervals
        "h(X, Y) :- r(X, Y), Y > 5, Y < 3.",
        "h(X, Y) :- r(X, Y), Y >= 0.",
        // guards on two different columns of one scan: first is pushed,
        // second stays a residual filter
        "h(X, Y) :- r(X, Y), X > 1, Y > 1.",
        // interval + equality-join interplay across strata
        "m(Y) :- r(_, Y), Y > 2. h(Y) :- m(Y), not Y >= 6.",
    ];
    for (i, text) in programs.iter().enumerate() {
        let program = parse_program(text).unwrap();
        for seed in 0..4u64 {
            let mut rng = StdRng::seed_from_u64(0x5CA1E ^ (i as u64) << 16 ^ seed);
            let mut db = Database::new();
            db.add_relation(random_relation(
                &Schema::new("r", vec![("a", ValueSort::Int), ("b", ValueSort::Int)]),
                24,
                &mut rng,
            ))
            .unwrap();
            db.add_relation(random_relation(
                &Schema::new("s", vec![("a", ValueSort::Int)]),
                12,
                &mut rng,
            ))
            .unwrap();
            assert_equivalent(
                &format!("range program #{i} (seed {seed})"),
                &program,
                &mut db,
            );
        }
    }
}

#[test]
fn range_pushdown_string_and_date_ordering_matches_reference() {
    // The ordered index ranges over interned strings; lexicographic
    // order makes ISO dates comparable. The pool in `random_value`
    // mixes dates, short strings, and "" so ties and boundaries at
    // every rank are exercised.
    use birds::datalog::parse_program;
    let programs = [
        "h(X) :- d(X), X >= '1962-01-01', not X > '1962-12-31'.",
        "h(X) :- d(X), X > 'a', X < 'd'.",
        "h(X) :- d(X), not X < 'b'.",
        "h(X, Y) :- e(X, Y), Y >= 'a', not Y >= 'c'.",
        // empty-string boundary: everything is >= "", nothing is < ""
        "h(X) :- d(X), X >= ''. g(X) :- d(X), X < ''.",
    ];
    for (i, text) in programs.iter().enumerate() {
        let program = parse_program(text).unwrap();
        for seed in 0..4u64 {
            let mut rng = StdRng::seed_from_u64(0xDA7E ^ (i as u64) << 16 ^ seed);
            let mut db = Database::new();
            db.add_relation(random_relation(
                &Schema::new("d", vec![("a", ValueSort::Str)]),
                20,
                &mut rng,
            ))
            .unwrap();
            db.add_relation(random_relation(
                &Schema::new("e", vec![("a", ValueSort::Int), ("b", ValueSort::Str)]),
                20,
                &mut rng,
            ))
            .unwrap();
            assert_equivalent(
                &format!("string range program #{i} (seed {seed})"),
                &program,
                &mut db,
            );
        }
    }
}
