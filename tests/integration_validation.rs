//! Cross-crate integration tests for the validation pipeline (Algorithm 1):
//! datalog → fol → solver → core, on strategies from the paper.

use birds::prelude::*;

fn schema1(names: &[&str]) -> DatabaseSchema {
    let mut db = DatabaseSchema::new();
    for n in names {
        db = db.with(Schema::new(*n, vec![("a", SortKind::Int)]));
    }
    db
}

/// Example 3.1: the union strategy validates and derives the union get.
#[test]
fn union_derives_expected_get() {
    let s = UpdateStrategy::parse(
        schema1(&["r1", "r2"]),
        Schema::new("v", vec![("a", SortKind::Int)]),
        "
        -r1(X) :- r1(X), not v(X).
        -r2(X) :- r2(X), not v(X).
        +r1(X) :- v(X), not r1(X), not r2(X).
        ",
        None,
    )
    .unwrap();
    let report = validate(&s).unwrap();
    assert!(report.valid, "{:?}", report.reason);
    let got = report.derived_get.unwrap();
    let want = parse_program("v(X) :- r1(X). v(X) :- r2(X).").unwrap();
    assert!(got.alpha_eq(&want), "derived {got}");
}

/// The same strategy with the insertion routed to r2 instead derives the
/// same (unique) view definition — Theorem 2.1 in action.
#[test]
fn insertion_target_does_not_change_get() {
    let s = UpdateStrategy::parse(
        schema1(&["r1", "r2"]),
        Schema::new("v", vec![("a", SortKind::Int)]),
        "
        -r1(X) :- r1(X), not v(X).
        -r2(X) :- r2(X), not v(X).
        +r2(X) :- v(X), not r1(X), not r2(X).
        ",
        None,
    )
    .unwrap();
    let report = validate(&s).unwrap();
    assert!(report.valid, "{:?}", report.reason);
    let want = parse_program("v(X) :- r1(X). v(X) :- r2(X).").unwrap();
    assert!(report.derived_get.unwrap().alpha_eq(&want));
}

/// Inserting into *both* r1 and r2 is also a valid strategy for the same
/// view.
#[test]
fn insert_into_both_sources_is_valid() {
    let s = UpdateStrategy::parse(
        schema1(&["r1", "r2"]),
        Schema::new("v", vec![("a", SortKind::Int)]),
        "
        -r1(X) :- r1(X), not v(X).
        -r2(X) :- r2(X), not v(X).
        +r1(X) :- v(X), not r1(X), not r2(X).
        +r2(X) :- v(X), not r1(X), not r2(X).
        ",
        None,
    )
    .unwrap();
    let report = validate(&s).unwrap();
    // +r1 and +r2 fire on the same tuples; the delta stays
    // non-contradictory (insertions only), GetPut and PutGet hold.
    assert!(report.valid, "{:?}", report.reason);
}

/// Pass-1 failure: a strategy that can insert and delete the same tuple.
#[test]
fn contradictory_delta_fails_well_definedness() {
    let s = UpdateStrategy::parse(
        schema1(&["r1", "r2"]),
        Schema::new("v", vec![("a", SortKind::Int)]),
        "
        +r1(X) :- v(X).
        -r1(X) :- v(X), r1(X).
        ",
        None,
    )
    .unwrap();
    let report = validate(&s).unwrap();
    assert!(!report.valid);
    assert_eq!(report.failed_pass, Some(FailedPass::WellDefinedness));
    let model = report.counterexample.unwrap();
    // The counterexample must witness a tuple in both v and r1.
    assert!(!model.relations.is_empty());
}

/// Pass-2 failure: a delta that always fires leaves no steady state.
#[test]
fn unconditional_delete_fails_getput() {
    let s = UpdateStrategy::parse(
        schema1(&["r1", "r2"]),
        Schema::new("v", vec![("a", SortKind::Int)]),
        "-r1(X) :- r1(X).",
        None,
    )
    .unwrap();
    let report = validate(&s).unwrap();
    assert!(!report.valid);
    assert_eq!(report.failed_pass, Some(FailedPass::GetPut));
}

/// Pass-3 failure: without the selection-domain constraint, PutGet breaks
/// (§5 Example 5.2 needs its constraint).
#[test]
fn selection_needs_its_constraint() {
    let make = |with_constraint: bool| {
        let c = if with_constraint {
            "false :- v(X, Y), not Y > 2."
        } else {
            ""
        };
        UpdateStrategy::parse(
            DatabaseSchema::new().with(Schema::new(
                "r",
                vec![("x", SortKind::Int), ("y", SortKind::Int)],
            )),
            Schema::new("v", vec![("x", SortKind::Int), ("y", SortKind::Int)]),
            &format!(
                "
                {c}
                +r(X, Y) :- v(X, Y), not r(X, Y).
                m(X, Y) :- r(X, Y), Y > 2.
                -r(X, Y) :- m(X, Y), not v(X, Y).
                "
            ),
            Some("v(X, Y) :- r(X, Y), Y > 2."),
        )
        .unwrap()
    };
    let with = validate(&make(true)).unwrap();
    assert!(with.valid, "{:?}", with.reason);
    assert!(with.used_expected_get);

    let without = validate(&make(false)).unwrap();
    assert!(!without.valid);
    assert_eq!(without.failed_pass, Some(FailedPass::PutGet));
}

/// A wrong expected get is detected, and the correct one is derived
/// instead.
#[test]
fn wrong_expected_get_is_corrected() {
    let s = UpdateStrategy::parse(
        schema1(&["r1", "r2"]),
        Schema::new("v", vec![("a", SortKind::Int)]),
        "
        -r1(X) :- r1(X), not v(X).
        -r2(X) :- r2(X), not v(X).
        +r1(X) :- v(X), not r1(X), not r2(X).
        ",
        // intersection, not union:
        Some("v(X) :- r1(X), r2(X)."),
    )
    .unwrap();
    let report = validate(&s).unwrap();
    assert!(report.valid);
    assert!(!report.used_expected_get);
    let want = parse_program("v(X) :- r1(X). v(X) :- r2(X).").unwrap();
    assert!(report.derived_get.unwrap().alpha_eq(&want));
}

/// The §3.3 date-range view: constraints + string comparisons end to end.
#[test]
fn residents1962_validates_with_date_constraints() {
    let s = UpdateStrategy::parse(
        DatabaseSchema::new().with(Schema::new(
            "residents",
            vec![
                ("e", SortKind::Str),
                ("b", SortKind::Str),
                ("g", SortKind::Str),
            ],
        )),
        Schema::new(
            "residents1962",
            vec![
                ("e", SortKind::Str),
                ("b", SortKind::Str),
                ("g", SortKind::Str),
            ],
        ),
        "
        false :- residents1962(E, B, G), B > '1962-12-31'.
        false :- residents1962(E, B, G), B < '1962-01-01'.
        +residents(E, B, G) :- residents1962(E, B, G), not residents(E, B, G).
        -residents(E, B, G) :- residents(E, B, G), not B < '1962-01-01',
                               not B > '1962-12-31', not residents1962(E, B, G).
        ",
        Some(
            "residents1962(E, B, G) :- residents(E, B, G),
                 not B < '1962-01-01', not B > '1962-12-31'.",
        ),
    )
    .unwrap();
    assert!(s.is_lvgn());
    let report = validate(&s).unwrap();
    assert!(report.valid, "{:?}", report.reason);
    assert!(report.used_expected_get);
}

/// Dropping the date constraints breaks PutGet for residents1962: an
/// out-of-range view tuple is inserted into the source and then filtered
/// out by the selection.
#[test]
fn residents1962_without_constraints_is_invalid() {
    let s = UpdateStrategy::parse(
        DatabaseSchema::new().with(Schema::new(
            "residents",
            vec![
                ("e", SortKind::Str),
                ("b", SortKind::Str),
                ("g", SortKind::Str),
            ],
        )),
        Schema::new(
            "residents1962",
            vec![
                ("e", SortKind::Str),
                ("b", SortKind::Str),
                ("g", SortKind::Str),
            ],
        ),
        "
        +residents(E, B, G) :- residents1962(E, B, G), not residents(E, B, G).
        -residents(E, B, G) :- residents(E, B, G), not B < '1962-01-01',
                               not B > '1962-12-31', not residents1962(E, B, G).
        ",
        Some(
            "residents1962(E, B, G) :- residents(E, B, G),
                 not B < '1962-01-01', not B > '1962-12-31'.",
        ),
    )
    .unwrap();
    let report = validate(&s).unwrap();
    assert!(!report.valid);
    assert_eq!(report.failed_pass, Some(FailedPass::PutGet));
}

/// A non-LVGN strategy (inner join) still validates against an expected
/// get through the bounded solver — the paper's "feed it to Z3" path.
#[test]
fn inner_join_validates_outside_lvgn() {
    let s = UpdateStrategy::parse(
        DatabaseSchema::new()
            .with(Schema::new(
                "t",
                vec![("a", SortKind::Int), ("b", SortKind::Int)],
            ))
            .with(Schema::new(
                "u",
                vec![("b", SortKind::Int), ("c", SortKind::Int)],
            )),
        Schema::new(
            "v",
            vec![
                ("a", SortKind::Int),
                ("b", SortKind::Int),
                ("c", SortKind::Int),
            ],
        ),
        "
        false :- u(B, C1), u(B, C2), not C1 = C2.
        false :- t(A, B), not inu(B).
        inu(B) :- u(B, _).
        false :- v(A, B, C1), v(A2, B, C2), not C1 = C2.
        false :- v(A, B, C), u(B, C2), not C = C2.
        +t(A, B) :- v(A, B, C), not t(A, B).
        +u(B, C) :- v(A, B, C), not u(B, C).
        -t(A, B) :- t(A, B), u(B, C), not v(A, B, C).
        ",
        Some("v(A, B, C) :- t(A, B), u(B, C)."),
    )
    .unwrap();
    assert!(!s.is_lvgn(), "inner join must leave the fragment");
    let report = validate(&s).unwrap();
    assert!(report.valid, "{:?}", report.reason);
    assert!(report.used_expected_get);
    assert!(!report.lvgn);
}

/// A non-LVGN strategy *without* an expected get cannot have its view
/// definition derived — the error is explicit.
#[test]
fn non_lvgn_without_expected_get_errors() {
    let s = UpdateStrategy::parse(
        DatabaseSchema::new()
            .with(Schema::new(
                "t",
                vec![("a", SortKind::Int), ("b", SortKind::Int)],
            ))
            .with(Schema::new(
                "u",
                vec![("b", SortKind::Int), ("c", SortKind::Int)],
            )),
        Schema::new(
            "v",
            vec![
                ("a", SortKind::Int),
                ("b", SortKind::Int),
                ("c", SortKind::Int),
            ],
        ),
        // The negated view atom spans t and u: no guard, so the program
        // is outside LVGN-Datalog and the view definition cannot be
        // derived.
        "
        +t(A, B) :- v(A, B, C), not t(A, B).
        -t(A, B) :- t(A, B), u(B, C), not v(A, B, C).
        ",
        None,
    )
    .unwrap();
    assert!(!s.is_lvgn());
    assert!(validate(&s).is_err());
}

/// Validation timings are populated per pass (used by the ablation bench).
#[test]
fn pass_timings_are_populated() {
    let s = UpdateStrategy::parse(
        schema1(&["r1", "r2"]),
        Schema::new("v", vec![("a", SortKind::Int)]),
        "
        -r1(X) :- r1(X), not v(X).
        -r2(X) :- r2(X), not v(X).
        +r1(X) :- v(X), not r1(X), not r2(X).
        ",
        None,
    )
    .unwrap();
    let report = validate(&s).unwrap();
    let t = &report.timings;
    assert!(t.total() >= t.well_definedness);
    assert!(t.total() >= t.getput);
    assert!(t.total() >= t.putget);
}
