//! Cross-crate integration tests for the updatable-view engine: DML
//! parsing (Algorithm 2), trigger execution, constraint enforcement,
//! rollback, and view-over-view cascades — on corpus views.

use birds::benchmarks::figure6::Figure6View;
use birds::benchmarks::{corpus, datagen};
use birds::prelude::*;

fn engine_for(view: Figure6View, n: usize, mode: StrategyMode) -> Engine {
    view.engine(n, mode)
}

#[test]
fn luxuryitems_constraint_rejects_cheap_insert() {
    let mut engine = engine_for(Figure6View::Luxuryitems, 100, StrategyMode::Incremental);
    let err = engine
        .execute("INSERT INTO luxuryitems VALUES (999, 50);")
        .unwrap_err();
    assert!(matches!(err, EngineError::ConstraintViolation { .. }));
    // Nothing changed.
    assert_eq!(engine.relation("items").unwrap().len(), 100);
}

#[test]
fn luxuryitems_rollback_restores_view_on_constraint_failure() {
    let mut engine = engine_for(Figure6View::Luxuryitems, 50, StrategyMode::Original);
    let before: usize = engine.relation("luxuryitems").unwrap().len();
    let _ = engine
        .execute("BEGIN; INSERT INTO luxuryitems VALUES (500, 2000); INSERT INTO luxuryitems VALUES (501, 3); END;")
        .unwrap_err();
    assert_eq!(engine.relation("luxuryitems").unwrap().len(), before);
    assert_eq!(engine.relation("items").unwrap().len(), 50);
}

#[test]
fn update_statement_translates_to_delete_plus_insert() {
    let mut engine = engine_for(Figure6View::Luxuryitems, 0, StrategyMode::Incremental);
    engine
        .execute("INSERT INTO luxuryitems VALUES (1, 2000);")
        .unwrap();
    engine
        .execute("UPDATE luxuryitems SET price = 3000 WHERE id = 1;")
        .unwrap();
    let items = engine.relation("items").unwrap();
    assert!(items.contains(&tuple![1, 3000]));
    assert!(!items.contains(&tuple![1, 2000]));
}

#[test]
fn transaction_later_statements_override_earlier() {
    // Algorithm 2: insert then delete of the same tuple = no-op.
    let mut engine = engine_for(Figure6View::Luxuryitems, 10, StrategyMode::Original);
    let stats = engine
        .execute(
            "BEGIN; INSERT INTO luxuryitems VALUES (77, 7000); \
             DELETE FROM luxuryitems WHERE id = 77; END;",
        )
        .unwrap();
    assert_eq!(stats.view_delta_size, 0);
    assert!(!engine
        .relation("items")
        .unwrap()
        .contains(&tuple![77, 7000]));
}

#[test]
fn officeinfo_projection_gets_default_floor() {
    let mut engine = engine_for(Figure6View::Officeinfo, 20, StrategyMode::Incremental);
    engine
        .execute("INSERT INTO officeinfo VALUES (900, 'lab', '+81-555');")
        .unwrap();
    let office = engine.relation("office").unwrap();
    assert!(
        office.contains(&tuple![900, "lab", 0, "+81-555"]),
        "projection insert must fill the dropped column with its default"
    );
}

#[test]
fn vw_brands_union_routes_inserts_to_brands_b() {
    let mut engine = engine_for(Figure6View::VwBrands, 40, StrategyMode::Incremental);
    engine
        .execute("INSERT INTO vw_brands VALUES (4711, 'acme');")
        .unwrap();
    assert!(engine
        .relation("brands_b")
        .unwrap()
        .contains(&tuple![4711, "acme"]));
    assert!(!engine
        .relation("brands_a")
        .unwrap()
        .iter()
        .any(|t| t[0] == Value::int(4711)));
}

#[test]
fn vw_brands_delete_removes_from_either_source() {
    let mut engine = engine_for(Figure6View::VwBrands, 60, StrategyMode::Original);
    // Delete every brand with bid <= 60 one at a time via equality
    // predicates on a handful of ids.
    for bid in 1..=5i64 {
        engine
            .execute(&format!("DELETE FROM vw_brands WHERE bid = {bid};"))
            .unwrap();
        assert!(!engine
            .relation("brands_a")
            .unwrap()
            .iter()
            .any(|t| t[0] == Value::int(bid)));
        assert!(!engine
            .relation("brands_b")
            .unwrap()
            .iter()
            .any(|t| t[0] == Value::int(bid)));
    }
}

#[test]
fn outstanding_task_inclusion_dependency_enforced() {
    let mut engine = engine_for(Figure6View::OutstandingTask, 50, StrategyMode::Original);
    // tid 10_000 has no assignment row: the ID constraint rejects it.
    let err = engine
        .execute("INSERT INTO outstanding_task VALUES (10000, 'ghost', '2020-08-01', 'nobody');")
        .unwrap_err();
    assert!(matches!(err, EngineError::ConstraintViolation { .. }));
}

#[test]
fn all_corpus_lvgn_views_register_and_accept_an_update() {
    // Every LVGN corpus view with unary-key-style updates can be
    // registered without revalidation and accepts its Figure-6 style
    // script (only the four Figure 6 views have generators; others are
    // registered on empty bases and exercised via a no-op refresh).
    for e in corpus::entries() {
        let Some(strategy) = e.strategy() else {
            continue;
        };
        if !e.lvgn_expected {
            continue;
        }
        let get = parse_program(e.expected_get).unwrap();
        let mut db = Database::new();
        for spec in e.sources {
            db.add_relation(Relation::new(spec.name, spec.cols.len()))
                .unwrap();
        }
        let mut engine = Engine::new(db);
        engine
            .register_view_unchecked(strategy, get, StrategyMode::Incremental)
            .unwrap_or_else(|err| panic!("{}: {err}", e.name));
        assert!(engine.is_view(e.name));
        assert_eq!(engine.relation(e.name).unwrap().len(), 0);
    }
}

#[test]
fn figure6_database_generators_feed_engine_views() {
    // Register each Figure 6 view on generated data and check the
    // materialized view matches a by-hand evaluation of its get.
    let db = datagen::items_database(500);
    let luxury_by_hand = db
        .relation("items")
        .unwrap()
        .iter()
        .filter(|t| t[1] > Value::int(1000))
        .count();
    let engine = Figure6View::Luxuryitems.engine(500, StrategyMode::Original);
    assert_eq!(
        engine.relation("luxuryitems").unwrap().len(),
        luxury_by_hand
    );
}

#[test]
fn execution_stats_report_delta_sizes() {
    let mut engine = engine_for(Figure6View::Luxuryitems, 30, StrategyMode::Incremental);
    let stats = engine
        .execute("INSERT INTO luxuryitems VALUES (3001, 5000);")
        .unwrap();
    assert_eq!(stats.view_delta_size, 1);
    assert_eq!(stats.source_delta_size, 1);
    assert_eq!(stats.cascades, 0);
}

#[test]
fn view_over_view_cascade_through_union() {
    // premium = σ_{price > 3000}(luxuryitems): a view over the corpus
    // luxuryitems view; updates cascade through to items.
    let mut engine = engine_for(Figure6View::Luxuryitems, 100, StrategyMode::Original);
    let premium = UpdateStrategy::parse(
        DatabaseSchema::new().with(Schema::new(
            "luxuryitems",
            vec![("id", SortKind::Int), ("price", SortKind::Int)],
        )),
        Schema::new(
            "premium",
            vec![("id", SortKind::Int), ("price", SortKind::Int)],
        ),
        "
        false :- premium(I, P), not P > 3000.
        +luxuryitems(I, P) :- premium(I, P), not luxuryitems(I, P).
        pricey(I, P) :- luxuryitems(I, P), P > 3000.
        -luxuryitems(I, P) :- pricey(I, P), not premium(I, P).
        ",
        None,
    )
    .unwrap();
    engine
        .register_view(premium, StrategyMode::Original)
        .unwrap();
    let stats = engine
        .execute("INSERT INTO premium VALUES (7777, 9000);")
        .unwrap();
    assert!(stats.cascades >= 1);
    assert!(engine
        .relation("luxuryitems")
        .unwrap()
        .contains(&tuple![7777, 9000]));
    assert!(engine
        .relation("items")
        .unwrap()
        .contains(&tuple![7777, 9000]));
}

#[test]
fn dml_on_unregistered_relation_is_rejected() {
    let mut engine = engine_for(Figure6View::Luxuryitems, 10, StrategyMode::Original);
    assert!(matches!(
        engine.execute("INSERT INTO items VALUES (1, 1);"),
        Err(EngineError::NotAView(_))
    ));
    assert!(matches!(
        engine.execute("INSERT INTO nope VALUES (1);"),
        Err(EngineError::NotAView(_))
    ));
}
