//! Footprint conformance: the engine's *declared* per-view dependency
//! footprints (what the service's sharded lock manager locks) must cover
//! every stored relation an update actually reads or writes. The engine
//! records the observed read set via its read trace; these tests drive
//! random update streams over corpus strategies and check observed ⊆
//! declared — the safety direction sharded locking depends on (an
//! undeclared read would be an unlocked read under concurrency).

use birds::benchmarks::corpus;
use birds::benchmarks::figure6::Figure6View;
use birds::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Build an engine for a corpus entry over empty base tables (schemas
/// from the corpus; contents don't matter for footprint coverage —
/// constraint checks and deletions still evaluate their programs).
fn corpus_engine(entry: &corpus::CorpusEntry) -> Option<(Engine, String)> {
    let strategy = entry.strategy()?;
    // Only Int/Str columns: the generated DML below writes those sorts.
    let insertable = |schema: &Schema| {
        schema
            .attributes
            .iter()
            .all(|c| matches!(c.sort, SortKind::Int | SortKind::Str))
    };
    if !insertable(&strategy.view) {
        return None;
    }
    let mut db = Database::new();
    for spec in entry.sources {
        db.add_relation(Relation::new(spec.name, spec.cols.len()))
            .unwrap();
    }
    let get = parse_program(entry.expected_get).ok()?;
    let view = strategy.view.name.clone();
    let mut engine = Engine::new(db);
    // Prefer the incremental pipeline (more programs, more reads to
    // cover); fall back to original for strategies outside the
    // incrementalizable fragment.
    let original_db = engine.database().clone();
    match engine.register_view_unchecked(strategy.clone(), get.clone(), StrategyMode::Incremental) {
        Ok(()) => Some((engine, view)),
        Err(_) => {
            let mut engine = Engine::new(original_db);
            engine
                .register_view_unchecked(strategy, get, StrategyMode::Original)
                .ok()?;
            Some((engine, view))
        }
    }
}

/// One generated DML script against `view` (insert or delete keyed by
/// `key`), with literals matching each column's sort.
fn script_for(schema: &Schema, view: &str, insert: bool, key: i64) -> String {
    if insert {
        let values: Vec<String> = schema
            .attributes
            .iter()
            .enumerate()
            .map(|(i, col)| match col.sort {
                SortKind::Str => format!("'s{}'", key + i as i64),
                _ => format!("{}", key + i as i64),
            })
            .collect();
        format!("INSERT INTO {view} VALUES ({});", values.join(", "))
    } else {
        let col = &schema.attributes[0];
        let literal = match col.sort {
            SortKind::Str => format!("'s{key}'"),
            _ => format!("{key}"),
        };
        format!("DELETE FROM {view} WHERE {} = {literal};", col.name)
    }
}

/// Run a stream of updates with tracing on; after each statement, every
/// traced *stored* relation must be inside the declared closure.
fn assert_trace_within_footprint(engine: &mut Engine, view: &str, scripts: &[String]) {
    let closure = engine
        .view_footprint(view)
        .expect("view registered")
        .closure
        .clone();
    engine.set_read_trace(true);
    for script in scripts {
        // Rejections (constraint violations on random data) are fine:
        // the reads they performed still had to be covered.
        let _ = engine.execute(script);
        let traced = engine.take_read_trace();
        let stored: BTreeSet<&String> = traced
            .iter()
            .filter(|name| engine.relation(name).is_some())
            .collect();
        for name in stored {
            assert!(
                closure.contains(name),
                "update on '{view}' read stored relation '{name}' \
                 outside its declared footprint {closure:?} (script: {script})"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every expressible corpus strategy: random insert/delete streams
    /// never read outside the declared footprint.
    #[test]
    fn corpus_updates_stay_within_declared_footprints(
        entry_pick in 0usize..64,
        ops in proptest::collection::vec((any::<bool>(), 0i64..40), 1..8),
    ) {
        let entries: Vec<corpus::CorpusEntry> = corpus::entries()
            .into_iter()
            .filter(|e| e.expressible)
            .collect();
        let entry = &entries[entry_pick % entries.len()];
        let Some((mut engine, view)) = corpus_engine(entry) else {
            // Non-insertable sorts or non-registrable strategy: skip.
            return Ok(());
        };
        let schema = engine.view_schema(&view).unwrap().clone();
        let scripts: Vec<String> = ops
            .iter()
            .map(|&(insert, key)| script_for(&schema, &view, insert, key))
            .collect();
        assert_trace_within_footprint(&mut engine, &view, &scripts);
    }
}

#[test]
fn luxuryitems_with_data_stays_within_footprint() {
    let mut engine = Figure6View::Luxuryitems.engine(300, StrategyMode::Incremental);
    let scripts: Vec<String> = (0..20)
        .map(|k| {
            if k % 3 == 2 {
                format!("DELETE FROM luxuryitems WHERE id = {};", 400 + k - 2)
            } else {
                format!("INSERT INTO luxuryitems VALUES ({}, 4999);", 400 + k)
            }
        })
        .collect();
    assert_trace_within_footprint(&mut engine, "luxuryitems", &scripts);
}

#[test]
fn cascading_updates_stay_within_the_outer_views_footprint() {
    // w = σ_{a>2}(v) over the updatable union v = r1 ∪ r2: an update on
    // w cascades into v and from there into r1/r2 — all of which w's
    // closure must have declared (that's what makes one footprint shard
    // out of the whole chain).
    let mut db = Database::new();
    db.add_relation(Relation::with_tuples("r1", 1, vec![birds::store::tuple![1]]).unwrap())
        .unwrap();
    db.add_relation(Relation::with_tuples("r2", 1, vec![birds::store::tuple![8]]).unwrap())
        .unwrap();
    let mut engine = Engine::new(db);
    let v = UpdateStrategy::parse(
        DatabaseSchema::new()
            .with(Schema::new("r1", vec![("a", SortKind::Int)]))
            .with(Schema::new("r2", vec![("a", SortKind::Int)])),
        Schema::new("v", vec![("a", SortKind::Int)]),
        "
        -r1(X) :- r1(X), not v(X).
        -r2(X) :- r2(X), not v(X).
        +r1(X) :- v(X), not r1(X), not r2(X).
        ",
        None,
    )
    .unwrap();
    engine.register_view(v, StrategyMode::Original).unwrap();
    let w = UpdateStrategy::parse(
        DatabaseSchema::new().with(Schema::new("v", vec![("a", SortKind::Int)])),
        Schema::new("w", vec![("a", SortKind::Int)]),
        "
        false :- w(X), not X > 2.
        +v(X) :- w(X), not v(X).
        mv(X) :- v(X), X > 2.
        -v(X) :- mv(X), not w(X).
        ",
        None,
    )
    .unwrap();
    engine.register_view(w, StrategyMode::Original).unwrap();

    let scripts = vec![
        "INSERT INTO w VALUES (9);".to_owned(),
        "DELETE FROM w WHERE a = 8;".to_owned(),
        "INSERT INTO w VALUES (1);".to_owned(), // constraint rejection
    ];
    assert_trace_within_footprint(&mut engine, "w", &scripts);
}
