//! Integration tests over the Table 1 benchmark corpus: every row parses,
//! classifies as the paper reports, and a representative per operator
//! class validates end to end.
//!
//! The full 32-row validation (the complete Table 1 run) is exercised by
//! the `table1` binary and the `table1_validation` bench; here we keep a
//! fast representative subset plus an `#[ignore]`d full sweep
//! (`cargo test --test integration_corpus -- --ignored` to run it).

use birds::benchmarks::corpus;
use birds::benchmarks::table1::{format_table, run_entry};
use birds::prelude::*;

#[test]
fn corpus_is_complete_and_ordered() {
    let all = corpus::entries();
    assert_eq!(all.len(), 32);
    assert_eq!(all.iter().filter(|e| !e.expressible).count(), 1);
    // Table 1 group sizes: 23 literature + 9 Q&A.
    assert_eq!(
        all.iter()
            .filter(|e| e.source == corpus::SourceKind::Literature)
            .count(),
        23
    );
    assert_eq!(
        all.iter()
            .filter(|e| e.source == corpus::SourceKind::QaSite)
            .count(),
        9
    );
}

#[test]
fn lvgn_split_matches_paper() {
    // Rows 16–18, 20–23, 27, 29–32 are outside LVGN-Datalog (joins, PK,
    // FK, JD, aggregation); all other rows are inside.
    let outside: Vec<usize> = corpus::entries()
        .iter()
        .filter(|e| !e.lvgn_expected)
        .map(|e| e.id)
        .collect();
    assert_eq!(
        outside,
        vec![16, 17, 18, 20, 21, 22, 23, 27, 29, 30, 31, 32]
    );
}

#[test]
fn classification_agrees_with_checker() {
    for e in corpus::entries() {
        let Some(s) = e.strategy() else { continue };
        assert_eq!(
            s.is_lvgn(),
            e.lvgn_expected,
            "#{} {}: {:?}",
            e.id,
            e.name,
            s.lvgn_violations()
        );
    }
}

/// One representative per operator class validates end to end: this keeps
/// the default test run fast while covering P, S, D, U, SJ and IJ paths.
#[test]
fn representative_entries_validate() {
    for name in ["car_master", "luxuryitems", "ced", "vw_brands", "employees"] {
        let e = corpus::entry(name).unwrap();
        let row = run_entry(&e);
        assert_eq!(row.valid, Some(true), "{name}: {row:?}");
        assert!(row.sql_bytes.unwrap() > 0, "{name}");
    }
}

/// An inner-join representative (non-LVGN) validates via the bounded
/// solver against its expected get.
#[test]
fn join_representative_validates() {
    let e = corpus::entry("tracks1").unwrap();
    let row = run_entry(&e);
    assert_eq!(row.lvgn, Some(false));
    assert_eq!(row.valid, Some(true), "{row:?}");
}

#[test]
fn table_formatting_is_stable() {
    let rows: Vec<_> = ["luxuryitems", "emp_view"]
        .iter()
        .map(|n| run_entry(&corpus::entry(n).unwrap()))
        .collect();
    let text = format_table(&rows);
    assert!(text.lines().count() >= 3);
    assert!(text.contains("Time(s)"));
}

/// Every expressible entry's expected get parses and defines the view
/// with the right arity.
#[test]
fn expected_gets_define_views() {
    for e in corpus::entries() {
        if !e.expressible {
            continue;
        }
        let get = parse_program(e.expected_get).unwrap_or_else(|err| panic!("{}: {err}", e.name));
        let pred = birds::datalog::PredRef::plain(e.name);
        assert!(
            get.rules_for(&pred).next().is_some(),
            "{}: get does not define the view",
            e.name
        );
        assert_eq!(
            get.arity_of(&pred),
            Some(e.view.cols.len()),
            "{}: view arity mismatch",
            e.name
        );
    }
}

/// The full Table 1 sweep: every expressible strategy validates. Slow —
/// run explicitly with `--ignored`.
#[test]
#[ignore = "full 32-row validation; run with --ignored"]
fn full_table1_validates() {
    for e in corpus::entries() {
        let row = run_entry(&e);
        if e.expressible {
            assert_eq!(row.valid, Some(true), "#{} {}: {row:?}", e.id, e.name);
        } else {
            assert_eq!(row.valid, None);
        }
    }
}
